// GridFTP client module: get / put / partial / third-party transfers.
//
// The client orchestrates the protocol phases the paper's server
// implements — control-channel establishment with authentication,
// parallel data-channel setup, the data movement itself (run on the
// fluid engine), and the server's post-transfer logging — and reports
// an end-to-end outcome.  The *timed* window of the logged record spans
// the data transfer operation (data-channel setup through last byte),
// matching the paper's "we merely record the data and time the transfer
// operation"; authentication happens before the timed window, exactly
// as in the real server's transfer log.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gridftp/server.hpp"
#include "net/fabric.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"
#include "util/types.hpp"

namespace wadp::gridftp {

/// GridFTP performance-marker callback (the protocol's 112 replies):
/// bytes moved so far, total bytes, and the simulated instant.
using ProgressCallback =
    std::function<void(Bytes moved, Bytes total, SimTime at)>;

struct TransferOptions {
  int streams = 8;                   ///< the paper's experiments used 8
  Bytes buffer = net::kTunedTcpBuffer;  ///< and 1 MB buffers (Section 6.1)
  /// > 0: emit performance markers every this many seconds during the
  /// data phase (plain get/put/partial/third-party operations).
  Duration marker_interval = 0.0;
  ProgressCallback on_marker;  ///< invoked from simulator context
};

struct TransferOutcome {
  bool ok = false;
  std::string error;                  ///< set when !ok
  TransferRecord record;              ///< as logged by the serving host
  Duration control_overhead = 0.0;    ///< auth + command time before data
};

using TransferCallback = std::function<void(const TransferOutcome&)>;

/// Protocol timing constants (round trips on the control path).
struct ProtocolCosts {
  int control_setup_rtts = 3;   ///< TCP + GSI handshake round trips
  Duration auth_cpu = 0.4;      ///< GSI public-key operations (seconds)
  int data_setup_rtts = 2;      ///< PASV/PORT exchange + channel connect
};

class GridFtpClient {
 public:
  /// `local_storage` may be null for a client whose disk never binds
  /// (e.g. a memory sink used for probe transfers).
  GridFtpClient(sim::Simulator& sim, net::FluidEngine& engine,
                net::Topology& topology, std::string site, std::string ip,
                storage::StorageSystem* local_storage = nullptr,
                ProtocolCosts costs = {});

  const std::string& site() const { return site_; }
  const std::string& ip() const { return ip_; }

  /// Retrieves `remote_path` from `server`.  The callback fires when the
  /// control channel closes (after server-side logging overhead).
  void get(GridFtpServer& server, std::string remote_path,
           const TransferOptions& options, TransferCallback callback);

  /// Partial retrieval: `length` bytes starting at `offset` (GridFTP's
  /// partial-file-transfer extension).  Logged with the bytes moved.
  void get_partial(GridFtpServer& server, std::string remote_path,
                   Bytes offset, Bytes length, const TransferOptions& options,
                   TransferCallback callback);

  /// Stores a new file of `size` bytes at `remote_path` on `server`.
  void put(GridFtpServer& server, std::string remote_path, Bytes size,
           const TransferOptions& options, TransferCallback callback);

  /// Third-party transfer: data flows source -> destination directly;
  /// this client only drives the two control channels.  Both servers
  /// log (read at the source, write at the destination); the outcome
  /// carries the source's record.
  void third_party(GridFtpServer& source, GridFtpServer& destination,
                   std::string source_path, std::string destination_path,
                   const TransferOptions& options, TransferCallback callback);

  /// Striped retrieval (the GridFTP SPAS/SPOR extension the paper's
  /// companion [2] describes): `stripes` are data movers at one site,
  /// each holding `remote_path`; every stripe serves an equal slice
  /// concurrently through its own storage, aggregating host bandwidth.
  /// Each stripe logs its slice; the outcome's record summarizes the
  /// whole file over the full timed window (host = first stripe's).
  /// All stripes must be at the same site and the file identical on
  /// each; violations fail the transfer.
  void striped_get(std::vector<GridFtpServer*> stripes,
                   std::string remote_path, const TransferOptions& options,
                   TransferCallback callback);

 private:
  struct Endpoints {
    std::string data_src_site;
    std::string data_dst_site;
  };

  /// Shared implementation; `op` is the serving host's perspective.
  void run_transfer(GridFtpServer& logging_server,
                    GridFtpServer* secondary_server, std::string path,
                    std::string secondary_path, std::optional<Bytes> length,
                    Operation op, Endpoints endpoints, std::string remote_ip,
                    const TransferOptions& options, TransferCallback callback);

  void fail(TransferCallback& callback, std::string error, Duration overhead);

  Duration control_rtt(const std::string& server_site) const;

  sim::Simulator& sim_;
  net::FluidEngine& engine_;
  net::Topology& topology_;
  std::string site_;
  std::string ip_;
  storage::StorageSystem* local_storage_;
  ProtocolCosts costs_;
};

}  // namespace wadp::gridftp
