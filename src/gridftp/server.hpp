// Simulated GridFTP server with integrated transfer instrumentation.
//
// Mirrors the split the paper describes (Section 3): the server module
// owns connection handling, volumes, and reading/writing data; the
// client module (client.hpp) drives higher-level get/put/partial/
// third-party operations.  Our server's special feature — the paper's
// actual contribution — is that every completed transfer is timed and
// appended to a ULM TransferLog, at a simulated per-transfer logging
// cost of ~25 ms (the measured overhead reported in Section 3).
#pragma once

#include <cstdint>
#include <string>

#include "gridftp/fs.hpp"
#include "gridftp/log.hpp"
#include "gridftp/record.hpp"
#include "obs/metrics.hpp"
#include "storage/storage.hpp"
#include "util/types.hpp"

namespace wadp::gridftp {

struct ServerConfig {
  std::string site;   ///< topology site name, e.g. "lbl"
  std::string host;   ///< e.g. "dpsslx04.lbl.gov" (Fig. 6)
  std::string ip;     ///< e.g. "140.221.65.69" (Fig. 3)
  int port = 2811;    ///< standard GridFTP control port
  TrimConfig trim;    ///< log-growth policy
  /// Simulated cost of gathering and writing one log entry (Section 3
  /// measures ~25 ms, "insignificant compared with the total transfer
  /// time"); charged after the transfer, outside the timed window.
  Duration logging_overhead = 0.025;
  /// When true the server samples its storage ports at transfer end and
  /// logs the disk-I/O throughput (DISK= key, feeding the regression
  /// battery).  Off by default so existing deployments and goldens keep
  /// byte-identical logs.
  bool sample_disk = false;
};

class GridFtpServer {
 public:
  GridFtpServer(ServerConfig config, storage::StorageSystem& storage);

  const ServerConfig& config() const { return config_; }
  const std::string& site() const { return config_.site; }

  /// "gsiftp://host:port" as published by the information provider.
  std::string url() const;

  VirtualFs& fs() { return fs_; }
  const VirtualFs& fs() const { return fs_; }

  storage::StorageSystem& storage() { return storage_; }

  TransferLog& log() { return log_; }
  const TransferLog& log() const { return log_; }

  /// Instrumentation entry point: times are supplied by the transfer
  /// engine; the server resolves the volume, stamps its host name, and
  /// appends the ULM record.  Returns the record as logged.
  TransferRecord record_transfer(const std::string& remote_ip,
                                 const std::string& path, Bytes bytes_moved,
                                 SimTime start, SimTime end, Operation op,
                                 int streams, Bytes buffer,
                                 Bandwidth net_probe = 0.0);

  std::uint64_t transfers_logged() const { return transfers_logged_; }

  /// Availability control (failure injection / maintenance windows):
  /// while not accepting, clients get a 421 at control-channel setup.
  void set_accepting(bool accepting) { accepting_ = accepting; }
  bool accepting() const { return accepting_; }

 private:
  /// Obs instruments for one operation direction, resolved once at
  /// construction so the logging hot path costs two atomic adds and two
  /// histogram records (bench_logging_overhead guards this).
  struct OpMetrics {
    obs::Counter* transfers = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* bandwidth = nullptr;
    obs::Histogram* duration = nullptr;
  };
  const OpMetrics& metrics_for(Operation op) const {
    return metrics_[op == Operation::kRead ? 0 : 1];
  }

  ServerConfig config_;
  storage::StorageSystem& storage_;
  VirtualFs fs_;
  TransferLog log_;
  std::uint64_t transfers_logged_ = 0;
  bool accepting_ = true;
  OpMetrics metrics_[2];  // [0]=read, [1]=write
};

}  // namespace wadp::gridftp
