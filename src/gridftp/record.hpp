// Transfer record: the schema of the paper's instrumented GridFTP log.
//
// Section 3 / Fig. 3 enumerate the fields the instrumented server logs
// for every transfer: source address, file name, file size, logical
// volume, start and end timestamps, total time, aggregate bandwidth,
// operation (read/write), parallel stream count, and TCP buffer size.
// We keep exactly those fields (plus the serving host, which real
// GridFTP logs also carry and which the information provider needs to
// label its entries).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/types.hpp"
#include "util/ulm.hpp"

namespace wadp::gridftp {

enum class Operation {
  kRead,   ///< server read the file from disk and sent it (client "get")
  kWrite,  ///< server received and wrote the file (client "put")
};

const char* to_string(Operation op);
std::optional<Operation> operation_from_string(std::string_view s);

struct TransferRecord {
  std::string host;        ///< serving host name (log owner)
  std::string source_ip;   ///< remote endpoint address
  std::string file_name;   ///< absolute path on the server
  Bytes file_size = 0;     ///< bytes transferred
  std::string volume;      ///< logical volume containing the file
  SimTime start_time = 0;  ///< data-transfer start (epoch seconds)
  SimTime end_time = 0;    ///< data-transfer end (epoch seconds)
  Operation op = Operation::kRead;
  int streams = 1;         ///< parallel data channels
  Bytes tcp_buffer = 0;    ///< per-stream socket buffer
  /// Outcome tag.  The paper's server only ever logged completed
  /// transfers; the resilience plane also records *failed* attempts
  /// (file_size = bytes actually moved, possibly 0; bandwidth is the
  /// achieved partial rate) so predictors can learn outage windows.
  /// Serialized as RESULT=fail — absent for successes, keeping
  /// pre-resilience log lines byte-identical.
  bool ok = true;
  /// Causal trace id of the request this transfer served (see
  /// obs/context.hpp).  Serialized as TRACE= only when non-zero, so
  /// untraced logs stay byte-identical to earlier PRs.
  std::uint64_t trace_id = 0;
  /// Disk-I/O throughput sampled at the serving host at transfer end
  /// (bytes/s; the read port for reads, write port for writes).
  /// Serialized as DISK= (KB/s) only when positive, so logs from
  /// servers without disk sampling stay byte-identical.
  Bandwidth disk_throughput = 0.0;
  /// Network probe bandwidth along the transfer route at start
  /// (bytes/s).  Serialized as PROBE= (KB/s) only when positive,
  /// same versioning contract as DISK=.
  Bandwidth net_probe = 0.0;

  /// Transfer duration in seconds.
  Duration total_time() const { return end_time - start_time; }

  /// The paper's formula: BW = file size / transfer time, in KB/sec
  /// (the unit of the Fig. 3 "Bandwidth" column).
  double bandwidth_kb_per_sec() const;

  /// Same in bytes/sec, the library-internal unit.
  Bandwidth bandwidth() const;

  /// ULM encoding (one line).  Keys follow the Fig. 3 column names.
  util::UlmRecord to_ulm() const;

  /// Inverse of to_ulm; nullopt when required fields are missing or
  /// inconsistent (end before start; zero size, unless the record is
  /// tagged RESULT=fail — a failed attempt may have moved nothing).
  static std::optional<TransferRecord> from_ulm(const util::UlmRecord& ulm);

  bool operator==(const TransferRecord&) const = default;
};

}  // namespace wadp::gridftp
