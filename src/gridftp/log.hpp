// The instrumented server's transfer log.
//
// Section 3: entries are ULM lines, "well under 512 bytes" each, written
// to a single log per server.  Busy sites must bound log growth; the
// paper names two strategies it was exploring, both implemented here:
//   * a running window (as in NWS) — old entries are trimmed by count
//     and/or age, since "old data has less relevance to predictions";
//   * flush-and-restart (as in NetLogger) — when the log fills, the
//     whole body is flushed to an archive and logging restarts empty.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gridftp/record.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace wadp::gridftp {

enum class TrimPolicy {
  kUnbounded,      ///< keep everything (default; fine for 2-week campaigns)
  kRunningWindow,  ///< drop entries beyond max_entries / older than max_age
  kFlushRestart,   ///< archive the whole log when it reaches max_entries
};

struct TrimConfig {
  TrimPolicy policy = TrimPolicy::kUnbounded;
  std::size_t max_entries = 10'000;
  Duration max_age = kNeverTime;  ///< running-window age bound (seconds)
  /// Retention cap on archived() under kFlushRestart: oldest archived
  /// entries beyond this many are evicted (counted in
  /// wadp_log_archived_evicted_total).  0 = unbounded — but a busy
  /// site archiving forever is exactly the growth the paper warns
  /// about, so long-running deployments should bound it (or install a
  /// flush sink, which bypasses archived() entirely).
  std::size_t max_archived = 0;
};

class TransferLog {
 public:
  explicit TransferLog(TrimConfig trim = {}) : trim_(trim) {}

  /// Appends one record and applies the trim policy.
  void append(TransferRecord record);

  /// Live entries, oldest first.
  std::span<const TransferRecord> records() const { return records_; }

  /// Entries evicted by kFlushRestart, oldest first (a NetLogger-style
  /// consumer would read these from persistent storage).  Empty when a
  /// flush sink is installed — flushed batches go to the sink instead.
  std::span<const TransferRecord> archived() const { return archived_; }

  /// Streams every appended record as one ULM line to `path`
  /// (append mode) — the real instrumented server's behaviour of
  /// writing "to a standard location in the file system hierarchy".
  /// Call with an empty path to stop streaming.
  Expected<bool> stream_to(const std::string& path);
  bool streaming() const { return line_sink_ != nullptr; }

  /// Redirects kFlushRestart batches: instead of accumulating in
  /// archived(), each flushed batch is handed to `sink` (NetLogger's
  /// "flush the logs to persistent storage and restart logging").
  using FlushSink = std::function<void(std::span<const TransferRecord>)>;
  void set_flush_sink(FlushSink sink) { flush_sink_ = std::move(sink); }

  /// Convenience flush sink: append flushed batches as ULM to a file.
  Expected<bool> flush_to_file(const std::string& path);

  /// Mirrors every appended record to `sink` (before trimming), the
  /// hook history::HistoryStore::attach uses to make this log a view
  /// over the shared history plane.  Empty function disconnects.
  using RecordSink = std::function<void(const TransferRecord&)>;
  void set_record_sink(RecordSink sink) { record_sink_ = std::move(sink); }

  /// Archived entries evicted by TrimConfig::max_archived so far.
  std::uint64_t archived_evicted() const { return archived_evicted_; }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TrimConfig& trim_config() const { return trim_; }

  /// Whole live log as ULM text, one line per record.
  std::string to_ulm_text() const;

  /// Parses ULM text into records; malformed or non-transfer lines are
  /// counted in `skipped`, matching a tolerant log consumer.
  struct ParsedLog {
    std::vector<TransferRecord> records;
    std::size_t skipped = 0;
  };
  static ParsedLog parse_ulm_text(std::string_view text);

  /// File round-trip for interoperating with external tools.
  Expected<bool> save(const std::string& path) const;
  static Expected<TransferLog> load(const std::string& path, TrimConfig trim = {});

 private:
  void apply_trim();

  TrimConfig trim_;
  std::vector<TransferRecord> records_;
  std::vector<TransferRecord> archived_;
  std::uint64_t archived_evicted_ = 0;
  std::function<void(const TransferRecord&)> line_sink_;
  RecordSink record_sink_;
  FlushSink flush_sink_;
  std::shared_ptr<void> stream_handle_;  // keeps the stream alive, type-erased
};

}  // namespace wadp::gridftp
