// GridFTP control-channel protocol: command codec, reply codec, and the
// server-side session state machine.
//
// Section 3: "GridFTP consists of two modules: the control, or server,
// module and the client module.  The server module manages connection,
// authentication, creation of control and data channels ..."  This
// header implements that control module at the command level (RFC 959
// verbs plus the GridFTP extensions the paper relies on: GSSAPI
// authentication, SBUF/OPTS for tuned buffers and parallel streams,
// ERET for partial transfers).  A ServerSession validates the command
// sequence against the server's filesystem and availability and, when a
// transfer command succeeds, emits a DataCommand for the simulation's
// fluid engine to execute — the instant the instrumented timing window
// opens.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "gridftp/server.hpp"
#include "util/types.hpp"

namespace wadp::gridftp {

/// One control-channel command line: canonical upper-case verb plus the
/// raw argument text ("RETR /home/ftp/vazhkuda/10 MB").
struct CommandMessage {
  std::string verb;
  std::string argument;

  /// Parses "VERB[ argument]".  nullopt on an empty or malformed line
  /// (verbs are 3-4 ASCII letters).
  static std::optional<CommandMessage> parse(std::string_view line);
  std::string to_line() const;

  bool operator==(const CommandMessage&) const = default;
};

/// One reply line: "226 Transfer complete".
struct Reply {
  int code = 0;
  std::string text;

  bool positive_preliminary() const { return code / 100 == 1; }
  bool positive_completion() const { return code / 100 == 2; }
  bool positive_intermediate() const { return code / 100 == 3; }
  bool transient_error() const { return code / 100 == 4; }
  bool permanent_error() const { return code / 100 == 5; }
  bool ok() const { return code / 100 <= 3; }

  static std::optional<Reply> parse(std::string_view line);
  std::string to_line() const;

  bool operator==(const Reply&) const = default;
};

/// Per-session negotiated transfer parameters.
struct SessionOptions {
  int parallelism = 1;              ///< OPTS RETR Parallelism=n;
  Bytes buffer = 32 * kKiB;         ///< SBUF bytes
  char type = 'A';                  ///< TYPE A (ASCII) or I (image)
  char mode = 'S';                  ///< MODE S (stream) or E (extended block)
  bool passive = false;             ///< PASV/SPAS issued
  std::optional<Bytes> restart_offset;  ///< pending REST
};

/// What a granted transfer command asks the data plane to do.
struct DataCommand {
  enum class Kind { kRetrieve, kStore };
  Kind kind = Kind::kRetrieve;
  std::string path;
  Bytes offset = 0;                  ///< from REST or ERET
  std::optional<Bytes> length;       ///< ERET partial length
  std::optional<Bytes> store_size;   ///< ALLO-announced size for STOR
  int streams = 1;
  Bytes buffer = 32 * kKiB;

  bool operator==(const DataCommand&) const = default;
};

enum class SessionState {
  kAwaitingAuth,  ///< connection open; AUTH GSSAPI expected
  kAwaitingAdat,  ///< security handshake in progress
  kAwaitingUser,
  kAwaitingPass,
  kReady,
  kTransferring,  ///< a DataCommand is outstanding
  kClosed,
};

const char* to_string(SessionState state);

/// Server-side control session.  Drive it with handle()/handle_line();
/// when a transfer command is accepted (150 reply) the pending
/// DataCommand describes the data phase, and complete_transfer() emits
/// the closing 226/426.
class ServerSession {
 public:
  explicit ServerSession(GridFtpServer& server);

  Reply handle(const CommandMessage& command);
  Reply handle_line(std::string_view line);

  SessionState state() const { return state_; }
  const SessionOptions& options() const { return options_; }
  const std::string& authenticated_user() const { return user_; }

  /// Armed by RETR/STOR/ERET; consuming it is the caller's signal to
  /// run the data phase.
  std::optional<DataCommand> take_pending_data();

  /// Reports the data phase's outcome; returns the 226 (or 426) reply
  /// and returns the session to kReady.
  Reply complete_transfer(bool ok);

 private:
  Reply dispatch_ready(const CommandMessage& command);
  Reply begin_retrieve(const std::string& path, std::optional<Bytes> offset,
                       std::optional<Bytes> length);
  Reply begin_store(const std::string& path);

  GridFtpServer& server_;
  SessionState state_;
  SessionOptions options_;
  std::string user_;
  std::optional<DataCommand> pending_;
  std::optional<Bytes> allo_size_;  ///< ALLO before STOR
};

}  // namespace wadp::gridftp
