// Virtual filesystem for simulated GridFTP servers.
//
// Servers expose files organized under logical volumes (the "Volume"
// column of the Fig. 3 log).  Only metadata matters to the simulation:
// path -> size.  Writes create or replace entries.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace wadp::gridftp {

class VirtualFs {
 public:
  /// Registers a volume root, e.g. "/home/ftp".  Files must live under
  /// a registered volume.  Registering the same volume twice is a no-op.
  void add_volume(std::string root);

  /// Creates or replaces a file.  The path must be absolute and fall
  /// under a registered volume; returns false otherwise.
  bool add_file(std::string path, Bytes size);

  /// Removes a file; false when absent.
  bool remove_file(std::string_view path);

  bool exists(std::string_view path) const;
  std::optional<Bytes> file_size(std::string_view path) const;

  /// Longest registered volume root that prefixes `path`; nullopt when
  /// none does.
  std::optional<std::string> volume_of(std::string_view path) const;

  /// All files under a volume root, sorted by path.
  std::vector<std::string> list_volume(std::string_view root) const;

  std::size_t file_count() const { return files_.size(); }
  const std::vector<std::string>& volumes() const { return volumes_; }

 private:
  std::vector<std::string> volumes_;        // sorted, no duplicates
  std::map<std::string, Bytes, std::less<>> files_;
};

}  // namespace wadp::gridftp
