#include "gridftp/log.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/ulm.hpp"

namespace wadp::gridftp {

void TransferLog::append(TransferRecord record) {
  if (line_sink_) line_sink_(record);
  if (record_sink_) record_sink_(record);
  records_.push_back(std::move(record));
  apply_trim();
}

Expected<bool> TransferLog::stream_to(const std::string& path) {
  if (path.empty()) {
    line_sink_ = nullptr;
    stream_handle_.reset();
    return true;
  }
  auto stream = std::make_shared<std::ofstream>(path, std::ios::app);
  if (!*stream) return Expected<bool>::failure("cannot open for append: " + path);
  stream_handle_ = stream;
  line_sink_ = [stream](const TransferRecord& record) {
    *stream << record.to_ulm().to_line() << '\n';
    stream->flush();  // instrumentation must survive a crash
  };
  return true;
}

Expected<bool> TransferLog::flush_to_file(const std::string& path) {
  // Probe writability up front so misconfiguration surfaces immediately.
  {
    std::ofstream probe(path, std::ios::app);
    if (!probe) return Expected<bool>::failure("cannot open for append: " + path);
  }
  set_flush_sink([path](std::span<const TransferRecord> batch) {
    std::ofstream out(path, std::ios::app);
    for (const auto& record : batch) {
      out << record.to_ulm().to_line() << '\n';
    }
  });
  return true;
}

void TransferLog::apply_trim() {
  switch (trim_.policy) {
    case TrimPolicy::kUnbounded:
      return;
    case TrimPolicy::kRunningWindow: {
      // Age bound is relative to the newest entry (simulated time flows
      // only through records, keeping the log independent of the clock).
      std::size_t drop = 0;
      if (trim_.max_age != kNeverTime && !records_.empty()) {
        const SimTime horizon = records_.back().end_time - trim_.max_age;
        while (drop < records_.size() && records_[drop].end_time < horizon) {
          ++drop;
        }
      }
      if (records_.size() - drop > trim_.max_entries) {
        drop = records_.size() - trim_.max_entries;
      }
      if (drop > 0) {
        records_.erase(records_.begin(),
                       records_.begin() + static_cast<std::ptrdiff_t>(drop));
      }
      return;
    }
    case TrimPolicy::kFlushRestart:
      if (records_.size() >= trim_.max_entries) {
        if (flush_sink_) {
          flush_sink_(records_);
        } else {
          archived_.insert(archived_.end(),
                           std::make_move_iterator(records_.begin()),
                           std::make_move_iterator(records_.end()));
          if (trim_.max_archived > 0 && archived_.size() > trim_.max_archived) {
            const std::size_t drop = archived_.size() - trim_.max_archived;
            archived_.erase(
                archived_.begin(),
                archived_.begin() + static_cast<std::ptrdiff_t>(drop));
            archived_evicted_ += drop;
            static obs::Counter& evicted = obs::Registry::global().counter(
                "wadp_log_archived_evicted_total", {},
                "Archived transfer records evicted by the retention cap");
            evicted.inc(drop);
          }
        }
        records_.clear();
      }
      return;
  }
}

std::string TransferLog::to_ulm_text() const {
  std::string out;
  for (const auto& record : records_) {
    out += record.to_ulm().to_line();
    out += '\n';
  }
  return out;
}

TransferLog::ParsedLog TransferLog::parse_ulm_text(std::string_view text) {
  ParsedLog parsed;
  const auto ulm = util::parse_ulm_log(text);
  parsed.skipped = ulm.skipped_lines;
  for (const auto& record : ulm.records) {
    if (auto transfer = TransferRecord::from_ulm(record)) {
      parsed.records.push_back(std::move(*transfer));
    } else {
      ++parsed.skipped;
    }
  }
  return parsed;
}

Expected<bool> TransferLog::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Expected<bool>::failure("cannot open for write: " + path);
  out << to_ulm_text();
  if (!out) return Expected<bool>::failure("write failed: " + path);
  return true;
}

Expected<TransferLog> TransferLog::load(const std::string& path,
                                        TrimConfig trim) {
  std::ifstream in(path);
  if (!in) return Expected<TransferLog>::failure("cannot open: " + path);
  std::ostringstream body;
  body << in.rdbuf();
  TransferLog log(trim);
  for (auto& record : parse_ulm_text(body.str()).records) {
    log.append(std::move(record));
  }
  return log;
}

}  // namespace wadp::gridftp
