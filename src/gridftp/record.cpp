#include "gridftp/record.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace wadp::gridftp {

const char* to_string(Operation op) {
  return op == Operation::kRead ? "read" : "write";
}

std::optional<Operation> operation_from_string(std::string_view s) {
  if (util::iequals(s, "read")) return Operation::kRead;
  if (util::iequals(s, "write")) return Operation::kWrite;
  return std::nullopt;
}

double TransferRecord::bandwidth_kb_per_sec() const {
  return to_kb_per_sec(bandwidth());
}

Bandwidth TransferRecord::bandwidth() const {
  const Duration t = total_time();
  WADP_CHECK_MSG(t > 0.0, "record with non-positive duration");
  return static_cast<double>(file_size) / t;
}

util::UlmRecord TransferRecord::to_ulm() const {
  util::UlmRecord ulm;
  ulm.set("DATE", util::format_ulm_date(start_time));
  ulm.set("HOST", host);
  ulm.set("PROG", "wadp-gridftp");
  ulm.set("NL.EVNT", "FTP_INFO");
  ulm.set("SOURCE", source_ip);
  ulm.set("FILE", file_name);
  ulm.set_int("SIZE", static_cast<std::int64_t>(file_size));
  ulm.set("VOLUME", volume);
  ulm.set_double("START", start_time, 3);
  ulm.set_double("END", end_time, 3);
  ulm.set_double("TIME", total_time(), 3);
  ulm.set_double("BW", bandwidth_kb_per_sec(), 3);
  ulm.set("OP", to_string(op));
  ulm.set_int("STREAMS", streams);
  ulm.set_int("BUFFER", static_cast<std::int64_t>(tcp_buffer));
  if (!ok) ulm.set("RESULT", "fail");
  if (trace_id != 0) {
    ulm.set_int("TRACE", static_cast<std::int64_t>(trace_id));
  }
  if (disk_throughput > 0.0) {
    ulm.set_double("DISK", to_kb_per_sec(disk_throughput), 3);
  }
  if (net_probe > 0.0) {
    ulm.set_double("PROBE", to_kb_per_sec(net_probe), 3);
  }
  return ulm;
}

std::optional<TransferRecord> TransferRecord::from_ulm(
    const util::UlmRecord& ulm) {
  TransferRecord r;
  const auto host = ulm.get("HOST");
  const auto source = ulm.get("SOURCE");
  const auto file = ulm.get("FILE");
  const auto size = ulm.get_int("SIZE");
  const auto volume = ulm.get("VOLUME");
  const auto start = ulm.get_double("START");
  const auto end = ulm.get_double("END");
  const auto op_str = ulm.get("OP");
  const auto streams = ulm.get_int("STREAMS");
  const auto buffer = ulm.get_int("BUFFER");

  if (!host || !source || !file || !size || !volume || !start || !end ||
      !op_str || !streams || !buffer) {
    return std::nullopt;
  }
  const auto op = operation_from_string(*op_str);
  if (!op) return std::nullopt;
  const auto result = ulm.get("RESULT");
  const bool ok_flag = !result.has_value() || !util::iequals(*result, "fail");
  if (*size < 0 || (ok_flag && *size == 0) || *end <= *start ||
      *streams < 1 || *buffer <= 0) {
    return std::nullopt;
  }

  r.host = std::string(*host);
  r.source_ip = std::string(*source);
  r.file_name = std::string(*file);
  r.file_size = static_cast<Bytes>(*size);
  r.volume = std::string(*volume);
  r.start_time = *start;
  r.end_time = *end;
  r.op = *op;
  r.streams = static_cast<int>(*streams);
  r.tcp_buffer = static_cast<Bytes>(*buffer);
  r.ok = ok_flag;
  const auto trace = ulm.get_int("TRACE");
  if (trace && *trace > 0) r.trace_id = static_cast<std::uint64_t>(*trace);
  // DISK=/PROBE= are optional (format version: absent on pre-regression
  // logs); a present-but-invalid value rejects the line.
  if (ulm.get("DISK")) {
    const auto disk = ulm.get_double("DISK");
    if (!disk || !std::isfinite(*disk) || *disk < 0.0) return std::nullopt;
    r.disk_throughput = *disk * static_cast<double>(kKB);
  }
  if (ulm.get("PROBE")) {
    const auto probe = ulm.get_double("PROBE");
    if (!probe || !std::isfinite(*probe) || *probe < 0.0) return std::nullopt;
    r.net_probe = *probe * static_cast<double>(kKB);
  }
  return r;
}

}  // namespace wadp::gridftp
