#include "gridftp/client.hpp"

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "gridftp/protocol.hpp"
#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/ulm.hpp"

namespace wadp::gridftp {

/// Everything needed to run one data movement once control channels are
/// up.  Reads are logged at the reading server, writes at the writing
/// server; a third-party transfer populates both.
struct GridFtpClient::DataPlan {
  GridFtpServer* read_logger = nullptr;   ///< server performing the read
  GridFtpServer* write_logger = nullptr;  ///< server performing the write
  std::string read_path;
  std::string write_path;
  std::string read_remote_ip;   ///< peer address in the read record
  std::string write_remote_ip;  ///< peer address in the write record
  net::CapacityProvider* reader_port = nullptr;
  net::CapacityProvider* writer_port = nullptr;
  std::string src_site;
  std::string dst_site;
  Bytes bytes = 0;
  bool create_file_on_write = false;
  Operation primary_op = Operation::kRead;  ///< which record the outcome carries
  /// Control sessions to close out with 226 when the data phase ends.
  std::vector<std::shared_ptr<ServerSession>> sessions;
};

/// Live state of one transfer attempt, shared between the scheduled
/// phases (control, data, timeout, injected fault).  The `done` flag
/// makes resolution idempotent: whichever of {completion, failure,
/// timeout, truncation} fires first wins, and every later event is a
/// no-op — exactly one outcome counter and one ULM event per attempt.
struct GridFtpClient::Attempt {
  std::string op_name;                    ///< "get" / "put" / ...
  GridFtpServer* record_server = nullptr; ///< host tagged in failure records
  std::string record_remote_ip;           ///< peer address in failure records
  std::string path;
  Operation op = Operation::kRead;
  TransferOptions options;
  Duration overhead = 0.0;    ///< control overhead of this attempt
  SimTime started = 0.0;      ///< attempt launch instant
  resilience::AttemptFault fault;
  net::FlowId flow = 0;       ///< live data flow, 0 when none
  Bytes moved = 0;            ///< bytes captured when a stall froze the flow
  sim::EventId timeout_event = 0;
  sim::EventId fault_event = 0;
  bool done = false;
  bool stalled = false;       ///< injected stall struck; nothing will move
  /// Causal context captured at launch (trace id + op-span parent); the
  /// scheduled phases reinstall it so server logging, spans, and the
  /// failure sink inherit the request's trace.
  obs::TraceContext ctx;
  /// Pre-allocated id of this attempt's span (recorded at resolution).
  obs::SpanId span_id = 0;
  /// Control sessions whose data phase is live (to 426 on failure).
  std::vector<std::shared_ptr<ServerSession>> transferring;
  TransferCallback callback;  ///< per-attempt outcome consumer
};

/// The backoff loop around one operation: launches attempts, spaces
/// retries per the policy, and delivers the final outcome.  Keeps
/// itself alive through the scheduled continuations.
struct GridFtpClient::RetryDriver
    : std::enable_shared_from_this<GridFtpClient::RetryDriver> {
  GridFtpClient* client = nullptr;
  std::string op_name;
  AttemptLauncher launch;
  TransferCallback callback;
  int attempts = 0;
  Duration backoff_spent = 0.0;
  /// Causal context captured when the operation was requested; every
  /// attempt (retries included) runs under it, parented by op_span.
  obs::TraceContext ctx;
  obs::SpanId op_span = 0;
  SimTime op_started = 0.0;

  void start() {
    ++attempts;
    // Attempts launched from backoff callbacks have lost the ambient
    // context; reinstall it so begin_attempt captures the trace with
    // the operation span as parent.
    std::optional<obs::ScopedTraceContext> scope;
    if (ctx.active()) {
      scope.emplace(obs::TraceContext{ctx.trace_id, op_span});
    }
    launch([self = shared_from_this()](const TransferOutcome& outcome) {
      self->finished(outcome);
    });
  }

  void finished(TransferOutcome outcome) {
    outcome.attempts = attempts;
    const resilience::RetryPolicy& policy = client->retry_policy_;
    if (outcome.ok) {
      deliver(outcome);
      return;
    }
    if (attempts >= policy.max_attempts) {
      if (policy.enabled()) exhausted(outcome.error);
      deliver(outcome);
      return;
    }
    const Duration backoff =
        policy.backoff_for(attempts, client->retry_rng_);
    if (!policy.allows_retry(attempts, backoff_spent, backoff)) {
      exhausted(outcome.error);
      deliver(outcome);
      return;
    }
    backoff_spent += backoff;
    obs::Registry::global()
        .counter("wadp_resilience_retries_total", {{"op", op_name}},
                 "Transfer attempts re-run after a failure")
        .inc();
    obs::Registry::global()
        .histogram("wadp_resilience_backoff_seconds", {},
                   "Backoff waited before each retry, seconds")
        .record(backoff);
    util::UlmRecord event;
    event.set("OP", op_name);
    event.set_int("ATTEMPT", attempts);
    event.set_double("BACKOFF", backoff, 3);
    event.set("ERROR", outcome.error);
    obs::EventSink::global().emit("resilience.retry", "gridftp.client",
                                  std::move(event));
    client->sim_.schedule_after(
        backoff, [self = shared_from_this()] { self->start(); });
  }

  void exhausted(const std::string& error) {
    obs::Registry::global()
        .counter("wadp_resilience_retry_exhausted_total", {{"op", op_name}},
                 "Operations abandoned after the retry policy gave up")
        .inc();
    util::UlmRecord event;
    event.set("OP", op_name);
    event.set_int("ATTEMPTS", attempts);
    event.set("ERROR", error);
    obs::EventSink::global().emit("resilience.retry_exhausted",
                                  "gridftp.client", std::move(event));
  }

  void deliver(const TransferOutcome& outcome) {
    if (ctx.active()) {
      obs::SpanRecord span;
      span.id = op_span;
      span.parent = ctx.parent;
      span.trace_id = ctx.trace_id;
      span.name = "client.op";
      span.start_ns = obs::sim_ns(op_started);
      span.end_ns = obs::sim_ns(client->sim_.now());
      span.attrs = {{"OP", op_name},
                    {"ATTEMPTS", std::to_string(attempts)},
                    {"RESULT", outcome.ok ? "ok" : "fail"}};
      obs::Tracer::global().record_full(std::move(span));
    }
    if (callback) callback(outcome);
    callback = nullptr;
  }
};

namespace {

/// The scripted prologue every client invocation performs on a control
/// channel: GSSAPI authentication, login, and transfer-parameter
/// negotiation (TYPE/SBUF/parallelism/PASV).  Returns the failing reply,
/// or nullopt when the session reaches kReady with options applied.
std::optional<Reply> login_and_negotiate(ServerSession& session,
                                         const TransferOptions& options) {
  const std::string script[] = {
      "AUTH GSSAPI",
      "ADAT c2ltdWxhdGVkLXRva2Vu",
      "USER :globus-mapping:",
      "PASS dummy",
      "TYPE I",
      util::format("SBUF %llu", static_cast<unsigned long long>(options.buffer)),
      util::format("OPTS RETR Parallelism=%d;", options.streams),
      "PASV",
  };
  for (const auto& line : script) {
    const Reply reply = session.handle_line(line);
    if (!reply.ok()) return reply;
  }
  return std::nullopt;
}

/// Emits GridFTP performance markers (112 replies) for one flow.  Each
/// scheduled handler holds the only shared_ptr to the loop, so the loop
/// lives exactly until the tick that finds the flow gone — and is only
/// ever destroyed after its handler returns (no self-destruction from
/// inside the body, which completion callbacks could otherwise trigger).
class MarkerLoop : public std::enable_shared_from_this<MarkerLoop> {
 public:
  MarkerLoop(sim::Simulator& sim, net::FluidEngine& engine, net::FlowId flow,
             Duration interval, ProgressCallback on_marker)
      : sim_(sim),
        engine_(engine),
        flow_(flow),
        interval_(interval),
        on_marker_(std::move(on_marker)) {}

  void arm() {
    sim_.schedule_after(interval_,
                        [self = shared_from_this()] { self->fire(); });
  }

 private:
  void fire() {
    // progress() may complete flows (including this one) as a side
    // effect of advancing bookkeeping; a vanished flow ends the loop.
    // An interrupted flow (failure teardown, injected stall) vanishes
    // the same way, so the loop also ends then.
    const auto progress = engine_.progress(flow_);
    if (!progress) return;
    on_marker_(progress->moved, progress->total, sim_.now());
    arm();
  }

  sim::Simulator& sim_;
  net::FluidEngine& engine_;
  net::FlowId flow_;
  Duration interval_;
  ProgressCallback on_marker_;
};

obs::Counter& outcome_counter(const char* result) {
  return obs::Registry::global().counter(
      "wadp_client_transfers_total", {{"result", result}},
      "Client-driven transfer operations by outcome");
}

/// One ULM self-event per resolved attempt (RESULT=ok|fail).
void emit_attempt_event(const std::string& op, const std::string& host,
                        bool ok, const std::string& error, Bytes moved) {
  util::UlmRecord event;
  event.set("OP", op);
  event.set("HOST", host.empty() ? "-" : host);
  event.set("RESULT", ok ? "ok" : "fail");
  if (!ok) event.set("ERROR", error);
  if (moved > 0) event.set_int("MOVED", static_cast<std::int64_t>(moved));
  obs::EventSink::global().emit("client.attempt", "gridftp.client",
                                std::move(event));
}

/// Records the transfer-lifecycle span tree (connect -> negotiate ->
/// stream[i] -> fsync -> log) on the simulated timeline.  Phases are
/// reconstructed at completion because they finish across scheduled
/// callbacks; windows are simulated seconds mapped onto the tracer's
/// nanosecond axis.  Returns the root span id so striped transfers can
/// attach their per-stripe streams.
obs::SpanId record_transfer_spans(
    const std::string& op, const std::string& src_site,
    const std::string& dst_site, Bytes bytes, int streams,
    Duration control_overhead, SimTime timed_start, SimTime stream_start,
    SimTime stream_end, Duration logging_overhead, bool write_side,
    bool record_stream_child) {
  auto& tracer = obs::Tracer::global();
  const SimTime invoked = timed_start - control_overhead;
  const obs::SpanId root =
      tracer.record("transfer", 0, obs::sim_ns(invoked),
                    obs::sim_ns(stream_end + logging_overhead),
                    {{"OP", op},
                     {"SRC", src_site},
                     {"DST", dst_site},
                     {"BYTES", std::to_string(bytes)},
                     {"STREAMS", std::to_string(streams)}});
  // control_overhead = control-channel setup RTTs + auth CPU; the CPU
  // part is the negotiate phase.
  const Duration auth = std::min(control_overhead, ProtocolCosts{}.auth_cpu);
  tracer.record("connect", root, obs::sim_ns(invoked),
                obs::sim_ns(timed_start - auth));
  tracer.record("negotiate", root, obs::sim_ns(timed_start - auth),
                obs::sim_ns(timed_start));
  if (record_stream_child) {
    tracer.record("stream", root, obs::sim_ns(stream_start),
                  obs::sim_ns(stream_end),
                  {{"BYTES", std::to_string(bytes)}});
  }
  if (write_side) {
    // Storage flush is modeled inside the fluid flow window (the write
    // port is a flow resource), so the fsync phase closes with it.
    tracer.record("fsync", root, obs::sim_ns(stream_end),
                  obs::sim_ns(stream_end), {{"MODEL", "inline-in-stream"}});
  }
  tracer.record("log", root, obs::sim_ns(stream_end),
                obs::sim_ns(stream_end + logging_overhead));
  return root;
}

}  // namespace

GridFtpClient::GridFtpClient(sim::Simulator& sim, net::FluidEngine& engine,
                             net::PathResolver& resolver, std::string site,
                             std::string ip,
                             storage::StorageSystem* local_storage,
                             ProtocolCosts costs)
    : sim_(sim),
      engine_(engine),
      resolver_(resolver),
      site_(std::move(site)),
      ip_(std::move(ip)),
      local_storage_(local_storage),
      costs_(costs) {}

void GridFtpClient::set_retry_policy(resilience::RetryPolicy policy,
                                     std::uint64_t jitter_seed) {
  retry_policy_ = policy;
  retry_rng_ = util::Rng(jitter_seed);
}

Duration GridFtpClient::control_rtt(const std::string& server_site) const {
  // Control traffic client->server; fall back to the reverse direction
  // when only one direction is registered (RTT is symmetric anyway).
  if (const auto route = resolver_.resolve(site_, server_site)) {
    return route->rtt;
  }
  if (const auto route = resolver_.resolve(server_site, site_)) {
    return route->rtt;
  }
  return 0.05;  // conservative wide-area default
}

void GridFtpClient::fail(TransferCallback& callback, std::string error,
                         Duration overhead) {
  outcome_counter("fail").inc();
  emit_attempt_event("striped_get", "", /*ok=*/false, error, 0);
  if (!callback) return;
  TransferOutcome outcome;
  outcome.ok = false;
  outcome.error = std::move(error);
  outcome.control_overhead = overhead;
  callback(outcome);
}

void GridFtpClient::run_with_retry(std::string op_name, AttemptLauncher launch,
                                   TransferCallback callback) {
  auto driver = std::make_shared<RetryDriver>();
  driver->client = this;
  driver->op_name = std::move(op_name);
  driver->launch = std::move(launch);
  driver->callback = std::move(callback);
  driver->ctx = obs::TraceContext::current();
  if (driver->ctx.active()) {
    driver->op_span = obs::Tracer::global().allocate_id();
    driver->op_started = sim_.now();
  }
  driver->start();
}

std::shared_ptr<GridFtpClient::Attempt> GridFtpClient::begin_attempt(
    std::string op_name, GridFtpServer* record_server,
    std::string record_remote_ip, std::string path, Operation op,
    const TransferOptions& options, Duration overhead,
    TransferCallback callback) {
  auto attempt = std::make_shared<Attempt>();
  attempt->op_name = std::move(op_name);
  attempt->record_server = record_server;
  attempt->record_remote_ip = std::move(record_remote_ip);
  attempt->path = std::move(path);
  attempt->op = op;
  attempt->options = options;
  attempt->overhead = overhead;
  attempt->started = sim_.now();
  attempt->callback = std::move(callback);
  attempt->ctx = obs::TraceContext::current();
  if (attempt->ctx.active()) {
    attempt->span_id = obs::Tracer::global().allocate_id();
  }
  if (faults_ != nullptr) attempt->fault = faults_->sample_attempt();
  if (retry_policy_.attempt_timeout > 0.0) {
    attempt->timeout_event = sim_.schedule_after(
        retry_policy_.attempt_timeout, [this, attempt] {
          attempt->timeout_event = 0;
          obs::Registry::global()
              .counter("wadp_resilience_attempt_timeouts_total", {},
                       "Attempts abandoned by the per-attempt timeout")
              .inc();
          finish_attempt_failure(
              attempt,
              util::format("426 attempt timed out after %.0f s",
                           retry_policy_.attempt_timeout));
        });
  }
  if (attempt->fault.kind == resilience::FaultKind::kTruncate ||
      attempt->fault.kind == resilience::FaultKind::kStall) {
    attempt->fault_event =
        sim_.schedule_after(overhead + attempt->fault.delay, [this, attempt] {
          attempt->fault_event = 0;
          realize_timed_fault(attempt);
        });
  }
  return attempt;
}

void GridFtpClient::cancel_attempt_timers(
    const std::shared_ptr<Attempt>& attempt) {
  if (attempt->timeout_event != 0) {
    sim_.cancel(attempt->timeout_event);
    attempt->timeout_event = 0;
  }
  if (attempt->fault_event != 0) {
    sim_.cancel(attempt->fault_event);
    attempt->fault_event = 0;
  }
}

void GridFtpClient::realize_timed_fault(
    const std::shared_ptr<Attempt>& attempt) {
  if (attempt->done) return;
  if (attempt->fault.kind == resilience::FaultKind::kTruncate) {
    finish_attempt_failure(attempt,
                           "426 data channel truncated (injected fault)");
    return;
  }
  // Stall: the channel stays open but bytes stop.  Freeze the flow,
  // keeping the partial count for the eventual failure record; only the
  // per-attempt timeout (if configured) resolves the attempt.
  attempt->stalled = true;
  if (attempt->flow != 0) {
    if (const auto progress = engine_.interrupt_flow(attempt->flow)) {
      attempt->moved = progress->moved;
    }
    attempt->flow = 0;
  }
}

void GridFtpClient::finish_attempt_failure(
    const std::shared_ptr<Attempt>& attempt, std::string error) {
  if (attempt->done) return;
  attempt->done = true;
  cancel_attempt_timers(attempt);

  // Failures resolve from scheduled callbacks (timeouts, injected
  // faults) that lost the ambient context; reinstall it so the failure
  // record's history ingest nests under this attempt's span.
  std::optional<obs::ScopedTraceContext> trace_scope;
  if (attempt->ctx.active()) {
    trace_scope.emplace(
        obs::TraceContext{attempt->ctx.trace_id, attempt->span_id});
  }

  // Tear down the data channel, keeping the bytes it moved.
  Bytes moved = attempt->moved;
  if (attempt->flow != 0) {
    if (const auto progress = engine_.interrupt_flow(attempt->flow)) {
      moved = progress->moved;
    }
    attempt->flow = 0;
  }
  // Close out control sessions whose data phase was live (the server
  // sends its 426) so a retried attempt starts from a clean slate.
  for (const auto& session : attempt->transferring) {
    (void)session->complete_transfer(false);
  }
  attempt->transferring.clear();

  outcome_counter("fail").inc();
  emit_attempt_event(
      attempt->op_name,
      attempt->record_server != nullptr ? attempt->record_server->config().host
                                        : std::string{},
      /*ok=*/false, error, moved);

  // Outcome-tagged record: the history plane learns the outage window.
  if (attempt->record_server != nullptr && failure_sink_) {
    TransferRecord record;
    record.host = attempt->record_server->config().host;
    record.source_ip = attempt->record_remote_ip;
    record.file_name = attempt->path;
    record.file_size = moved;
    record.volume = "-";
    record.start_time = attempt->started;
    // Guarantee a positive duration even for failures resolved at the
    // launch instant (bandwidth() divides by it).
    record.end_time = std::max(sim_.now(), attempt->started + 1e-3);
    record.op = attempt->op;
    record.streams = attempt->options.streams;
    record.tcp_buffer = attempt->options.buffer;
    record.ok = false;
    record.trace_id = attempt->ctx.trace_id;
    failure_sink_(record);
  }

  if (attempt->ctx.active()) {
    obs::SpanRecord span;
    span.id = attempt->span_id;
    span.parent = attempt->ctx.parent;
    span.trace_id = attempt->ctx.trace_id;
    span.name = "client.attempt";
    span.start_ns = obs::sim_ns(attempt->started);
    span.end_ns = obs::sim_ns(sim_.now());
    span.attrs = {{"OP", attempt->op_name},
                  {"HOST", attempt->record_server != nullptr
                               ? attempt->record_server->config().host
                               : std::string{"-"}},
                  {"RESULT", "fail"},
                  {"ERROR", error}};
    obs::Tracer::global().record_full(std::move(span));
  }

  TransferOutcome outcome;
  outcome.ok = false;
  outcome.error = std::move(error);
  outcome.control_overhead = attempt->overhead;
  auto callback = std::move(attempt->callback);
  attempt->callback = nullptr;
  if (callback) callback(outcome);
}

void GridFtpClient::execute_plan(DataPlan plan,
                                 std::shared_ptr<Attempt> attempt) {
  const auto route = resolver_.resolve(plan.src_site, plan.dst_site);
  if (!route) {
    // Counted and recorded like every other failure (this path used to
    // bypass the outcome counter entirely).
    finish_attempt_failure(attempt, "no path " + plan.src_site + " -> " +
                                        plan.dst_site + " in topology");
    return;
  }

  // The timed window opens when the transfer operation begins: data
  // channels are set up inside it, as in the instrumented server.
  const SimTime timed_start = sim_.now();
  const Duration data_setup = ProtocolCosts{}.data_setup_rtts * route->rtt;

  // From here the control sessions are committed to a data phase; a
  // failure must close them out.
  attempt->transferring = plan.sessions;

  sim_.schedule_after(data_setup, [this, route = *route,
                                   plan = std::move(plan), timed_start,
                                   attempt]() mutable {
    if (attempt->done) return;     // timed out / truncated during setup
    if (attempt->stalled) return;  // stalled channel: bytes never start

    // NWS-style route probe at data-phase start: the minimum available
    // capacity across the route's segments right now.  Logged alongside
    // the transfer (PROBE=) so hybrid predictors can regress measured
    // bandwidth against it.
    Bandwidth net_probe = 0.0;
    if (route.path != nullptr) {
      net_probe = route.path->capacity_at(sim_.now());
    } else {
      for (const net::CapacityProvider* link : route.links) {
        const Bandwidth c = link->capacity_at(sim_.now());
        net_probe = net_probe == 0.0 ? c : std::min(net_probe, c);
      }
    }

    net::FlowSpec spec;
    spec.path = route.path;
    spec.links = std::move(route.links);
    spec.tcp = route.tcp;
    spec.base_rtt = route.rtt;
    spec.streams = attempt->options.streams;
    spec.buffer = attempt->options.buffer;
    spec.size = plan.bytes;
    if (plan.reader_port != nullptr)
      spec.extra_resources.push_back(plan.reader_port);
    if (plan.writer_port != nullptr)
      spec.extra_resources.push_back(plan.writer_port);

    spec.on_complete = [this, plan, timed_start, net_probe,
                        attempt](const net::FlowStats& stats) {
      if (attempt->done) return;
      attempt->done = true;
      cancel_attempt_timers(attempt);
      attempt->flow = 0;
      attempt->transferring.clear();

      // Reinstall the request's context: the servers' records pick up
      // the trace id and the transfer span tree parents under this
      // attempt (the flow-completion callback lost the thread-local).
      std::optional<obs::ScopedTraceContext> trace_scope;
      if (attempt->ctx.active()) {
        trace_scope.emplace(
            obs::TraceContext{attempt->ctx.trace_id, attempt->span_id});
      }

      TransferRecord primary;
      Duration logging_overhead = 0.0;

      if (plan.read_logger != nullptr) {
        const TransferRecord r = plan.read_logger->record_transfer(
            plan.read_remote_ip, plan.read_path, plan.bytes, timed_start,
            stats.end, Operation::kRead, attempt->options.streams,
            attempt->options.buffer, net_probe);
        logging_overhead = std::max(
            logging_overhead, plan.read_logger->config().logging_overhead);
        if (plan.primary_op == Operation::kRead) primary = r;
      }
      if (plan.write_logger != nullptr) {
        if (plan.create_file_on_write) {
          plan.write_logger->fs().add_file(plan.write_path, plan.bytes);
        }
        const TransferRecord r = plan.write_logger->record_transfer(
            plan.write_remote_ip, plan.write_path, plan.bytes, timed_start,
            stats.end, Operation::kWrite, attempt->options.streams,
            attempt->options.buffer, net_probe);
        logging_overhead = std::max(
            logging_overhead, plan.write_logger->config().logging_overhead);
        if (plan.primary_op == Operation::kWrite) primary = r;
      }

      // Close out the control sessions: the servers send their 226s.
      for (const auto& session : plan.sessions) {
        const Reply reply = session->complete_transfer(true);
        WADP_CHECK(reply.positive_completion());
      }

      outcome_counter("ok").inc();
      emit_attempt_event(attempt->op_name,
                         attempt->record_server != nullptr
                             ? attempt->record_server->config().host
                             : std::string{},
                         /*ok=*/true, {}, plan.bytes);
      record_transfer_spans(
          to_string(plan.primary_op), plan.src_site, plan.dst_site, plan.bytes,
          attempt->options.streams, attempt->overhead, timed_start, stats.start,
          stats.end, logging_overhead, plan.write_logger != nullptr,
          /*record_stream_child=*/true);
      if (attempt->ctx.active()) {
        obs::SpanRecord span;
        span.id = attempt->span_id;
        span.parent = attempt->ctx.parent;
        span.trace_id = attempt->ctx.trace_id;
        span.name = "client.attempt";
        span.start_ns = obs::sim_ns(attempt->started);
        span.end_ns = obs::sim_ns(stats.end + logging_overhead);
        span.attrs = {{"OP", attempt->op_name},
                      {"HOST", attempt->record_server != nullptr
                                   ? attempt->record_server->config().host
                                   : std::string{"-"}},
                      {"RESULT", "ok"}};
        obs::Tracer::global().record_full(std::move(span));
      }

      if (attempt->callback) {
        TransferOutcome outcome;
        outcome.ok = true;
        outcome.record = primary;
        outcome.control_overhead = attempt->overhead;
        // The 226 reply reaches the client after the server's logging
        // work (Section 3's ~25 ms) completes.
        auto callback = std::move(attempt->callback);
        attempt->callback = nullptr;
        sim_.schedule_after(logging_overhead,
                            [callback, outcome] { callback(outcome); });
      }
    };

    const net::FlowId flow = engine_.start_flow(std::move(spec));
    if (!attempt->done) attempt->flow = flow;
    if (attempt->options.marker_interval > 0.0 && attempt->options.on_marker) {
      std::make_shared<MarkerLoop>(sim_, engine_, flow,
                                   attempt->options.marker_interval,
                                   attempt->options.on_marker)
          ->arm();
    }
  });
}

void GridFtpClient::get(GridFtpServer& server, std::string remote_path,
                        const TransferOptions& options,
                        TransferCallback callback) {
  run_with_retry(
      "get",
      [this, &server, remote_path = std::move(remote_path),
       options](TransferCallback attempt_done) {
        start_get(server, remote_path, options, std::move(attempt_done));
      },
      std::move(callback));
}

void GridFtpClient::start_get(GridFtpServer& server,
                              const std::string& remote_path,
                              const TransferOptions& options,
                              TransferCallback callback) {
  const Duration rtt = control_rtt(server.site());
  const Duration overhead = costs_.control_setup_rtts * rtt + costs_.auth_cpu;
  auto attempt = begin_attempt("get", &server, ip_, remote_path,
                               Operation::kRead, options, overhead,
                               std::move(callback));
  sim_.schedule_after(overhead, [this, &server, remote_path, attempt]() {
    if (attempt->done) return;
    if (attempt->fault.kind == resilience::FaultKind::kConnectFail) {
      finish_attempt_failure(attempt, "421 connection refused (injected fault)");
      return;
    }
    auto session = std::make_shared<ServerSession>(server);
    if (const auto denied = login_and_negotiate(*session, attempt->options)) {
      finish_attempt_failure(attempt, denied->to_line());
      return;
    }
    const Reply reply =
        session->handle({.verb = "RETR", .argument = remote_path});
    if (!reply.ok()) {
      finish_attempt_failure(attempt, reply.to_line());
      return;
    }
    const auto data = session->take_pending_data();
    WADP_CHECK(data.has_value() && data->length.has_value());

    DataPlan plan;
    plan.read_logger = &server;
    plan.read_path = remote_path;
    plan.read_remote_ip = ip_;
    plan.reader_port = &server.storage().read_port();
    plan.writer_port =
        local_storage_ != nullptr ? &local_storage_->write_port() : nullptr;
    plan.src_site = server.site();
    plan.dst_site = site_;
    plan.bytes = *data->length;
    plan.primary_op = Operation::kRead;
    plan.sessions.push_back(std::move(session));
    execute_plan(std::move(plan), attempt);
  });
}

void GridFtpClient::get_partial(GridFtpServer& server, std::string remote_path,
                                Bytes offset, Bytes length,
                                const TransferOptions& options,
                                TransferCallback callback) {
  run_with_retry(
      "get_partial",
      [this, &server, remote_path = std::move(remote_path), offset, length,
       options](TransferCallback attempt_done) {
        start_get_partial(server, remote_path, offset, length, options,
                          std::move(attempt_done));
      },
      std::move(callback));
}

void GridFtpClient::start_get_partial(GridFtpServer& server,
                                      const std::string& remote_path,
                                      Bytes offset, Bytes length,
                                      const TransferOptions& options,
                                      TransferCallback callback) {
  const Duration rtt = control_rtt(server.site());
  const Duration overhead = costs_.control_setup_rtts * rtt + costs_.auth_cpu;
  auto attempt = begin_attempt("get_partial", &server, ip_, remote_path,
                               Operation::kRead, options, overhead,
                               std::move(callback));
  sim_.schedule_after(overhead, [this, &server, remote_path, offset, length,
                                 attempt]() {
    if (attempt->done) return;
    if (attempt->fault.kind == resilience::FaultKind::kConnectFail) {
      finish_attempt_failure(attempt, "421 connection refused (injected fault)");
      return;
    }
    auto session = std::make_shared<ServerSession>(server);
    if (const auto denied = login_and_negotiate(*session, attempt->options)) {
      finish_attempt_failure(attempt, denied->to_line());
      return;
    }
    if (length == 0) {
      finish_attempt_failure(attempt, "551 invalid byte range");
      return;
    }
    const Reply reply = session->handle(
        {.verb = "ERET",
         .argument = util::format("P %llu %llu %s",
                                  static_cast<unsigned long long>(offset),
                                  static_cast<unsigned long long>(length),
                                  remote_path.c_str())});
    if (!reply.ok()) {
      finish_attempt_failure(attempt, reply.to_line());
      return;
    }
    const auto data = session->take_pending_data();
    WADP_CHECK(data.has_value());

    DataPlan plan;
    plan.read_logger = &server;
    plan.read_path = remote_path;
    plan.read_remote_ip = ip_;
    plan.reader_port = &server.storage().read_port();
    plan.writer_port =
        local_storage_ != nullptr ? &local_storage_->write_port() : nullptr;
    plan.src_site = server.site();
    plan.dst_site = site_;
    plan.bytes = length;  // the log records bytes actually moved
    plan.primary_op = Operation::kRead;
    plan.sessions.push_back(std::move(session));
    execute_plan(std::move(plan), attempt);
  });
}

void GridFtpClient::put(GridFtpServer& server, std::string remote_path,
                        Bytes size, const TransferOptions& options,
                        TransferCallback callback) {
  run_with_retry(
      "put",
      [this, &server, remote_path = std::move(remote_path), size,
       options](TransferCallback attempt_done) {
        start_put(server, remote_path, size, options, std::move(attempt_done));
      },
      std::move(callback));
}

void GridFtpClient::start_put(GridFtpServer& server,
                              const std::string& remote_path, Bytes size,
                              const TransferOptions& options,
                              TransferCallback callback) {
  const Duration rtt = control_rtt(server.site());
  const Duration overhead = costs_.control_setup_rtts * rtt + costs_.auth_cpu;
  auto attempt =
      begin_attempt("put", &server, ip_, remote_path, Operation::kWrite,
                    options, overhead, std::move(callback));
  sim_.schedule_after(overhead, [this, &server, remote_path, size, attempt]() {
    if (attempt->done) return;
    if (size == 0) {
      finish_attempt_failure(attempt, "552 refusing zero-length store");
      return;
    }
    if (attempt->fault.kind == resilience::FaultKind::kConnectFail) {
      finish_attempt_failure(attempt, "421 connection refused (injected fault)");
      return;
    }
    auto session = std::make_shared<ServerSession>(server);
    if (const auto denied = login_and_negotiate(*session, attempt->options)) {
      finish_attempt_failure(attempt, denied->to_line());
      return;
    }
    (void)session->handle({.verb = "ALLO", .argument = std::to_string(size)});
    const Reply reply =
        session->handle({.verb = "STOR", .argument = remote_path});
    if (!reply.ok()) {
      finish_attempt_failure(attempt, reply.to_line());
      return;
    }
    (void)session->take_pending_data();

    DataPlan plan;
    plan.write_logger = &server;
    plan.write_path = remote_path;
    plan.write_remote_ip = ip_;
    plan.reader_port =
        local_storage_ != nullptr ? &local_storage_->read_port() : nullptr;
    plan.writer_port = &server.storage().write_port();
    plan.src_site = site_;
    plan.dst_site = server.site();
    plan.bytes = size;
    plan.create_file_on_write = true;
    plan.primary_op = Operation::kWrite;
    plan.sessions.push_back(std::move(session));
    execute_plan(std::move(plan), attempt);
  });
}

void GridFtpClient::third_party(GridFtpServer& source,
                                GridFtpServer& destination,
                                std::string source_path,
                                std::string destination_path,
                                const TransferOptions& options,
                                TransferCallback callback) {
  run_with_retry(
      "third_party",
      [this, &source, &destination, source_path = std::move(source_path),
       destination_path = std::move(destination_path),
       options](TransferCallback attempt_done) {
        start_third_party(source, destination, source_path, destination_path,
                          options, std::move(attempt_done));
      },
      std::move(callback));
}

void GridFtpClient::start_third_party(GridFtpServer& source,
                                      GridFtpServer& destination,
                                      const std::string& source_path,
                                      const std::string& destination_path,
                                      const TransferOptions& options,
                                      TransferCallback callback) {
  // Both control channels are brought up concurrently; the slower one
  // gates the transfer.
  const Duration rtt =
      std::max(control_rtt(source.site()), control_rtt(destination.site()));
  const Duration overhead = costs_.control_setup_rtts * rtt + costs_.auth_cpu;
  // The outcome carries the source's (read) record, so failures are
  // charged to the source host with the destination as the peer.
  auto attempt = begin_attempt("third_party", &source,
                               destination.config().ip, source_path,
                               Operation::kRead, options, overhead,
                               std::move(callback));
  sim_.schedule_after(overhead, [this, &source, &destination, source_path,
                                 destination_path, attempt]() {
    if (attempt->done) return;
    if (attempt->fault.kind == resilience::FaultKind::kConnectFail) {
      finish_attempt_failure(attempt, "421 connection refused (injected fault)");
      return;
    }
    auto source_session = std::make_shared<ServerSession>(source);
    auto dest_session = std::make_shared<ServerSession>(destination);
    for (const auto& session : {source_session, dest_session}) {
      if (const auto denied = login_and_negotiate(*session, attempt->options)) {
        finish_attempt_failure(attempt, denied->to_line());
        return;
      }
    }
    // The source must know the size before the destination ALLOs.
    const Reply size_reply =
        source_session->handle({.verb = "SIZE", .argument = source_path});
    if (!size_reply.ok()) {
      finish_attempt_failure(attempt, size_reply.to_line());
      return;
    }
    const auto size = util::parse_int(size_reply.text);
    WADP_CHECK(size.has_value() && *size > 0);

    (void)dest_session->handle(
        {.verb = "ALLO", .argument = std::to_string(*size)});
    const Reply stor_reply =
        dest_session->handle({.verb = "STOR", .argument = destination_path});
    if (!stor_reply.ok()) {
      finish_attempt_failure(attempt, stor_reply.to_line());
      return;
    }
    const Reply retr_reply =
        source_session->handle({.verb = "RETR", .argument = source_path});
    if (!retr_reply.ok()) {
      // Roll the destination back: its data phase never starts.  Handing
      // the session to the attempt routes the rollback through the one
      // failure path (426 close-out included).
      attempt->transferring.push_back(dest_session);
      finish_attempt_failure(attempt, retr_reply.to_line());
      return;
    }
    (void)source_session->take_pending_data();
    (void)dest_session->take_pending_data();

    DataPlan plan;
    plan.read_logger = &source;
    plan.read_path = source_path;
    plan.read_remote_ip = destination.config().ip;
    plan.write_logger = &destination;
    plan.write_path = destination_path;
    plan.write_remote_ip = source.config().ip;
    plan.reader_port = &source.storage().read_port();
    plan.writer_port = &destination.storage().write_port();
    plan.src_site = source.site();
    plan.dst_site = destination.site();
    plan.bytes = static_cast<Bytes>(*size);
    plan.create_file_on_write = true;
    plan.primary_op = Operation::kRead;
    plan.sessions.push_back(std::move(source_session));
    plan.sessions.push_back(std::move(dest_session));
    execute_plan(std::move(plan), attempt);
  });
}

void GridFtpClient::striped_get(std::vector<GridFtpServer*> stripes,
                                std::string remote_path,
                                const TransferOptions& options,
                                TransferCallback callback) {
  if (stripes.empty()) {
    fail(callback, "500 no stripes given", 0.0);
    return;
  }
  for (GridFtpServer* stripe : stripes) {
    WADP_CHECK(stripe != nullptr);
  }
  const Duration rtt = control_rtt(stripes.front()->site());
  const Duration overhead = costs_.control_setup_rtts * rtt + costs_.auth_cpu;
  sim_.schedule_after(overhead, [this, stripes = std::move(stripes),
                                 remote_path = std::move(remote_path), options,
                                 overhead,
                                 callback = std::move(callback)]() mutable {
    // Control phase: one session per stripe (SPAS opens one listener
    // per data mover); every stripe must grant the retrieve.
    const auto& site = stripes.front()->site();
    std::vector<std::shared_ptr<ServerSession>> sessions;
    std::optional<Bytes> size;
    for (GridFtpServer* stripe : stripes) {
      if (stripe->site() != site) {
        fail(callback, "501 stripes span sites: " + stripe->site() +
                           " != " + site,
             overhead);
        return;
      }
      auto session = std::make_shared<ServerSession>(*stripe);
      if (const auto denied = login_and_negotiate(*session, options)) {
        fail(callback, denied->to_line(), overhead);
        return;
      }
      const auto stripe_size = stripe->fs().file_size(remote_path);
      if (!stripe_size) {
        fail(callback, "550 no such file: " + remote_path, overhead);
        return;
      }
      if (size && *size != *stripe_size) {
        fail(callback, "551 stripe size mismatch for " + remote_path,
             overhead);
        return;
      }
      size = stripe_size;
      sessions.push_back(std::move(session));
    }

    const auto route = resolver_.resolve(site, site_);
    if (!route) {
      fail(callback, "no path " + site + " -> " + site_ + " in topology",
           overhead);
      return;
    }

    // Each stripe serves a contiguous slice via ERET (how striped
    // GridFTP partitions a file across movers).
    const auto stripe_count = static_cast<Bytes>(sessions.size());
    const Bytes base_slice = *size / stripe_count;
    const SimTime timed_start = sim_.now();
    const Duration data_setup = costs_.data_setup_rtts * route->rtt;

    struct StripeProgress {
      std::size_t remaining;
      SimTime last_end = 0.0;
      TransferRecord first_record;
      bool failed = false;
      /// Per-stripe flow windows, for the stream[i] trace spans.
      std::vector<std::tuple<SimTime, SimTime, Bytes>> windows;
    };
    auto progress = std::make_shared<StripeProgress>();
    progress->remaining = sessions.size();

    sim_.schedule_after(data_setup, [this, sessions = std::move(sessions),
                                     stripes, remote_path, options, overhead,
                                     timed_start, route = *route, size = *size,
                                     base_slice, progress,
                                     callback = std::move(callback)]() mutable {
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        const Bytes offset = static_cast<Bytes>(i) * base_slice;
        const Bytes slice = i + 1 == sessions.size()
                                ? size - offset  // last stripe: remainder
                                : base_slice;
        const Reply reply = sessions[i]->handle(
            {.verb = "ERET",
             .argument = util::format(
                 "P %llu %llu %s", static_cast<unsigned long long>(offset),
                 static_cast<unsigned long long>(slice), remote_path.c_str())});
        if (!reply.ok()) {
          // A stripe refusing after negotiation is a programming error
          // in this simulation (sizes were validated above).
          WADP_CHECK_MSG(false, "stripe refused granted retrieve");
        }
        (void)sessions[i]->take_pending_data();

        net::FlowSpec spec;
        spec.path = route.path;
        spec.links = route.links;
        spec.tcp = route.tcp;
        spec.base_rtt = route.rtt;
        spec.streams = options.streams;
        spec.buffer = options.buffer;
        spec.size = slice;
        spec.extra_resources.push_back(&stripes[i]->storage().read_port());
        if (local_storage_ != nullptr) {
          spec.extra_resources.push_back(&local_storage_->write_port());
        }
        spec.on_complete = [this, session = sessions[i], stripe = stripes[i],
                            remote_path, slice, timed_start, options, size,
                            overhead, progress,
                            callback](const net::FlowStats& stats) {
          const TransferRecord record = stripe->record_transfer(
              ip_, remote_path, slice, timed_start, stats.end,
              Operation::kRead, options.streams, options.buffer);
          (void)session->complete_transfer(true);
          progress->last_end = std::max(progress->last_end, stats.end);
          progress->windows.emplace_back(stats.start, stats.end, slice);
          if (progress->first_record.host.empty()) {
            progress->first_record = record;
          }
          if (--progress->remaining > 0) return;

          // All stripes done: synthesize the whole-file outcome over
          // the full window.
          outcome_counter("ok").inc();
          emit_attempt_event("striped_get", stripe->config().host,
                             /*ok=*/true, {}, size);
          const obs::SpanId root = record_transfer_spans(
              to_string(Operation::kRead), stripe->site(), site_, size,
              options.streams, overhead, timed_start, timed_start,
              progress->last_end, stripe->config().logging_overhead,
              /*write_side=*/false, /*record_stream_child=*/false);
          for (std::size_t w = 0; w < progress->windows.size(); ++w) {
            const auto& [flow_start, flow_end, bytes] = progress->windows[w];
            obs::Tracer::global().record(
                "stream", root, obs::sim_ns(flow_start),
                obs::sim_ns(flow_end),
                {{"STRIPE", std::to_string(w)},
                 {"BYTES", std::to_string(bytes)}});
          }
          TransferOutcome outcome;
          outcome.ok = true;
          outcome.control_overhead = overhead;
          outcome.record = progress->first_record;
          outcome.record.file_size = size;
          outcome.record.start_time = timed_start;
          outcome.record.end_time = progress->last_end;
          if (callback) {
            sim_.schedule_after(
                stripe->config().logging_overhead,
                [callback, outcome] { callback(outcome); });
          }
        };
        engine_.start_flow(std::move(spec));
      }
    });
  });
}

}  // namespace wadp::gridftp
