#include "gridftp/fs.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace wadp::gridftp {
namespace {

/// True when `path` is inside the directory `root` (not merely sharing
/// a string prefix: "/data2/x" is not under "/data").
bool under_volume(std::string_view path, std::string_view root) {
  if (!util::starts_with(path, root)) return false;
  if (path.size() == root.size()) return false;  // the root itself is not a file
  return path[root.size()] == '/' || root.back() == '/';
}

}  // namespace

void VirtualFs::add_volume(std::string root) {
  if (!root.empty() && root.size() > 1 && root.back() == '/') root.pop_back();
  const auto it = std::lower_bound(volumes_.begin(), volumes_.end(), root);
  if (it != volumes_.end() && *it == root) return;
  volumes_.insert(it, std::move(root));
}

bool VirtualFs::add_file(std::string path, Bytes size) {
  if (path.empty() || path.front() != '/') return false;
  if (!volume_of(path)) return false;
  files_[std::move(path)] = size;
  return true;
}

bool VirtualFs::remove_file(std::string_view path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  files_.erase(it);
  return true;
}

bool VirtualFs::exists(std::string_view path) const {
  return files_.contains(path);
}

std::optional<Bytes> VirtualFs::file_size(std::string_view path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> VirtualFs::volume_of(std::string_view path) const {
  std::optional<std::string> best;
  for (const auto& root : volumes_) {
    if (under_volume(path, root)) {
      if (!best || root.size() > best->size()) best = root;
    }
  }
  return best;
}

std::vector<std::string> VirtualFs::list_volume(std::string_view root) const {
  std::vector<std::string> out;
  for (const auto& [path, size] : files_) {
    if (under_volume(path, root)) out.push_back(path);
  }
  return out;
}

}  // namespace wadp::gridftp
