#include "gridftp/server.hpp"

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace wadp::gridftp {

GridFtpServer::GridFtpServer(ServerConfig config,
                             storage::StorageSystem& storage)
    : config_(std::move(config)), storage_(storage), log_(config_.trim) {
  // Site label only — host/IP/file stay out of the label set
  // (cardinality rules in docs/OBSERVABILITY.md).
  auto& registry = obs::Registry::global();
  for (const Operation op : {Operation::kRead, Operation::kWrite}) {
    const obs::Labels labels = {{"op", to_string(op)},
                                {"site", config_.site}};
    OpMetrics& metrics = metrics_[op == Operation::kRead ? 0 : 1];
    metrics.transfers = &registry.counter(
        "wadp_transfers_logged_total", labels,
        "ULM transfer records appended by GridFTP servers");
    metrics.bytes =
        &registry.counter("wadp_transfer_bytes_total", labels,
                          "Payload bytes moved by logged transfers");
    metrics.bandwidth =
        &registry.histogram("wadp_transfer_bandwidth_mbps", labels,
                            "Measured per-transfer bandwidth (MB/s)");
    metrics.duration =
        &registry.histogram("wadp_transfer_duration_seconds", labels,
                            "Timed-window duration of logged transfers");
  }
}

std::string GridFtpServer::url() const {
  return util::format("gsiftp://%s:%d", config_.host.c_str(), config_.port);
}

TransferRecord GridFtpServer::record_transfer(const std::string& remote_ip,
                                              const std::string& path,
                                              Bytes bytes_moved, SimTime start,
                                              SimTime end, Operation op,
                                              int streams, Bytes buffer,
                                              Bandwidth net_probe) {
  TransferRecord record;
  record.host = config_.host;
  record.source_ip = remote_ip;
  record.file_name = path;
  record.file_size = bytes_moved;
  record.volume = fs_.volume_of(path).value_or("/");
  record.start_time = start;
  record.end_time = end;
  record.op = op;
  record.streams = streams;
  record.tcp_buffer = buffer;
  // The request's causal trace, when the client attempt installed one.
  record.trace_id = obs::TraceContext::current().trace_id;
  if (config_.sample_disk) {
    // The port the payload actually crossed: reads stream from the read
    // port, writes land on the write port.
    auto& port = op == Operation::kRead ? storage_.read_port()
                                        : storage_.write_port();
    record.disk_throughput = port.capacity_at(end);
  }
  record.net_probe = net_probe;
  log_.append(record);
  ++transfers_logged_;

  const OpMetrics& metrics = metrics_for(op);
  metrics.transfers->inc();
  metrics.bytes->inc(bytes_moved);
  metrics.bandwidth->record(to_mb_per_sec(record.bandwidth()));
  metrics.duration->record(end - start);
  return record;
}

}  // namespace wadp::gridftp
