#include "gridftp/server.hpp"

#include "util/strings.hpp"

namespace wadp::gridftp {

GridFtpServer::GridFtpServer(ServerConfig config,
                             storage::StorageSystem& storage)
    : config_(std::move(config)), storage_(storage), log_(config_.trim) {}

std::string GridFtpServer::url() const {
  return util::format("gsiftp://%s:%d", config_.host.c_str(), config_.port);
}

TransferRecord GridFtpServer::record_transfer(const std::string& remote_ip,
                                              const std::string& path,
                                              Bytes bytes_moved, SimTime start,
                                              SimTime end, Operation op,
                                              int streams, Bytes buffer) {
  TransferRecord record;
  record.host = config_.host;
  record.source_ip = remote_ip;
  record.file_name = path;
  record.file_size = bytes_moved;
  record.volume = fs_.volume_of(path).value_or("/");
  record.start_time = start;
  record.end_time = end;
  record.op = op;
  record.streams = streams;
  record.tcp_buffer = buffer;
  log_.append(record);
  ++transfers_logged_;
  return record;
}

}  // namespace wadp::gridftp
