#include "gridftp/protocol.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::gridftp {

std::optional<CommandMessage> CommandMessage::parse(std::string_view line) {
  const auto trimmed = util::trim(line);
  if (trimmed.empty()) return std::nullopt;
  const auto space = trimmed.find(' ');
  std::string_view verb = space == std::string_view::npos
                              ? trimmed
                              : trimmed.substr(0, space);
  if (verb.size() < 3 || verb.size() > 4) return std::nullopt;
  CommandMessage message;
  for (char c : verb) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
    message.verb += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (space != std::string_view::npos) {
    message.argument = std::string(util::trim(trimmed.substr(space + 1)));
  }
  return message;
}

std::string CommandMessage::to_line() const {
  return argument.empty() ? verb : verb + ' ' + argument;
}

std::optional<Reply> Reply::parse(std::string_view line) {
  const auto trimmed = util::trim(line);
  if (trimmed.size() < 3) return std::nullopt;
  int code = 0;
  for (int i = 0; i < 3; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(trimmed[static_cast<std::size_t>(i)]))) {
      return std::nullopt;
    }
    code = code * 10 + (trimmed[static_cast<std::size_t>(i)] - '0');
  }
  if (code < 100) return std::nullopt;
  Reply reply;
  reply.code = code;
  if (trimmed.size() > 3) {
    if (trimmed[3] != ' ') return std::nullopt;
    reply.text = std::string(trimmed.substr(4));
  }
  return reply;
}

std::string Reply::to_line() const {
  WADP_CHECK(code >= 100 && code <= 599);
  return util::format("%03d %s", code, text.c_str());
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kAwaitingAuth:
      return "awaiting-auth";
    case SessionState::kAwaitingAdat:
      return "awaiting-adat";
    case SessionState::kAwaitingUser:
      return "awaiting-user";
    case SessionState::kAwaitingPass:
      return "awaiting-pass";
    case SessionState::kReady:
      return "ready";
    case SessionState::kTransferring:
      return "transferring";
    case SessionState::kClosed:
      return "closed";
  }
  return "?";
}

ServerSession::ServerSession(GridFtpServer& server)
    : server_(server), state_(SessionState::kAwaitingAuth) {}

Reply ServerSession::handle_line(std::string_view line) {
  const auto command = CommandMessage::parse(line);
  if (!command) return {500, "syntax error, command unrecognized"};
  return handle(*command);
}

Reply ServerSession::handle(const CommandMessage& command) {
  // Availability gates every command: a drained server turns clients
  // away at the control channel (the 421 the paper's tools would see).
  if (!server_.accepting()) {
    state_ = SessionState::kClosed;
    return {421, "service not available: " + server_.config().host};
  }
  if (state_ == SessionState::kClosed) {
    return {421, "control connection closed"};
  }

  const auto& verb = command.verb;
  if (verb == "QUIT") {
    state_ = SessionState::kClosed;
    return {221, "goodbye"};
  }
  if (verb == "NOOP") return {200, "ok"};

  switch (state_) {
    case SessionState::kAwaitingAuth:
      if (verb == "AUTH") {
        if (!util::iequals(command.argument, "GSSAPI")) {
          return {504, "only GSSAPI is supported"};
        }
        state_ = SessionState::kAwaitingAdat;
        return {334, "GSSAPI accepted; security data required"};
      }
      return {530, "please authenticate with AUTH GSSAPI first"};

    case SessionState::kAwaitingAdat:
      if (verb == "ADAT") {
        if (command.argument.empty()) return {535, "empty security token"};
        state_ = SessionState::kAwaitingUser;
        return {235, "security context established"};
      }
      return {503, "bad sequence: ADAT expected"};

    case SessionState::kAwaitingUser:
      if (verb == "USER") {
        if (command.argument.empty()) return {501, "missing user name"};
        user_ = command.argument;
        state_ = SessionState::kAwaitingPass;
        return {331, "password (or delegated credential) required"};
      }
      return {503, "bad sequence: USER expected"};

    case SessionState::kAwaitingPass:
      if (verb == "PASS") {
        state_ = SessionState::kReady;
        return {230, "user " + user_ + " logged in"};
      }
      return {503, "bad sequence: PASS expected"};

    case SessionState::kReady:
      return dispatch_ready(command);

    case SessionState::kTransferring:
      return {503, "transfer in progress"};

    case SessionState::kClosed:
      break;  // unreachable: handled above
  }
  return {421, "control connection closed"};
}

Reply ServerSession::dispatch_ready(const CommandMessage& command) {
  const auto& verb = command.verb;
  const auto& arg = command.argument;

  if (verb == "SYST") return {215, "UNIX Type: L8 (wadp simulated)"};
  if (verb == "FEAT") {
    return {211, "features: AUTH GSSAPI; SBUF; PARALLEL; ERET; REST STREAM;"
                 " SIZE"};
  }
  if (verb == "PWD") return {257, "\"/\" is the current directory"};

  if (verb == "TYPE") {
    if (arg == "I" || arg == "A") {
      options_.type = arg[0];
      return {200, std::string("type set to ") + arg};
    }
    return {504, "unsupported type: " + arg};
  }
  if (verb == "MODE") {
    if (arg == "S" || arg == "E") {
      options_.mode = arg[0];
      return {200, std::string("mode set to ") + arg};
    }
    return {504, "unsupported mode: " + arg};
  }
  if (verb == "SBUF") {
    const auto bytes = util::parse_int(arg);
    if (!bytes || *bytes <= 0) return {501, "bad buffer size: " + arg};
    options_.buffer = static_cast<Bytes>(*bytes);
    return {200, "socket buffer set to " + arg};
  }
  if (verb == "OPTS") {
    // "OPTS RETR Parallelism=n;" — the GridFTP parallelism option.
    const auto parts = util::split_whitespace(arg);
    if (parts.size() == 2 && util::iequals(parts[0], "RETR") &&
        util::starts_with(util::to_lower(parts[1]), "parallelism=")) {
      auto value = parts[1].substr(std::string("parallelism=").size());
      if (!value.empty() && value.back() == ';') value.pop_back();
      const auto n = util::parse_int(value);
      if (!n || *n < 1 || *n > 64) return {501, "bad parallelism: " + arg};
      options_.parallelism = static_cast<int>(*n);
      return {200, "parallelism set to " + value};
    }
    return {501, "unsupported option: " + arg};
  }
  if (verb == "PASV" || verb == "SPAS") {
    options_.passive = true;
    // The simulated data channel has no real endpoint; report a
    // conventional placeholder.
    return {227, "entering passive mode (0,0,0,0,20,40)"};
  }
  if (verb == "PORT" || verb == "SPOR") {
    options_.passive = false;
    return {200, "port command successful"};
  }
  if (verb == "ALLO") {
    const auto bytes = util::parse_int(arg);
    if (!bytes || *bytes < 0) return {501, "bad allocation size: " + arg};
    allo_size_ = static_cast<Bytes>(*bytes);
    return {200, "allocation noted"};
  }
  if (verb == "REST") {
    const auto offset = util::parse_int(arg);
    if (!offset || *offset < 0) return {501, "bad restart offset: " + arg};
    options_.restart_offset = static_cast<Bytes>(*offset);
    return {350, "restart marker accepted"};
  }
  if (verb == "SIZE") {
    const auto size = server_.fs().file_size(arg);
    if (!size) return {550, "no such file: " + arg};
    return {213, std::to_string(*size)};
  }
  if (verb == "DELE") {
    if (!server_.fs().remove_file(arg)) {
      return {550, "no such file: " + arg};
    }
    return {250, "file deleted"};
  }
  if (verb == "RETR") {
    return begin_retrieve(arg, options_.restart_offset, std::nullopt);
  }
  if (verb == "ERET") {
    // GridFTP partial retrieve: "ERET P <offset> <length> <path>".
    const auto parts = util::split_whitespace(arg);
    if (parts.size() < 4 || !util::iequals(parts[0], "P")) {
      return {501, "expected: ERET P <offset> <length> <path>"};
    }
    const auto offset = util::parse_int(parts[1]);
    const auto length = util::parse_int(parts[2]);
    if (!offset || !length || *offset < 0 || *length <= 0) {
      return {501, "bad partial range"};
    }
    // Path may contain spaces (Fig. 3!): rejoin the remainder.
    std::string path = parts[3];
    for (std::size_t i = 4; i < parts.size(); ++i) path += " " + parts[i];
    return begin_retrieve(path, static_cast<Bytes>(*offset),
                          static_cast<Bytes>(*length));
  }
  if (verb == "STOR") {
    return begin_store(arg);
  }
  return {502, "command not implemented: " + verb};
}

Reply ServerSession::begin_retrieve(const std::string& path,
                                    std::optional<Bytes> offset,
                                    std::optional<Bytes> length) {
  const auto size = server_.fs().file_size(path);
  if (!size) return {550, "no such file: " + path};
  const Bytes start = offset.value_or(0);
  if (length) {
    if (*length == 0 || start + *length > *size) {
      return {551, "invalid byte range"};
    }
  } else if (start >= *size && *size > 0) {
    return {551, "restart offset beyond end of file"};
  }

  DataCommand data;
  data.kind = DataCommand::Kind::kRetrieve;
  data.path = path;
  data.offset = start;
  data.length = length ? length : std::optional<Bytes>(*size - start);
  data.streams = options_.parallelism;
  data.buffer = options_.buffer;
  pending_ = std::move(data);
  options_.restart_offset.reset();
  state_ = SessionState::kTransferring;
  return {150, "opening data connection for " + path};
}

Reply ServerSession::begin_store(const std::string& path) {
  if (!server_.fs().volume_of(path)) {
    return {553, "path outside any volume: " + path};
  }
  DataCommand data;
  data.kind = DataCommand::Kind::kStore;
  data.path = path;
  data.store_size = allo_size_;
  data.streams = options_.parallelism;
  data.buffer = options_.buffer;
  pending_ = std::move(data);
  allo_size_.reset();
  state_ = SessionState::kTransferring;
  return {150, "opening data connection for " + path};
}

std::optional<DataCommand> ServerSession::take_pending_data() {
  auto pending = std::move(pending_);
  pending_.reset();
  return pending;
}

Reply ServerSession::complete_transfer(bool ok) {
  WADP_CHECK_MSG(state_ == SessionState::kTransferring,
                 "no transfer outstanding");
  state_ = SessionState::kReady;
  if (ok) return {226, "transfer complete"};
  return {426, "connection closed; transfer aborted"};
}

}  // namespace wadp::gridftp
