// Write-ahead log for HistoryStore ingest.
//
// Every transfer record the store applies is appended here as a
// CRC32C-framed binary entry (codec.hpp) carrying a monotone log
// sequence number.  The durability contract is *apply-before-log*:
// the store mutates first, the WAL observer appends second, so a
// record is durable once its batch reaches the segment file — and a
// record lost in the pre-flush window is indistinguishable from one
// that never arrived (same as any fsync'd system loses its tail).
// That ordering is also what makes a snapshot's sealed LSN a safe
// truncation bound: see docs/DURABILITY.md for the proof sketch.
//
// Appends are batched (group commit): entries accumulate in an
// in-memory buffer and reach the file as one write when the batch
// fills, the policy demands it, or flush() is called.  The fsync
// policy decides what "durable" costs:
//
//   kNone   — write() only; the OS page cache owns the tail.
//   kBatch  — one fsync per flushed batch (the default).
//   kAlways — every append flushes and fsyncs (group size 1).
//
// Segments rotate at a byte bound; each segment file records the base
// LSN it starts at, so truncation can drop whole segments that a
// snapshot seals without reading them.  Replay is torn-tail tolerant:
// it stops cleanly at the last valid frame, counts what it refused in
// wadp_wal_torn_frames_total, and never aborts the process.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "durability/codec.hpp"
#include "gridftp/record.hpp"
#include "obs/metrics.hpp"

namespace wadp::durability {

enum class FsyncPolicy {
  kNone,    ///< buffered writes only; fastest, loses the OS cache on power cut
  kBatch,   ///< fsync once per group-commit batch
  kAlways,  ///< fsync every record (group commit degenerates to size 1)
};

const char* to_string(FsyncPolicy policy);

struct WalConfig {
  /// Directory holding the segment files (created if missing).
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Records per group-commit batch (>=1).  kAlways ignores this.
  std::size_t group_commit_records = 64;
  /// Rotate to a fresh segment once the current one exceeds this.
  std::size_t segment_bytes = 8u << 20;
  /// Register obs/ metrics (ephemeral WALs in tests switch this off).
  bool instrumented = true;
};

struct WalStats {
  std::uint64_t appended = 0;       ///< entries accepted by append()
  std::uint64_t batches = 0;        ///< group commits written
  std::uint64_t fsyncs = 0;         ///< fsync() calls issued
  std::uint64_t bytes_written = 0;  ///< framed bytes reaching segments
  std::uint64_t last_lsn = 0;       ///< highest LSN assigned
  std::uint64_t durable_lsn = 0;    ///< highest LSN flushed to a segment
  std::size_t segments = 0;         ///< segment files on disk
};

/// What a replay pass over the segment files saw.
struct ReplayStats {
  std::size_t entries = 0;      ///< checksum-valid entries delivered
  std::size_t torn_frames = 0;  ///< frames refused (torn tail / bad CRC)
  std::size_t segments = 0;     ///< segment files visited
  std::uint64_t max_lsn = 0;    ///< highest LSN delivered
  std::uint64_t bytes = 0;      ///< bytes consumed as valid frames
  bool stopped_early = false;   ///< a torn/corrupt frame ended the pass
};

class WriteAheadLog {
 public:
  /// Opens `config.dir` (scanning existing segments to continue the
  /// LSN sequence past them) and starts a fresh segment — appending
  /// after a possibly-torn tail is never attempted.
  explicit WriteAheadLog(WalConfig config);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record; returns its LSN.  Thread-safe.
  std::uint64_t append(const gridftp::TransferRecord& record);

  /// Writes (and per policy fsyncs) any pending batch.
  void flush();

  WalStats stats() const;

  /// Deletes whole segments whose every entry has LSN <= `lsn` (the
  /// active segment always survives).  Returns segments removed.
  std::size_t truncate_through(std::uint64_t lsn);

  /// Sorted segment paths currently on disk.
  std::vector<std::string> segments() const;

  /// Bytes on disk across all segments.
  std::uint64_t size_bytes() const;

  const WalConfig& config() const { return config_; }

  /// Replays every segment of `dir` in LSN order, invoking `fn` per
  /// valid entry.  Stops — cleanly — at the first torn or corrupt
  /// frame; everything after it is considered lost tail, EXCEPT when
  /// the next segment's base LSN is exactly last-valid + 1, which
  /// proves a writer restarted right after that tear (a reopened WAL
  /// resumes the LSN sequence from the last valid frame).  Replay then
  /// continues there, so records fsynced after a crash-restart survive
  /// a second crash.  Counts refusals in wadp_wal_torn_frames_total.
  /// Never throws, never aborts.
  using EntryFn = std::function<void(const WalEntry&)>;
  static ReplayStats replay(const std::string& dir, const EntryFn& fn);

  /// Sorted segment paths under `dir` (static: recovery runs before
  /// any WriteAheadLog object exists).
  static std::vector<std::string> list_segments(const std::string& dir);

 private:
  void open_segment_locked(std::uint64_t base_lsn);
  /// Flushes the pending batch.  Takes `mu_` held via `lock`; releases
  /// it around the file write + fsync (single-flusher protocol, see
  /// the .cpp) so producers keep appending while the disk syncs, and
  /// reacquires it before returning.  On return the caller's batch is
  /// durable per policy.
  void flush_with_lock(std::unique_lock<std::mutex>& lock);

  WalConfig config_;
  mutable std::mutex mu_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;           // a thread is in the unlocked IO window
  std::FILE* file_ = nullptr;       // active segment
  std::string file_path_;
  std::uint64_t segment_written_ = 0;  // bytes in the active segment
  std::string pending_;                // framed, not yet written
  std::string io_buf_;                 // batch being written (flusher-owned)
  std::size_t pending_records_ = 0;
  std::uint64_t first_pending_lsn_ = 0;
  std::uint64_t next_lsn_ = 1;
  WalStats stats_;

  struct Metrics {
    obs::Counter* appends = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Counter* written_bytes = nullptr;
    obs::Counter* truncated_segments = nullptr;
    obs::Gauge* size_bytes = nullptr;
    obs::Gauge* segments = nullptr;
    obs::Histogram* fsync_seconds = nullptr;
  };
  Metrics metrics_;
};

}  // namespace wadp::durability
