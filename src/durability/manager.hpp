// DurabilityManager: the durability plane's assembly point.
//
// Wires the three mechanisms (WAL, snapshots, recovery) onto one
// HistoryStore:
//
//   * attach() registers a record observer on the store, so every
//     record-level ingest is appended to the WAL *after* the store
//     applies it (apply-before-log — see wal.hpp);
//   * snapshot_now() seals the WAL at its current last LSN, writes a
//     point-in-time snapshot of the whole store, truncates WAL
//     segments the seal covers, and prunes old snapshots past the
//     retention count;
//   * recover() (static — it runs before any WAL object exists) loads
//     the newest valid snapshot into an empty store, then replays the
//     WAL tail on top.  Entries at or below the snapshot's sealed LSN
//     are skipped outright; entries above it may still overlap what
//     the snapshot captured (apply-before-log races the capture), and
//     those are absorbed by the store's dedupe index — which is why a
//     recovered store must be built with StoreConfig::dedupe_records
//     on (recover() checks).
//
// The recovery contract is *bit-identical* state: the restored series
// hold the exact observation doubles, epochs, generations and
// eviction counters of the pre-crash store, so streaming-predictor
// batteries rebuilt from them (core::PredictionService::warm_up) and
// serving-cache watermarks validate exactly as they would have.
// tests/durability/recovery_test asserts this with EXPECT_DOUBLE_EQ
// against the offline predict::Evaluator.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "durability/snapshot.hpp"
#include "durability/wal.hpp"
#include "history/store.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::durability {

struct DurabilityConfig {
  /// Root directory; the WAL lives in <dir>/wal, snapshots in
  /// <dir>/snapshots.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  std::size_t group_commit_records = 64;
  std::size_t segment_bytes = 8u << 20;
  /// Snapshots retained after a successful snapshot_now() (>= 1).
  std::uint64_t keep_snapshots = 2;
  bool instrumented = true;
};

/// Directory layout helpers (recovery and the CLI need them before a
/// manager exists).
std::string wal_dir(const std::string& root);
std::string snapshot_dir(const std::string& root);

/// What recover() did, for logs / the CLI / tests.
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;
  std::size_t snapshot_series = 0;
  std::size_t snapshot_observations = 0;
  std::uint64_t sealed_lsn = 0;       ///< replay skipped LSNs <= this
  std::size_t frames_replayed = 0;    ///< valid WAL entries visited
  std::size_t records_applied = 0;    ///< entries the store accepted
  std::size_t records_deduped = 0;    ///< entries the dedupe index ate
  std::size_t torn_frames = 0;        ///< frames the replay refused
  double seconds = 0.0;               ///< wall time of the whole pass
};

/// Point-in-time status for `wadp durability` and the info provider.
struct DurabilityStatus {
  WalStats wal;
  std::uint64_t wal_bytes = 0;
  std::optional<std::uint64_t> snapshot_seq;
  SnapshotMeta snapshot;              ///< meaningful iff snapshot_seq
  double snapshot_age_seconds = 0.0;  ///< since manifest commit
};

class DurabilityManager {
 public:
  /// Opens (or creates) the WAL under `config.dir` and binds to
  /// `store`.  Does NOT recover and does NOT attach — the calling
  /// order is: recover() into the store, construct the manager,
  /// attach(), then wire producers.
  DurabilityManager(std::shared_ptr<history::HistoryStore> store,
                    DurabilityConfig config);

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Rebuilds `store` from the newest valid snapshot plus the WAL
  /// tail under `root`.  The store must be empty and must have
  /// dedupe_records on (checked); a missing directory recovers to an
  /// empty store (stats say so) — first boot is not an error.
  static Expected<RecoveryStats> recover(const std::string& root,
                                         history::HistoryStore& store);

  /// Registers the WAL as a record observer on the store.  Call once.
  void attach();

  /// Seals, snapshots, truncates, prunes.  Safe to call concurrently
  /// with ingest (capture leases, never stalls producers).
  Expected<SnapshotMeta> snapshot_now();

  /// Flushes any pending WAL batch (shutdown hook).
  void flush() { wal_.flush(); }

  DurabilityStatus status() const;

  WriteAheadLog& wal() { return wal_; }
  const DurabilityConfig& config() const { return config_; }

 private:
  DurabilityConfig config_;
  std::shared_ptr<history::HistoryStore> store_;
  WriteAheadLog wal_;
  /// Serializes snapshot_now() callers (ingest is unaffected).
  std::mutex snapshot_mu_;

  struct Metrics {
    obs::Counter* snapshots = nullptr;
    obs::Histogram* snapshot_write_seconds = nullptr;
    obs::Gauge* snapshot_age_seconds = nullptr;
  };
  Metrics metrics_;
};

}  // namespace wadp::durability
