// Binary record codec for the durability plane.
//
// The WAL and the snapshot files share one wire vocabulary, defined
// here and specified byte-for-byte in docs/DURABILITY.md:
//
//   * little-endian fixed-width integers, written explicitly byte by
//     byte (the format is the contract, not the host's memory layout);
//   * doubles as their IEEE-754 bit patterns, so a decoded observation
//     is *bit-identical* to the one that was encoded — the property
//     the whole recovery plane rests on;
//   * length-prefixed strings (u16 length, unterminated bytes);
//   * CRC32C (Castagnoli) integrity frames: [u32 length][u32 crc]
//     [payload], crc over the payload only.  A torn tail or a flipped
//     bit fails the frame, never the process;
//   * a one-byte record version inside every payload.  Decoders read
//     the fields they know in order and ignore trailing bytes, so a
//     future field appended to the encoding is backward-readable
//     (old reader skips it; new reader defaults it on old records).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "gridftp/record.hpp"

namespace wadp::durability {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78), the checksum
/// modern storage systems frame their logs with.  Software table
/// implementation — no hardware dependency.
std::uint32_t crc32c(std::span<const std::byte> data);
std::uint32_t crc32c(std::string_view data);

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern via u64
  /// u16 length prefix + raw bytes; strings longer than 65535 bytes
  /// are truncated (no field in a TransferRecord legitimately is).
  void str(std::string_view v);
  void raw(std::string_view v);

  /// Owns its buffer by default; the hot path hands in an external
  /// buffer to append to instead (no temporary, no copy).
  ByteWriter() : buf_(&owned_) {}
  explicit ByteWriter(std::string& out) : buf_(&out) {}

  const std::string& bytes() const { return *buf_; }
  std::string take() { return std::move(owned_); }
  std::size_t size() const { return buf_->size(); }

 private:
  std::string owned_;
  std::string* buf_;
};

/// Consumes little-endian primitives from a byte span.  Every read
/// reports success; a short buffer never traps — the caller decides
/// whether a missing trailing field is an error (mid-record cut) or a
/// version skew (older writer), which is what makes the record format
/// forward- and backward-readable.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool f64(double& v);
  bool str(std::string& v);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Current version of the TransferRecord payload encoding.
/// v1: the original Fig. 3 field set (through trace_id).
/// v2: appends f64 disk_throughput + f64 net_probe (the regression
///     battery's regressors); v1 payloads decode with both fields 0.
inline constexpr std::uint8_t kRecordVersion = 2;

/// One WAL entry: a transfer record plus its log sequence number.
/// LSNs are assigned by the WAL, monotone from 1, and are the
/// coordinate system snapshots seal against.
struct WalEntry {
  std::uint64_t lsn = 0;
  gridftp::TransferRecord record;

  bool operator==(const WalEntry&) const = default;
};

/// Encodes an entry payload (record version byte + lsn + record
/// fields; see docs/DURABILITY.md for the exact field order).
std::string encode_entry(const WalEntry& entry);

/// Decodes a payload.  nullopt when the payload is cut mid-field or
/// carries an unknown (newer major) record version.  Trailing bytes
/// beyond the known fields are ignored.
std::optional<WalEntry> decode_entry(std::string_view payload);

/// Frames a payload for appending to a WAL segment:
/// [u32 length][u32 crc32c(payload)][payload].
std::string frame(std::string_view payload);

/// Appends one complete frame — header plus encoded entry payload —
/// directly onto `buf`.  Byte-for-byte identical to
/// `frame(encode_entry(...))` but with no temporary strings and no
/// TransferRecord copy: this is the WAL append hot path, charged to
/// every ingested record.
void append_framed_entry(std::string& buf, std::uint64_t lsn,
                         const gridftp::TransferRecord& record);

/// Why frame consumption stopped.
enum class FrameStatus {
  kOk,         ///< a whole, checksum-valid frame was consumed
  kEnd,        ///< clean end of input (zero bytes left)
  kTorn,       ///< header or payload cut short (crash mid-write)
  kCorrupt,    ///< checksum mismatch or insane length
};

/// Consumes one frame from `data` starting at `offset`.  On kOk the
/// payload view (into `data`) is stored in `payload` and `offset`
/// advances past the frame; on anything else `offset` is unchanged.
FrameStatus next_frame(std::string_view data, std::size_t& offset,
                       std::string_view& payload);

/// Upper bound a frame length field may claim before the stream is
/// declared corrupt (a real entry is < 1 KB; 16 MB of slack keeps the
/// format open to bulk records without trusting garbage lengths).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

}  // namespace wadp::durability
