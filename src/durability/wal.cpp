#include "durability/wal.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kSegmentMagic = "WADPWAL\x01";
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8;

std::string segment_name(std::uint64_t base_lsn) {
  return util::format("wal-%016llx.seg",
                      static_cast<unsigned long long>(base_lsn));
}

/// Reads a whole file into a string; empty on failure (a vanished or
/// unreadable segment reads as zero frames, never as a crash).
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// Parses a segment header.  Returns the base LSN, or nullopt when the
/// header is missing or from an unknown version.
std::optional<std::uint64_t> parse_header(std::string_view data) {
  if (data.size() < kSegmentHeaderBytes) return std::nullopt;
  if (data.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    return std::nullopt;
  }
  ByteReader reader(data.substr(8));
  std::uint32_t version = 0, reserved = 0;
  std::uint64_t base_lsn = 0;
  if (!reader.u32(version) || !reader.u32(reserved) ||
      !reader.u64(base_lsn)) {
    return std::nullopt;
  }
  if (version != kSegmentVersion) return std::nullopt;
  return base_lsn;
}

std::string make_header(std::uint64_t base_lsn) {
  ByteWriter w;
  w.raw(kSegmentMagic);
  w.u32(kSegmentVersion);
  w.u32(0);
  w.u64(base_lsn);
  return w.take();
}

/// Reads just the fixed-size header of a segment file and returns its
/// base LSN — no reason to pull megabytes of frames through the page
/// cache to learn 8 bytes.
std::optional<std::uint64_t> read_segment_base(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char buf[kSegmentHeaderBytes];
  in.read(buf, static_cast<std::streamsize>(kSegmentHeaderBytes));
  if (static_cast<std::size_t>(in.gcount()) < kSegmentHeaderBytes) {
    return std::nullopt;
  }
  return parse_header(std::string_view(buf, kSegmentHeaderBytes));
}

obs::Counter& torn_counter() {
  return obs::Registry::global().counter(
      "wadp_wal_torn_frames_total", {},
      "WAL frames refused during replay (torn tail, bad checksum)");
}

}  // namespace

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

WriteAheadLog::WriteAheadLog(WalConfig config) : config_(std::move(config)) {
  WADP_CHECK_MSG(!config_.dir.empty(), "WAL needs a directory");
  if (config_.group_commit_records == 0) config_.group_commit_records = 1;
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  WADP_CHECK_MSG(!ec, "cannot create WAL directory");

  if (config_.instrumented) {
    auto& registry = obs::Registry::global();
    metrics_.appends = &registry.counter(
        "wadp_wal_appends_total", {}, "Records appended to the WAL");
    metrics_.batches = &registry.counter(
        "wadp_wal_commit_batches_total", {},
        "Group-commit batches written to WAL segments");
    metrics_.fsyncs = &registry.counter(
        "wadp_wal_fsyncs_total", {}, "fsync() calls issued by the WAL");
    metrics_.written_bytes = &registry.counter(
        "wadp_wal_written_bytes_total", {},
        "Framed bytes written to WAL segments");
    metrics_.truncated_segments = &registry.counter(
        "wadp_wal_truncated_segments_total", {},
        "WAL segments deleted because a snapshot sealed past them");
    metrics_.size_bytes = &registry.gauge(
        "wadp_wal_size_bytes", {}, "Bytes on disk across WAL segments");
    metrics_.segments = &registry.gauge(
        "wadp_wal_segments", {}, "WAL segment files on disk");
    metrics_.fsync_seconds = &registry.histogram(
        "wadp_wal_fsync_seconds", {},
        "Wall-clock latency of WAL fsync() calls — the wal.fsync_p99 "
        "SLO rule watches this");
  }

  // Continue the LSN sequence past whatever segments already exist.
  // The scan walks valid frames only — a torn tail simply does not
  // advance the LSN, which is exactly the durability contract.
  std::uint64_t max_lsn = 0;
  for (const auto& path : list_segments(config_.dir)) {
    const std::string data = slurp(path);
    const auto base = parse_header(data);
    if (!base) continue;
    std::size_t offset = kSegmentHeaderBytes;
    std::string_view payload;
    while (next_frame(data, offset, payload) == FrameStatus::kOk) {
      if (const auto entry = decode_entry(payload)) {
        max_lsn = std::max(max_lsn, entry->lsn);
      }
    }
    max_lsn = std::max(max_lsn, *base == 0 ? 0 : *base - 1);
  }
  next_lsn_ = max_lsn + 1;

  std::lock_guard<std::mutex> lock(mu_);
  open_segment_locked(next_lsn_);
}

WriteAheadLog::~WriteAheadLog() {
  flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void WriteAheadLog::open_segment_locked(std::uint64_t base_lsn) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_path_ = (fs::path(config_.dir) / segment_name(base_lsn)).string();
  file_ = std::fopen(file_path_.c_str(), "wb");
  WADP_CHECK_MSG(file_ != nullptr, "cannot open WAL segment");
  const std::string header = make_header(base_lsn);
  std::fwrite(header.data(), 1, header.size(), file_);
  std::fflush(file_);
  segment_written_ = header.size();
  ++stats_.segments;
  if (metrics_.segments != nullptr) {
    metrics_.segments->set(static_cast<double>(list_segments(config_.dir).size()));
  }
}

std::uint64_t WriteAheadLog::append(const gridftp::TransferRecord& record) {
  std::uint64_t lsn = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    lsn = next_lsn_++;
    if (pending_.empty()) first_pending_lsn_ = lsn;
    append_framed_entry(pending_, lsn, record);
    ++pending_records_;
    ++stats_.appended;
    stats_.last_lsn = lsn;
    if (config_.fsync == FsyncPolicy::kAlways ||
        pending_records_ >= config_.group_commit_records) {
      flush_with_lock(lock);
    }
  }
  if (metrics_.appends != nullptr) metrics_.appends->inc();
  return lsn;
}

void WriteAheadLog::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  flush_with_lock(lock);
}

void WriteAheadLog::flush_with_lock(std::unique_lock<std::mutex>& lock) {
  // Single-flusher group commit: exactly one thread at a time owns the
  // unlocked IO window.  Producers keep filling `pending_` while the
  // flusher's batch is on its way to disk — an fsync stall costs the
  // ingest path nothing unless a second batch fills before the first
  // lands (then the next flusher waits here, which *is* the group
  // commit).  A caller whose records were moved into the in-flight
  // batch still waits for that batch: flush() returning means durable
  // per policy.
  while (flushing_) {
    const std::uint64_t wanted = stats_.last_lsn;
    flush_cv_.wait(lock);
    if (stats_.durable_lsn >= wanted && pending_.empty()) return;
  }
  if (pending_.empty()) return;
  flushing_ = true;
  // Rotate before the batch when the active segment is full: a batch
  // lands wholly in one segment, so the segment's base LSN names its
  // first record exactly.
  if (segment_written_ >= config_.segment_bytes) {
    open_segment_locked(first_pending_lsn_);
  }
  io_buf_.clear();
  std::swap(io_buf_, pending_);
  pending_records_ = 0;
  const std::uint64_t batch_last_lsn = stats_.last_lsn;
  std::FILE* file = file_;  // rotation only happens here, under flushing_

  lock.unlock();
  const std::size_t written =
      std::fwrite(io_buf_.data(), 1, io_buf_.size(), file);
  WADP_CHECK_MSG(written == io_buf_.size(), "short WAL write");
  std::fflush(file);
  const bool synced = config_.fsync != FsyncPolicy::kNone;
  if (synced) {
    // Timed off-lock: the histogram record is lock-free and the fsync
    // latency distribution is what the wal.fsync_p99 SLO rule watches.
    const auto fsync_start = std::chrono::steady_clock::now();
    ::fsync(fileno(file));
    if (metrics_.fsync_seconds != nullptr) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - fsync_start;
      metrics_.fsync_seconds->record(elapsed.count());
    }
  }
  lock.lock();

  segment_written_ += io_buf_.size();
  stats_.bytes_written += io_buf_.size();
  stats_.durable_lsn = std::max(stats_.durable_lsn, batch_last_lsn);
  ++stats_.batches;
  if (synced) ++stats_.fsyncs;
  if (metrics_.batches != nullptr) {
    metrics_.batches->inc();
    metrics_.written_bytes->inc(io_buf_.size());
    metrics_.size_bytes->set(static_cast<double>(size_bytes()));
    if (synced) metrics_.fsyncs->inc();
  }
  flushing_ = false;
  flush_cv_.notify_all();
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t WriteAheadLog::truncate_through(std::uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Segment i is fully covered when the *next* segment starts at or
  // below lsn+1 (its own records all have LSN < next base).  The
  // active segment is never deleted.
  const auto paths = list_segments(config_.dir);
  std::vector<std::uint64_t> bases;
  bases.reserve(paths.size());
  for (const auto& path : paths) {
    bases.push_back(read_segment_base(path).value_or(0));
  }
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
    if (paths[i] == file_path_) continue;
    if (bases[i + 1] == 0 || bases[i + 1] > lsn + 1) continue;
    std::error_code ec;
    if (fs::remove(paths[i], ec) && !ec) ++removed;
  }
  if (metrics_.truncated_segments != nullptr && removed > 0) {
    metrics_.truncated_segments->inc(removed);
    metrics_.segments->set(
        static_cast<double>(list_segments(config_.dir).size()));
    metrics_.size_bytes->set(static_cast<double>(size_bytes()));
  }
  return removed;
}

std::vector<std::string> WriteAheadLog::segments() const {
  return list_segments(config_.dir);
}

std::uint64_t WriteAheadLog::size_bytes() const {
  std::uint64_t total = 0;
  for (const auto& path : list_segments(config_.dir)) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec) total += size;
  }
  return total;
}

std::vector<std::string> WriteAheadLog::list_segments(
    const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".seg")) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());  // hex base LSN sorts by name
  return out;
}

ReplayStats WriteAheadLog::replay(const std::string& dir, const EntryFn& fn) {
  ReplayStats stats;
  auto& torn = torn_counter();
  const auto paths = list_segments(dir);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ++stats.segments;
    const std::string data = slurp(paths[i]);
    bool refused = false;
    if (!parse_header(data)) {
      // A header that never finished writing is a torn frame zero.
      torn.inc();
      ++stats.torn_frames;
      refused = true;
    } else {
      std::size_t offset = kSegmentHeaderBytes;
      bool stop = false;
      while (!stop) {
        std::string_view payload;
        switch (next_frame(data, offset, payload)) {
          case FrameStatus::kEnd:
            stop = true;
            break;
          case FrameStatus::kOk: {
            const auto entry = decode_entry(payload);
            if (!entry) {
              // Checksum-valid but undecodable: a version we do not
              // know.  Treat like corruption — refuse, do not guess.
              torn.inc();
              ++stats.torn_frames;
              refused = true;
              stop = true;
              break;
            }
            ++stats.entries;
            stats.bytes += 8 + payload.size();
            stats.max_lsn = std::max(stats.max_lsn, entry->lsn);
            fn(*entry);
            break;
          }
          case FrameStatus::kTorn:
          case FrameStatus::kCorrupt:
            torn.inc();
            ++stats.torn_frames;
            refused = true;
            stop = true;
            break;
        }
      }
    }
    if (!refused) continue;
    // A refused frame ends the pass — replay never skips over damage
    // within a segment — UNLESS the next segment's base LSN is exactly
    // the last valid LSN + 1.  Only a writer that restarted after this
    // very tear produces that (a fresh WriteAheadLog resumes the LSN
    // sequence from the last *valid* frame, so the torn frame's LSN is
    // reissued in the new segment).  Records fsync-acknowledged after
    // the restart live in those later segments and are durable; mid-
    // history damage cannot fake the match because its following
    // segment starts at torn LSN + 1, leaving a gap of one.
    if (i + 1 < paths.size()) {
      const auto next_base = read_segment_base(paths[i + 1]);
      if (next_base && *next_base == stats.max_lsn + 1) continue;
    }
    stats.stopped_early = true;
    break;
  }
  return stats;
}

}  // namespace wadp::durability
