#include "durability/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "durability/codec.hpp"
#include "util/strings.hpp"
#include "util/ulm.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kShardMagic = "WADPSNP\x01";
// v1: per-observation {time, value, file_size, ok}.
// v2: appends f64 disk + f64 probe per observation (the regression
//     battery's regressors); v1 shards load with both fields 0.
constexpr std::uint32_t kSnapshotVersion = 2;

std::string shard_file_name(std::uint64_t seq, std::size_t shard) {
  return util::format("snap-%08llu-%03zu.shard",
                      static_cast<unsigned long long>(seq), shard);
}

std::string manifest_name(std::uint64_t seq) {
  return util::format("snap-%08llu.manifest",
                      static_cast<unsigned long long>(seq));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// Writes `parts` to `path` and fsyncs before closing.  The snapshot
/// is what licenses WAL truncation, so its bytes must be on the
/// platter — not in the page cache — before the manifest commits.
bool write_file_synced(const std::string& path,
                       std::initializer_list<std::string_view> parts) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return false;
  bool ok = true;
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    ok = ok && std::fwrite(part.data(), 1, part.size(), out) == part.size();
  }
  ok = ok && std::fflush(out) == 0;
  ok = ok && ::fsync(fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  return ok;
}

/// fsyncs a directory so renames and creates within it survive power
/// loss.
bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Serializes one shard's series into the file body (the part the
/// manifest CRC covers, after the fixed header).
std::string encode_shard_body(const std::vector<history::SeriesExport>& series) {
  ByteWriter w;
  w.u64(series.size());
  for (const auto& exported : series) {
    w.str(exported.key.host);
    w.str(exported.key.remote_ip);
    w.u8(exported.key.op == gridftp::Operation::kWrite ? 1 : 0);
    w.u64(exported.snapshot.epoch());
    w.u64(exported.snapshot.generation());
    w.u64(exported.snapshot.evicted());
    const auto& observations = exported.snapshot.observations();
    w.u64(observations.size());
    for (const auto& obs : observations) {
      w.f64(obs.time);
      w.f64(obs.value);
      w.u64(obs.file_size);
      w.u8(obs.ok ? 1 : 0);
      w.f64(obs.disk);
      w.f64(obs.probe);
    }
    w.u64(exported.hashes.size());
    for (const std::uint64_t hash : exported.hashes) w.u64(hash);
  }
  return w.take();
}

struct DecodedSeries {
  history::SeriesKey key;
  std::vector<predict::Observation> observations;
  std::uint64_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint64_t evicted = 0;
  std::vector<std::uint64_t> hashes;
};

bool decode_shard_body(std::string_view body, std::uint32_t version,
                       std::vector<DecodedSeries>& out) {
  ByteReader reader(body);
  std::uint64_t series_count = 0;
  if (!reader.u64(series_count)) return false;
  out.reserve(out.size() + series_count);
  for (std::uint64_t s = 0; s < series_count; ++s) {
    DecodedSeries decoded;
    std::uint8_t op = 0;
    std::uint64_t obs_count = 0;
    if (!reader.str(decoded.key.host) || !reader.str(decoded.key.remote_ip) ||
        !reader.u8(op) || !reader.u64(decoded.epoch) ||
        !reader.u64(decoded.generation) || !reader.u64(decoded.evicted) ||
        !reader.u64(obs_count)) {
      return false;
    }
    decoded.key.op =
        op == 1 ? gridftp::Operation::kWrite : gridftp::Operation::kRead;
    decoded.observations.reserve(obs_count);
    for (std::uint64_t i = 0; i < obs_count; ++i) {
      predict::Observation obs;
      std::uint8_t ok = 1;
      if (!reader.f64(obs.time) || !reader.f64(obs.value) ||
          !reader.u64(obs.file_size) || !reader.u8(ok)) {
        return false;
      }
      // v2 appended the regression regressors; v1 leaves them at 0.
      if (version >= 2 && (!reader.f64(obs.disk) || !reader.f64(obs.probe))) {
        return false;
      }
      obs.ok = ok != 0;
      decoded.observations.push_back(obs);
    }
    std::uint64_t hash_count = 0;
    if (!reader.u64(hash_count)) return false;
    decoded.hashes.reserve(hash_count);
    for (std::uint64_t i = 0; i < hash_count; ++i) {
      std::uint64_t hash = 0;
      if (!reader.u64(hash)) return false;
      decoded.hashes.push_back(hash);
    }
    out.push_back(std::move(decoded));
  }
  return true;
}

struct ManifestShard {
  std::size_t index = 0;
  std::string file;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct Manifest {
  SnapshotMeta meta;
  std::vector<ManifestShard> shards;
};

std::optional<Manifest> parse_manifest(const std::string& text) {
  Manifest manifest;
  std::istringstream in(text);
  std::string line;
  bool header = false, footer = false;
  while (std::getline(in, line)) {
    const auto record = util::UlmRecord::parse(line);
    if (!record) return std::nullopt;
    const auto kind = record->get("KIND");
    if (!kind) continue;
    if (*kind == "snapshot") {
      const auto version = record->get_int("VERSION");
      // Any version up to ours loads (older shard bodies decode with
      // version-gated fields defaulted); newer ones do not.
      if (!version || *version < 1 || *version > kSnapshotVersion) {
        return std::nullopt;
      }
      manifest.meta.seq = static_cast<std::uint64_t>(
          record->get_int("SEQ").value_or(0));
      manifest.meta.sealed_lsn = static_cast<std::uint64_t>(
          record->get_int("SEALED_LSN").value_or(0));
      manifest.meta.series = static_cast<std::size_t>(
          record->get_int("SERIES").value_or(0));
      manifest.meta.observations = static_cast<std::size_t>(
          record->get_int("OBSERVATIONS").value_or(0));
      header = true;
    } else if (*kind == "shard") {
      ManifestShard shard;
      shard.index =
          static_cast<std::size_t>(record->get_int("INDEX").value_or(0));
      shard.file = std::string(record->get("FILE").value_or(""));
      shard.bytes = static_cast<std::uint64_t>(
          record->get_int("BYTES").value_or(0));
      shard.crc = static_cast<std::uint32_t>(
          record->get_int("CRC").value_or(0));
      if (shard.file.empty()) return std::nullopt;
      manifest.shards.push_back(std::move(shard));
    } else if (*kind == "end") {
      footer = true;
    }
  }
  // A manifest without its end line was cut mid-write: not committed.
  if (!header || !footer) return std::nullopt;
  manifest.meta.shard_files = manifest.shards.size();
  for (const auto& shard : manifest.shards) {
    manifest.meta.bytes += shard.bytes;
  }
  return manifest;
}

}  // namespace

Expected<SnapshotMeta> write_snapshot(const history::HistoryStore& store,
                                      const std::string& dir,
                                      std::uint64_t seq,
                                      std::uint64_t sealed_lsn) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Expected<SnapshotMeta>::failure("cannot create snapshot dir: " +
                                           ec.message());
  }
  SnapshotMeta meta;
  meta.seq = seq;
  meta.sealed_lsn = sealed_lsn;
  std::vector<ManifestShard> shards;
  for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
    // Capture under the shard lock (cheap), serialize and write with
    // the lock dropped; the leases keep the vectors frozen meanwhile.
    const auto exported = store.export_shard(shard);
    if (exported.empty()) continue;
    for (const auto& series : exported) {
      ++meta.series;
      meta.observations += series.snapshot.size();
    }
    ByteWriter header;
    header.raw(kShardMagic);
    header.u32(kSnapshotVersion);
    header.u32(static_cast<std::uint32_t>(shard));
    const std::string body = encode_shard_body(exported);

    const std::string name = shard_file_name(seq, shard);
    const std::string path = (fs::path(dir) / name).string();
    if (!write_file_synced(path, {header.bytes(), body})) {
      return Expected<SnapshotMeta>::failure("cannot write " + path);
    }
    ManifestShard entry;
    entry.index = shard;
    entry.file = name;
    entry.bytes = header.size() + body.size();
    entry.crc = crc32c(body);
    meta.bytes += entry.bytes;
    shards.push_back(std::move(entry));
  }

  // Manifest last: temp file + rename is the commit point.
  std::string text;
  {
    util::UlmRecord record;
    record.set("KIND", "snapshot");
    record.set_int("VERSION", kSnapshotVersion);
    record.set_int("SEQ", static_cast<std::int64_t>(seq));
    record.set_int("SEALED_LSN", static_cast<std::int64_t>(sealed_lsn));
    record.set_int("SERIES", static_cast<std::int64_t>(meta.series));
    record.set_int("OBSERVATIONS",
                   static_cast<std::int64_t>(meta.observations));
    text += record.to_line() + "\n";
  }
  for (const auto& shard : shards) {
    util::UlmRecord record;
    record.set("KIND", "shard");
    record.set_int("INDEX", static_cast<std::int64_t>(shard.index));
    record.set("FILE", shard.file);
    record.set_int("BYTES", static_cast<std::int64_t>(shard.bytes));
    record.set_int("CRC", static_cast<std::int64_t>(shard.crc));
    text += record.to_line() + "\n";
  }
  {
    util::UlmRecord record;
    record.set("KIND", "end");
    text += record.to_line() + "\n";
  }
  const std::string final_path =
      (fs::path(dir) / manifest_name(seq)).string();
  const std::string temp_path = final_path + ".tmp";
  if (!write_file_synced(temp_path, {text})) {
    return Expected<SnapshotMeta>::failure("cannot write " + temp_path);
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    return Expected<SnapshotMeta>::failure("cannot commit manifest: " +
                                           ec.message());
  }
  // The commit point is the rename reaching the directory itself.  A
  // caller may truncate the WAL the moment we return, so the shard
  // files, the manifest, and the directory entries naming them must
  // all be durable first — otherwise a power cut could keep the
  // truncation but lose the snapshot it was licensed by.
  if (!fsync_dir(dir)) {
    return Expected<SnapshotMeta>::failure("cannot fsync snapshot dir: " +
                                           dir);
  }
  meta.shard_files = shards.size();
  return meta;
}

std::optional<std::uint64_t> latest_snapshot(const std::string& dir) {
  std::optional<std::uint64_t> best;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snap-") || !name.ends_with(".manifest")) continue;
    const auto manifest = parse_manifest(slurp(entry.path().string()));
    if (!manifest) continue;
    if (!best || manifest->meta.seq > *best) best = manifest->meta.seq;
  }
  return best;
}

Expected<SnapshotMeta> read_manifest(const std::string& dir,
                                     std::uint64_t seq) {
  const std::string path = (fs::path(dir) / manifest_name(seq)).string();
  const auto manifest = parse_manifest(slurp(path));
  if (!manifest) {
    return Expected<SnapshotMeta>::failure("no valid manifest: " + path);
  }
  return manifest->meta;
}

Expected<SnapshotMeta> load_snapshot(const std::string& dir,
                                     std::uint64_t seq,
                                     history::HistoryStore& store) {
  const std::string manifest_path =
      (fs::path(dir) / manifest_name(seq)).string();
  const auto manifest = parse_manifest(slurp(manifest_path));
  if (!manifest) {
    return Expected<SnapshotMeta>::failure("no valid manifest: " +
                                           manifest_path);
  }
  for (const auto& shard : manifest->shards) {
    const std::string path = (fs::path(dir) / shard.file).string();
    const std::string data = slurp(path);
    if (data.size() != shard.bytes) {
      return Expected<SnapshotMeta>::failure(
          util::format("%s: %zu bytes, manifest says %llu", path.c_str(),
                       data.size(),
                       static_cast<unsigned long long>(shard.bytes)));
    }
    constexpr std::size_t kHeaderBytes = 8 + 4 + 4;
    if (data.size() < kHeaderBytes ||
        std::string_view(data).substr(0, kShardMagic.size()) != kShardMagic) {
      return Expected<SnapshotMeta>::failure(path + ": bad shard header");
    }
    // Header: magic, then u32 format version, then u32 shard index.
    // The per-file version drives the body decode so a store can load
    // snapshots written before the current format.
    std::uint32_t version = 0;
    {
      ByteReader header(
          std::string_view(data).substr(kShardMagic.size(), 4));
      header.u32(version);
    }
    if (version < 1 || version > kSnapshotVersion) {
      return Expected<SnapshotMeta>::failure(path + ": bad shard version");
    }
    const std::string_view body = std::string_view(data).substr(kHeaderBytes);
    if (crc32c(body) != shard.crc) {
      return Expected<SnapshotMeta>::failure(path + ": checksum mismatch");
    }
    std::vector<DecodedSeries> decoded;
    if (!decode_shard_body(body, version, decoded)) {
      return Expected<SnapshotMeta>::failure(path + ": truncated body");
    }
    for (auto& series : decoded) {
      store.restore_series(series.key, std::move(series.observations),
                           series.epoch, series.generation, series.evicted,
                           std::move(series.hashes));
    }
  }
  return manifest->meta;
}

std::size_t remove_snapshots_before(const std::string& dir,
                                    std::uint64_t keep_seq) {
  std::size_t removed = 0;
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snap-")) continue;
    // snap-<seq>… — parse the whole digit run.  The %08llu in the file
    // names widens past 8 digits, so a fixed-width parse would misread
    // sequences >= 1e8 and prune the wrong snapshots.
    const std::size_t digits_at = 5;  // past "snap-"
    std::size_t end = digits_at;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end]))) {
      ++end;
    }
    if (end == digits_at) continue;
    const unsigned long long seq =
        std::strtoull(name.substr(digits_at, end - digits_at).c_str(),
                      nullptr, 10);
    if (seq < keep_seq) doomed.push_back(entry.path());
  }
  for (const auto& path : doomed) {
    std::error_code remove_ec;
    if (fs::remove(path, remove_ec) && !remove_ec) ++removed;
  }
  return removed;
}

}  // namespace wadp::durability
