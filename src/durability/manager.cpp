#include "durability/manager.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace wadp::durability {
namespace {

namespace fs = std::filesystem;

double seconds_since(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Age of a file in seconds by mtime; 0 when unreadable (a status
/// display tolerates that better than an error path).
double file_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return 0.0;
  const auto now = fs::file_time_type::clock::now();
  const double age = std::chrono::duration<double>(now - mtime).count();
  return age > 0.0 ? age : 0.0;
}

}  // namespace

std::string wal_dir(const std::string& root) {
  return (fs::path(root) / "wal").string();
}

std::string snapshot_dir(const std::string& root) {
  return (fs::path(root) / "snapshots").string();
}

DurabilityManager::DurabilityManager(
    std::shared_ptr<history::HistoryStore> store, DurabilityConfig config)
    : config_(std::move(config)),
      store_(std::move(store)),
      wal_([this] {
        WalConfig wal;
        wal.dir = wal_dir(config_.dir);
        wal.fsync = config_.fsync;
        wal.group_commit_records = config_.group_commit_records;
        wal.segment_bytes = config_.segment_bytes;
        wal.instrumented = config_.instrumented;
        return wal;
      }()) {
  WADP_CHECK_MSG(store_ != nullptr, "DurabilityManager needs a store");
  // Mirrors the check in recover(): snapshots capture the dedupe hash
  // sets, and WAL-tail replay leans on them to absorb records the
  // racing snapshot already included.  A dedupe-off store would write
  // snapshots with empty hash sets and double-ingest on recovery.
  WADP_CHECK_MSG(store_->config().dedupe_records,
                 "DurabilityManager needs a store with dedupe_records on");
  if (config_.keep_snapshots == 0) config_.keep_snapshots = 1;
  if (config_.instrumented) {
    auto& registry = obs::Registry::global();
    metrics_.snapshots = &registry.counter(
        "wadp_wal_snapshots_total", {},
        "durability snapshots committed");
    metrics_.snapshot_write_seconds = &registry.histogram(
        "wadp_wal_snapshot_write_seconds", {},
        "wall time to capture+write+commit one snapshot");
    metrics_.snapshot_age_seconds = &registry.gauge(
        "wadp_wal_snapshot_age_seconds", {},
        "seconds since the newest snapshot's manifest committed");
  }
}

void DurabilityManager::attach() {
  store_->add_record_observer(
      [this](const gridftp::TransferRecord& record) { wal_.append(record); });
}

Expected<SnapshotMeta> DurabilityManager::snapshot_now() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  const auto start = std::chrono::steady_clock::now();
  auto span = obs::Tracer::global().start("durability.snapshot");

  // Seal first: every LSN assigned before this instant is applied (the
  // observer runs after the store mutates), so the capture below is
  // guaranteed to contain it.
  const std::uint64_t sealed_lsn = wal_.stats().last_lsn;
  // Make the sealed prefix durable before we let truncation drop it.
  wal_.flush();

  const std::string snap_dir = snapshot_dir(config_.dir);
  const std::uint64_t seq = latest_snapshot(snap_dir).value_or(0) + 1;
  auto meta = write_snapshot(*store_, snap_dir, seq, sealed_lsn);
  if (!meta.ok()) return meta;

  wal_.truncate_through(sealed_lsn);
  if (seq + 1 > config_.keep_snapshots) {
    remove_snapshots_before(snap_dir, seq + 1 - config_.keep_snapshots);
  }

  if (metrics_.snapshots) {
    metrics_.snapshots->inc();
    metrics_.snapshot_write_seconds->record(seconds_since(start));
    metrics_.snapshot_age_seconds->set(0.0);
  }
  return meta;
}

DurabilityStatus DurabilityManager::status() const {
  DurabilityStatus status;
  status.wal = wal_.stats();
  status.wal_bytes = wal_.size_bytes();
  const std::string snap_dir = snapshot_dir(config_.dir);
  status.snapshot_seq = latest_snapshot(snap_dir);
  if (status.snapshot_seq) {
    auto meta = read_manifest(snap_dir, *status.snapshot_seq);
    if (meta.ok()) status.snapshot = meta.value();
    const std::string manifest =
        (fs::path(snap_dir) /
         util::format("snap-%08llu.manifest",
                      static_cast<unsigned long long>(*status.snapshot_seq)))
            .string();
    status.snapshot_age_seconds = file_age_seconds(manifest);
    if (metrics_.snapshot_age_seconds) {
      metrics_.snapshot_age_seconds->set(status.snapshot_age_seconds);
    }
  }
  return status;
}

Expected<RecoveryStats> DurabilityManager::recover(
    const std::string& root, history::HistoryStore& store) {
  const auto start = std::chrono::steady_clock::now();
  auto span = obs::Tracer::global().start("durability.recover");

  if (!store.config().dedupe_records) {
    return Expected<RecoveryStats>::failure(
        "recovery requires a store with dedupe_records on: WAL-tail "
        "replay may overlap the snapshot and must be idempotent");
  }
  if (store.total_observations() != 0) {
    return Expected<RecoveryStats>::failure(
        "recovery requires an empty store");
  }

  RecoveryStats stats;

  // 1. Newest valid snapshot, if any.
  const std::string snap_dir = snapshot_dir(root);
  if (const auto seq = latest_snapshot(snap_dir)) {
    auto meta = load_snapshot(snap_dir, *seq, store);
    if (!meta.ok()) {
      return Expected<RecoveryStats>::failure("snapshot " +
                                              std::to_string(*seq) + ": " +
                                              meta.error());
    }
    stats.snapshot_loaded = true;
    stats.snapshot_seq = meta.value().seq;
    stats.snapshot_series = meta.value().series;
    stats.snapshot_observations = meta.value().observations;
    stats.sealed_lsn = meta.value().sealed_lsn;
  }

  // 2. WAL tail on top.  LSNs <= sealed are fully inside the snapshot
  // by the apply-before-log argument; LSNs above it may or may not be
  // — the dedupe index decides per record.
  const std::uint64_t dedup_before = store.dedup_skipped();
  std::size_t offered = 0;
  const auto replay = WriteAheadLog::replay(
      wal_dir(root), [&](const WalEntry& entry) {
        ++stats.frames_replayed;
        if (entry.lsn <= stats.sealed_lsn) return;
        ++offered;
        store.append(entry.record);
      });
  stats.torn_frames = replay.torn_frames;
  stats.records_deduped =
      static_cast<std::size_t>(store.dedup_skipped() - dedup_before);
  stats.records_applied = offered - stats.records_deduped;

  stats.seconds = seconds_since(start);

  auto& registry = obs::Registry::global();
  registry
      .counter("wadp_recovery_runs_total", {},
               "recovery passes completed")
      .inc();
  registry
      .counter("wadp_recovery_records_replayed_total", {},
               "WAL entries visited during recovery")
      .inc(stats.frames_replayed);
  registry
      .counter("wadp_recovery_records_deduped_total", {},
               "replayed records absorbed by the dedupe index")
      .inc(stats.records_deduped);
  registry
      .histogram("wadp_recovery_seconds", {},
                 "wall time of one recovery pass")
      .record(stats.seconds);

  return stats;
}

}  // namespace wadp::durability
