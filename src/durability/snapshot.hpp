// Point-in-time snapshots of the HistoryStore.
//
// A snapshot is one binary file per store shard plus a manifest that
// commits it.  Capture takes each shard's lock only long enough to
// lease the series' immutable observation vectors and copy their
// dedupe hashes (HistoryStore::export_shard); serialization and file
// I/O happen entirely outside the locks, so ingest never stalls
// behind a snapshot being written.
//
// The manifest is the commit point: it is written last (temp file,
// then rename) and names every shard file with its byte count and
// CRC32C.  Recovery only trusts a snapshot whose manifest exists and
// whose shard files all verify — a crash mid-snapshot leaves the
// previous snapshot as the latest valid one.
//
// `sealed_lsn` is the WAL's last assigned LSN *at capture start*.
// Because the ingest hook applies to the store before appending to
// the WAL (apply-before-log), every record with LSN <= sealed_lsn was
// already applied when its series was captured — so WAL segments
// wholly at or below the sealed LSN are safe to truncate, and replay
// only needs the tail.  Records captured with LSN *above* the seal
// are replayed again and absorbed by the dedupe index.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "history/store.hpp"
#include "util/error.hpp"

namespace wadp::durability {

struct SnapshotMeta {
  std::uint64_t seq = 0;         ///< snapshot sequence number
  std::uint64_t sealed_lsn = 0;  ///< WAL watermark the snapshot seals
  std::size_t shard_files = 0;
  std::size_t series = 0;
  std::size_t observations = 0;
  std::uint64_t bytes = 0;       ///< shard-file bytes on disk
};

/// Writes snapshot `seq` of `store` into `dir`.  Returns the metadata
/// on success; failure (disk full, unwritable dir) leaves no manifest
/// behind, so the snapshot simply does not exist.
Expected<SnapshotMeta> write_snapshot(const history::HistoryStore& store,
                                      const std::string& dir,
                                      std::uint64_t seq,
                                      std::uint64_t sealed_lsn);

/// Sequence number of the newest snapshot in `dir` whose manifest
/// parses; nullopt when none exists.
std::optional<std::uint64_t> latest_snapshot(const std::string& dir);

/// Loads snapshot `seq` into `store` via restore_series.  Every shard
/// file must exist and match its manifest CRC; a damaged file fails
/// the whole load (the caller falls back to an older snapshot or a
/// full WAL replay).  Returns the manifest metadata.
Expected<SnapshotMeta> load_snapshot(const std::string& dir,
                                     std::uint64_t seq,
                                     history::HistoryStore& store);

/// Reads just the manifest of snapshot `seq` (for status displays).
Expected<SnapshotMeta> read_manifest(const std::string& dir,
                                     std::uint64_t seq);

/// Deletes snapshots older than `keep_seq` (manifest + shard files).
/// Returns files removed.
std::size_t remove_snapshots_before(const std::string& dir,
                                    std::uint64_t keep_seq);

}  // namespace wadp::durability
