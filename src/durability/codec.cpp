#include "durability/codec.hpp"

#include <array>
#include <cstring>

namespace wadp::durability {
namespace {

/// CRC32C lookup tables for slicing-by-8 (Castagnoli, reflected),
/// built once.  Table 0 is the classic byte-at-a-time table; tables
/// 1..7 fold bytes processed 8 at a time, which runs ~6-8x faster on
/// the ~100-byte payloads the WAL frames — the difference between the
/// checksum dominating the ingest hook and disappearing into it.
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data) {
  const auto& t = crc_tables();
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo = 0, hi = 0;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    // Little-endian byte order within each 32-bit half; the explicit
    // byte extraction keeps the fold endian-correct everywhere.
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ static_cast<std::uint32_t>(*p++)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(std::string_view data) {
  return crc32c(std::as_bytes(std::span(data.data(), data.size())));
}

void ByteWriter::u8(std::uint8_t v) { buf_->push_back(static_cast<char>(v)); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view v) {
  const auto n = static_cast<std::uint16_t>(
      v.size() > 0xFFFF ? 0xFFFF : v.size());
  u16(n);
  buf_->append(v.data(), n);
}

void ByteWriter::raw(std::string_view v) { buf_->append(v); }

bool ByteReader::u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::u16(std::uint16_t& v) {
  std::uint8_t lo = 0, hi = 0;
  if (remaining() < 2 || !u8(lo) || !u8(hi)) return false;
  v = static_cast<std::uint16_t>(lo | (hi << 8));
  return true;
}

bool ByteReader::u32(std::uint32_t& v) {
  std::uint16_t lo = 0, hi = 0;
  if (remaining() < 4 || !u16(lo) || !u16(hi)) return false;
  v = static_cast<std::uint32_t>(lo) |
      (static_cast<std::uint32_t>(hi) << 16);
  return true;
}

bool ByteReader::u64(std::uint64_t& v) {
  std::uint32_t lo = 0, hi = 0;
  if (remaining() < 8 || !u32(lo) || !u32(hi)) return false;
  v = static_cast<std::uint64_t>(lo) |
      (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

bool ByteReader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::str(std::string& v) {
  std::uint16_t n = 0;
  if (!u16(n) || remaining() < n) return false;
  v.assign(data_.substr(pos_, n));
  pos_ += n;
  return true;
}

namespace {

void encode_fields(ByteWriter& w, std::uint64_t lsn,
                   const gridftp::TransferRecord& r) {
  w.u8(kRecordVersion);
  w.u64(lsn);
  w.str(r.host);
  w.str(r.source_ip);
  w.str(r.file_name);
  w.str(r.volume);
  w.u64(r.file_size);
  w.f64(r.start_time);
  w.f64(r.end_time);
  w.u8(r.op == gridftp::Operation::kWrite ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(r.streams));
  w.u64(r.tcp_buffer);
  w.u8(r.ok ? 1 : 0);
  w.u64(r.trace_id);
  // v2 fields.
  w.f64(r.disk_throughput);
  w.f64(r.net_probe);
}

}  // namespace

std::string encode_entry(const WalEntry& entry) {
  ByteWriter w;
  encode_fields(w, entry.lsn, entry.record);
  return w.take();
}

std::optional<WalEntry> decode_entry(std::string_view payload) {
  ByteReader reader(payload);
  std::uint8_t version = 0;
  if (!reader.u8(version)) return std::nullopt;
  // Versions newer than ours may have *reordered* fields; only trust
  // versions we know.  Every version we do know decodes: the shared
  // prefix reads identically and version-gated fields default.
  if (version == 0 || version > kRecordVersion) return std::nullopt;
  WalEntry entry;
  auto& r = entry.record;
  std::uint8_t op = 0, ok = 1;
  std::uint32_t streams = 1;
  if (!reader.u64(entry.lsn) || !reader.str(r.host) ||
      !reader.str(r.source_ip) || !reader.str(r.file_name) ||
      !reader.str(r.volume) || !reader.u64(r.file_size) ||
      !reader.f64(r.start_time) || !reader.f64(r.end_time) ||
      !reader.u8(op) || !reader.u32(streams) || !reader.u64(r.tcp_buffer) ||
      !reader.u8(ok) || !reader.u64(r.trace_id)) {
    return std::nullopt;
  }
  r.op = op == 1 ? gridftp::Operation::kWrite : gridftp::Operation::kRead;
  r.streams = static_cast<int>(streams);
  r.ok = ok != 0;
  // v2 appended the regression fields; v1 payloads leave them at 0.
  if (version >= 2 &&
      (!reader.f64(r.disk_throughput) || !reader.f64(r.net_probe))) {
    return std::nullopt;
  }
  // Trailing bytes are a future field from a same-version writer that
  // appended to the encoding; ignore them.
  return entry;
}

std::string frame(std::string_view payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32c(payload));
  w.raw(payload);
  return w.take();
}

void append_framed_entry(std::string& buf, std::uint64_t lsn,
                         const gridftp::TransferRecord& record) {
  const std::size_t header_at = buf.size();
  buf.append(8, '\0');  // [u32 length][u32 crc], patched below
  const std::size_t payload_at = buf.size();
  ByteWriter w(buf);
  encode_fields(w, lsn, record);
  const std::string_view payload(buf.data() + payload_at,
                                 buf.size() - payload_at);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    buf[header_at + static_cast<std::size_t>(i)] =
        static_cast<char>(length >> (8 * i));
    buf[header_at + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(crc >> (8 * i));
  }
}

FrameStatus next_frame(std::string_view data, std::size_t& offset,
                       std::string_view& payload) {
  const std::size_t remaining = data.size() - offset;
  if (remaining == 0) return FrameStatus::kEnd;
  if (remaining < 8) return FrameStatus::kTorn;
  ByteReader header(data.substr(offset, 8));
  std::uint32_t length = 0, crc = 0;
  header.u32(length);
  header.u32(crc);
  if (length > kMaxFrameBytes) return FrameStatus::kCorrupt;
  if (remaining - 8 < length) return FrameStatus::kTorn;
  const std::string_view body = data.substr(offset + 8, length);
  if (crc32c(body) != crc) return FrameStatus::kCorrupt;
  payload = body;
  offset += 8 + length;
  return FrameStatus::kOk;
}

}  // namespace wadp::durability
