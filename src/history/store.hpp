// HistoryStore: the single source of truth for transfer history.
//
// The paper's pipeline is "log every transfer, predict from the
// history, publish via MDS" — and before this module existed each
// layer kept its own private copy of that history (the server's
// TransferLog, the prediction service's per-series vectors, the online
// adapters' fallback buffers, ad-hoc record→observation conversions in
// providers).  The HistoryStore consolidates all of it:
//
//   * ownership — every derived observation series lives here, keyed
//     by SeriesKey (host, remote endpoint, direction).  Producers
//     (GridFTP servers, log replays, NWS probe mirrors) append through
//     the store; consumers (prediction service, MDS providers, replica
//     broker, benches, the CLI) read snapshots.
//   * sharding — series are hash-distributed over N independently
//     locked shards, so concurrent ingest from many servers scales
//     with the shard count instead of serializing on one mutex.
//   * snapshot isolation — readers get an immutable, time-ordered view
//     of one series as a shared_ptr to the series' current epoch.
//     Appends mutate in place only while no snapshot is outstanding;
//     otherwise they copy-on-write a fresh epoch, so a held snapshot
//     never changes underneath its reader and ingest never blocks on
//     readers.
//   * ordering — out-of-order appends (merged logs interleave) are
//     inserted at the right position and bump the series *generation*,
//     the signal streaming-predictor caches use to know their prefix
//     replay is invalid (see core/prediction_service).
//
// Concurrency contract: every public member is safe to call from any
// thread.  A SeriesSnapshot is immutable and freely shareable; holding
// one only costs the store a copy on the next append to that series.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "gridftp/log.hpp"
#include "gridftp/record.hpp"
#include "obs/metrics.hpp"
#include "predict/observation.hpp"
#include "util/types.hpp"

namespace wadp::history {

/// Identifies one measurement series: transfers served by `host` to or
/// from `remote_ip` in direction `op`.  (Moved here from core/ — the
/// key now names a store shard, not a service-private map slot.)
struct SeriesKey {
  std::string host;
  std::string remote_ip;
  gridftp::Operation op = gridftp::Operation::kRead;

  std::string to_string() const;
  auto operator<=>(const SeriesKey&) const = default;
};

/// Stable hash used for shard routing (FNV-1a over the key fields).
std::size_t hash_of(const SeriesKey& key);

/// Immutable view of one series at one epoch.  Copying is a shared_ptr
/// copy; the observations vector is frozen for the snapshot's lifetime.
///
/// Each live snapshot holds a *lease* on its epoch: an explicit atomic
/// reader count the store consults before mutating in place.  The
/// count is incremented under the shard lock when the snapshot is
/// taken (and on copy, when the count is already provably non-zero)
/// and released with release ordering on destruction, which pairs with
/// the store's acquire load — so a writer that observes zero leases is
/// ordered after every read the departed snapshots performed.  (A bare
/// shared_ptr::use_count() cannot carry that ordering: it is a relaxed
/// load, and acting on it races with the last reader's final reads.)
class SeriesSnapshot {
 public:
  SeriesSnapshot() = default;
  SeriesSnapshot(const SeriesSnapshot& other);
  SeriesSnapshot& operator=(const SeriesSnapshot& other);
  /// Moves transfer the lease: the source is left !valid().
  SeriesSnapshot(SeriesSnapshot&& other) noexcept = default;
  SeriesSnapshot& operator=(SeriesSnapshot&& other) noexcept;
  ~SeriesSnapshot();

  /// False when the key was unknown at snapshot time.
  bool valid() const { return data_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// Time-ordered observations (empty vector when !valid()).
  const std::vector<predict::Observation>& observations() const;
  std::span<const predict::Observation> span() const { return observations(); }
  std::size_t size() const { return observations().size(); }
  bool empty() const { return observations().empty(); }
  const predict::Observation& back() const { return observations().back(); }

  /// Mutation count of the series when the snapshot was taken
  /// (monotone per series; every append/insert/eviction bumps it).
  std::uint64_t epoch() const { return epoch_; }
  /// Prefix-invalidation count: bumped only by out-of-order inserts and
  /// retention evictions.  A streaming-state cache fed `fed`
  /// observations of generation G may extend with observations [fed,
  /// size) iff the snapshot's generation is still G; otherwise the
  /// prefix it absorbed changed and it must replay.
  std::uint64_t generation() const { return generation_; }
  /// Observations this series has lost to the retention cap so far.
  std::uint64_t evicted() const { return evicted_; }

 private:
  friend class HistoryStore;
  void drop_lease();

  std::shared_ptr<const std::vector<predict::Observation>> data_;
  /// Reader count of the epoch `data_` belongs to; non-null iff this
  /// snapshot holds one lease on it.
  std::shared_ptr<std::atomic<std::int64_t>> lease_;
  std::uint64_t epoch_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t evicted_ = 0;
};

struct StoreConfig {
  /// Shard count, rounded up to a power of two and clamped to [1, 64].
  std::size_t shard_count = 16;
  /// Per-series retention cap: oldest observations are evicted once a
  /// series exceeds this many.  0 = unbounded (the default; campaigns
  /// are finite).  Evictions count toward wadp_history_evicted_total
  /// and bump the series generation.
  std::size_t max_observations_per_series = 0;
  /// Register obs/ metrics.  Ephemeral stores (a provider rebuilding a
  /// view from a raw log) switch this off so they don't pollute the
  /// global ingest counters.
  bool instrumented = true;
  /// Track a per-series (timestamp, trace_id) hash index on the
  /// record-level append path and silently skip records already seen.
  /// This is the durability plane's idempotence contract: WAL-tail
  /// replay over a snapshot, and TransferLog::attach backfill after a
  /// recovery, may both present records the store already holds —
  /// with the index on, neither can double-ingest (skips counted in
  /// wadp_history_dedup_skipped_total).  The index is persisted in
  /// snapshots and reseeded by restore_series.  Off by default: a
  /// store without durability attached should not pay for it.
  bool dedupe_records = false;
};

/// Per-shard occupancy, for `wadp history` and capacity planning.
struct ShardStats {
  std::size_t index = 0;
  std::size_t series_count = 0;
  std::size_t observation_count = 0;
  std::uint64_t appends = 0;
};

/// Per-series accounting, for `wadp history`.
struct SeriesInfo {
  SeriesKey key;
  std::size_t shard = 0;
  std::size_t observations = 0;
  std::uint64_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint64_t evicted = 0;
};

/// One series as captured for a durability snapshot: an immutable
/// observation snapshot (leased like any reader's) plus the series'
/// dedupe hashes, sorted for deterministic files.
struct SeriesExport {
  SeriesKey key;
  SeriesSnapshot snapshot;
  std::vector<std::uint64_t> hashes;
};

class HistoryStore {
 public:
  explicit HistoryStore(StoreConfig config = {});

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  /// Appends one observation to `key`'s series, inserting by time when
  /// it arrives out of order.  Returns the series' new epoch.
  std::uint64_t append(const SeriesKey& key, const predict::Observation& obs);

  /// Appends one transfer record (key and observation derived by the
  /// adapter — the single record→observation conversion path).  When a
  /// trace context is active the ingest is recorded as a
  /// `history.ingest` span, closing the causal chain
  /// query→transfer→ingest; registered record observers (the quality
  /// tracker) are notified after the append.
  std::uint64_t append(const gridftp::TransferRecord& record);

  /// Called after every record-level append (not the raw observation
  /// overload — observers want the full record, trace id included).
  /// Observers must be fast and thread-safe; they run on the ingesting
  /// thread.  There is no unregister: observers live as long as the
  /// store (wire-up happens once at assembly time).
  using RecordObserver = std::function<void(const gridftp::TransferRecord&)>;
  void add_record_observer(RecordObserver observer);

  /// Appends every record of a log.  Returns records appended.
  std::size_t ingest_log(const gridftp::TransferLog& log);

  /// Makes `log` append through this store: existing records are
  /// backfilled, then every future TransferLog::append is mirrored
  /// here.  The log stays what it always was — the bounded ULM
  /// view/serialization layer — while the store owns the history.
  /// Returns the number of backfilled records.  The store must outlive
  /// the log (or the log's sink must be cleared first).
  std::size_t attach(gridftp::TransferLog& log);

  /// Immutable view of `key`'s series (valid()==false when unknown).
  SeriesSnapshot snapshot(const SeriesKey& key) const;

  /// The dedupe-index key of one record: a 64-bit mix of the record's
  /// completion timestamp (exact double bits) and trace id.  The
  /// series is implicit — the index is per series, so the full dedupe
  /// identity is (SeriesKey, timestamp, trace_id).
  static std::uint64_t record_hash(const gridftp::TransferRecord& record);

  /// Records skipped by the dedupe index since construction.
  std::uint64_t dedup_skipped() const {
    return dedup_skipped_.load(std::memory_order_relaxed);
  }

  /// Captures every series of one shard for a snapshot: observation
  /// snapshots (leased — ingest copy-on-writes around them, never
  /// waits) plus the dedupe hashes.  The shard lock is held only for
  /// the capture itself (shared_ptr grabs and hash copies), never for
  /// serialization or I/O.  Series that exist only as watermark
  /// subscriptions (no data yet) are skipped.
  std::vector<SeriesExport> export_shard(std::size_t shard_index) const;

  /// Recovery-only: installs one series wholesale — observations,
  /// epoch/generation/evicted counters, dedupe hashes — and publishes
  /// the epoch through the series' watermark cell, so caches keyed on
  /// pre-crash epochs validate again.  The series must not already
  /// hold data (recovery runs before ingest is wired up); the method
  /// is thread-safe but makes no atomicity promise across series.
  void restore_series(const SeriesKey& key,
                      std::vector<predict::Observation> observations,
                      std::uint64_t epoch, std::uint64_t generation,
                      std::uint64_t evicted,
                      std::vector<std::uint64_t> hashes);

  /// Current epoch of `key`'s series; 0 when unknown.
  std::uint64_t epoch(const SeriesKey& key) const;

  /// Stable, lock-free invalidation watermark for `key`'s series: the
  /// returned cell always holds the series' current epoch (0 before the
  /// first observation) and is updated with release ordering on every
  /// mutation, so a cached answer stamped with the epoch it was computed
  /// at is validated by a single acquire load — no shard lock on the
  /// read path.  This is the serving plane's entire invalidation
  /// protocol (src/serving/cache.hpp).  Asking for an unknown key
  /// creates the (still-empty) series so the subscription survives the
  /// first append; the cell stays valid for the store's lifetime.
  std::shared_ptr<const std::atomic<std::uint64_t>> watermark(
      const SeriesKey& key);

  /// Every known key, sorted (deterministic iteration for tools/tests).
  std::vector<SeriesKey> keys() const;
  /// Keys whose host matches (the slice an MDS provider publishes).
  std::vector<SeriesKey> keys_for_host(const std::string& host) const;

  std::size_t series_count() const;
  std::size_t total_observations() const;

  std::vector<ShardStats> shard_stats() const;
  /// Sorted by key.
  std::vector<SeriesInfo> series_info() const;

  std::size_t shard_count() const { return shards_.size(); }
  const StoreConfig& config() const { return config_; }

 private:
  struct Series {
    std::shared_ptr<std::vector<predict::Observation>> data;
    /// Live-snapshot count for the current `data` epoch; replaced with
    /// a fresh zero counter whenever a copy-on-write installs a new
    /// vector (old snapshots keep decrementing their own counter).
    std::shared_ptr<std::atomic<std::int64_t>> readers =
        std::make_shared<std::atomic<std::int64_t>>(0);
    /// Lock-free mirror of `epoch`, published with release ordering
    /// after every mutation; handed out by HistoryStore::watermark().
    std::shared_ptr<std::atomic<std::uint64_t>> watermark =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    std::uint64_t epoch = 0;
    std::uint64_t generation = 0;
    std::uint64_t evicted = 0;
    double last_append_wall = 0.0;  ///< steady-clock seconds
    /// record_hash() of every record-level append, kept only when
    /// config.dedupe_records is on (guarded by the shard mutex).
    std::unordered_set<std::uint64_t> seen;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<SeriesKey, Series> series;  // ordered: deterministic dumps
    std::uint64_t appends = 0;           // guarded by mu
  };

  Shard& shard_for(const SeriesKey& key) const;
  /// Locks `shard.mu`, recording contention when the lock was busy.
  std::unique_lock<std::mutex> lock_shard(const Shard& shard) const;

  /// The one append path.  When `dedupe_hash` is non-null the series'
  /// seen-set is consulted under the shard lock; a duplicate leaves
  /// the series untouched and reports `*applied == false`.
  std::uint64_t append_obs(const SeriesKey& key,
                           const predict::Observation& obs,
                           const std::uint64_t* dedupe_hash, bool* applied);

  StoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Copy-on-write observer list: ingest threads grab the shared_ptr
  /// under the mutex and call outside any shard lock.
  mutable std::mutex observers_mu_;
  std::shared_ptr<const std::vector<RecordObserver>> observers_;

  std::atomic<std::uint64_t> dedup_skipped_{0};

  struct Metrics {
    std::vector<obs::Counter*> shard_appends;  // parallel to shards_
    obs::Counter* out_of_order = nullptr;
    obs::Counter* dedup_skipped = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Counter* cow_copies = nullptr;
    obs::Counter* lock_contended = nullptr;
    obs::Gauge* snapshot_age = nullptr;
    obs::Histogram* lock_wait = nullptr;
  };
  Metrics metrics_;
};

}  // namespace wadp::history
