#include "history/adapter.hpp"

namespace wadp::history {

SeriesKey series_key_for(const gridftp::TransferRecord& record) {
  return SeriesKey{
      .host = record.host, .remote_ip = record.source_ip, .op = record.op};
}

predict::Observation to_observation(const gridftp::TransferRecord& record) {
  return predict::Observation{.time = record.end_time,
                              .value = record.bandwidth(),
                              .file_size = record.file_size,
                              .ok = record.ok,
                              .disk = record.disk_throughput,
                              .probe = record.net_probe};
}

bool SeriesFilter::matches(const gridftp::TransferRecord& record) const {
  if (!remote_ip.empty() && record.source_ip != remote_ip) return false;
  if (op && record.op != *op) return false;
  return true;
}

std::vector<predict::Observation> observations_from_records(
    std::span<const gridftp::TransferRecord> records,
    const SeriesFilter& filter) {
  std::vector<predict::Observation> out;
  out.reserve(records.size());
  for (const auto& record : records) {
    if (filter.matches(record)) out.push_back(to_observation(record));
  }
  return out;
}

}  // namespace wadp::history
