#include "history/store.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "history/adapter.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"

namespace wadp::history {
namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const std::vector<predict::Observation>& empty_series() {
  static const std::vector<predict::Observation> kEmpty;
  return kEmpty;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: full avalanche over both inputs' bits.
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::string SeriesKey::to_string() const {
  return host + "/" + remote_ip + "/" + gridftp::to_string(op);
}

std::size_t hash_of(const SeriesKey& key) {
  // FNV-1a over the fields with separators, so ("ab","c") != ("a","bc").
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  mix(key.host);
  mix(key.remote_ip);
  h ^= static_cast<std::size_t>(key.op);
  h *= 1099511628211ull;
  return h;
}

const std::vector<predict::Observation>& SeriesSnapshot::observations() const {
  return data_ ? *data_ : empty_series();
}

void SeriesSnapshot::drop_lease() {
  if (lease_) {
    // Release: orders every read this snapshot made before the store's
    // acquire load that may observe the count reaching zero.
    lease_->fetch_sub(1, std::memory_order_release);
    lease_.reset();
  }
}

SeriesSnapshot::~SeriesSnapshot() { drop_lease(); }

SeriesSnapshot::SeriesSnapshot(const SeriesSnapshot& other)
    : data_(other.data_),
      lease_(other.lease_),
      epoch_(other.epoch_),
      generation_(other.generation_),
      evicted_(other.evicted_) {
  // Relaxed is enough: `other` provably holds a lease, so the count is
  // non-zero throughout and a writer can never observe zero here.
  if (lease_) lease_->fetch_add(1, std::memory_order_relaxed);
}

SeriesSnapshot& SeriesSnapshot::operator=(const SeriesSnapshot& other) {
  if (this != &other) {
    drop_lease();
    data_ = other.data_;
    lease_ = other.lease_;
    epoch_ = other.epoch_;
    generation_ = other.generation_;
    evicted_ = other.evicted_;
    if (lease_) lease_->fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

SeriesSnapshot& SeriesSnapshot::operator=(SeriesSnapshot&& other) noexcept {
  if (this != &other) {
    drop_lease();
    data_ = std::move(other.data_);
    lease_ = std::move(other.lease_);  // lease transfers, count unchanged
    epoch_ = other.epoch_;
    generation_ = other.generation_;
    evicted_ = other.evicted_;
  }
  return *this;
}

HistoryStore::HistoryStore(StoreConfig config) : config_(config) {
  const std::size_t shards =
      std::min<std::size_t>(64, round_up_pow2(std::max<std::size_t>(
                                    1, config_.shard_count)));
  config_.shard_count = shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!config_.instrumented) return;
  auto& registry = obs::Registry::global();
  metrics_.shard_appends.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    metrics_.shard_appends.push_back(&registry.counter(
        "wadp_history_appends_total", {{"shard", std::to_string(i)}},
        "Observations appended to the history store, per shard"));
  }
  metrics_.out_of_order = &registry.counter(
      "wadp_history_out_of_order_total", {},
      "Appends that arrived out of time order (generation bumps)");
  metrics_.dedup_skipped = &registry.counter(
      "wadp_history_dedup_skipped_total", {},
      "Record appends skipped by the (timestamp, trace_id) dedupe index");
  metrics_.evicted = &registry.counter(
      "wadp_history_evicted_total", {},
      "Observations evicted by the per-series retention cap");
  metrics_.snapshots = &registry.counter(
      "wadp_history_snapshots_total", {}, "Series snapshots handed out");
  metrics_.cow_copies = &registry.counter(
      "wadp_history_cow_copies_total", {},
      "Appends that copied a series because a snapshot was outstanding");
  metrics_.lock_contended = &registry.counter(
      "wadp_history_lock_contended_total", {},
      "Shard-lock acquisitions that found the lock busy");
  metrics_.snapshot_age = &registry.gauge(
      "wadp_history_snapshot_age_seconds", {},
      "Wall-clock staleness of the most recently taken snapshot "
      "(seconds since its series last mutated)");
  metrics_.lock_wait = &registry.histogram(
      "wadp_history_lock_wait_seconds", {},
      "Wall-clock wait for a contended shard lock");
}

HistoryStore::Shard& HistoryStore::shard_for(const SeriesKey& key) const {
  return *shards_[hash_of(key) & (shards_.size() - 1)];
}

std::unique_lock<std::mutex> HistoryStore::lock_shard(
    const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  // Contended path only: measure the wait.  The fast path stays a bare
  // try_lock so the contention instrument never serializes the shards.
  const double started = wall_seconds();
  lock.lock();
  if (metrics_.lock_contended != nullptr) {
    metrics_.lock_contended->inc();
    metrics_.lock_wait->record(wall_seconds() - started);
  }
  return lock;
}

std::uint64_t HistoryStore::record_hash(const gridftp::TransferRecord& record) {
  std::uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(record.end_time));
  std::memcpy(&time_bits, &record.end_time, sizeof(time_bits));
  return mix64(time_bits * 0x9e3779b97f4a7c15ull ^
               mix64(record.trace_id + 0x632be59bd9b4e019ull));
}

std::uint64_t HistoryStore::append(const SeriesKey& key,
                                   const predict::Observation& obs) {
  bool applied = true;
  return append_obs(key, obs, nullptr, &applied);
}

std::uint64_t HistoryStore::append_obs(const SeriesKey& key,
                                       const predict::Observation& obs,
                                       const std::uint64_t* dedupe_hash,
                                       bool* applied) {
  const std::size_t shard_index = hash_of(key) & (shards_.size() - 1);
  Shard& shard = *shards_[shard_index];
  bool out_of_order = false;
  bool copied = false;
  std::uint64_t evictions = 0;
  std::uint64_t epoch = 0;
  // Copy-on-write staging area, filled OUTSIDE the shard lock so a
  // reader never queues behind an O(n) clone of a large series.
  std::shared_ptr<std::vector<predict::Observation>> staged;
  std::uint64_t staged_epoch = 0;
  {
    auto lock = lock_shard(shard);
    Series& series = shard.series[key];
    if (dedupe_hash != nullptr && !series.seen.insert(*dedupe_hash).second) {
      // Already ingested (WAL replay over a snapshot, or a log
      // backfill after recovery): leave the series untouched.
      *applied = false;
      dedup_skipped_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t current = series.epoch;
      lock.unlock();
      if (metrics_.dedup_skipped != nullptr) metrics_.dedup_skipped->inc();
      return current;
    }
    if (!series.data) {
      series.data = std::make_shared<std::vector<predict::Observation>>();
    }
    // A non-zero lease count means a snapshot of this epoch may still
    // be reading, so the vector must be left frozen (the acquire load
    // pairs with the departing snapshots' release decrements).  Clone
    // it with the lock dropped, then install the clone only if no
    // other writer advanced the series in the meantime (each retry
    // implies another writer made progress, so the loop terminates).
    while (series.readers->load(std::memory_order_acquire) > 0) {
      if (staged && staged_epoch == series.epoch) {
        series.data = std::move(staged);
        // Fresh epoch, fresh lease count: outstanding snapshots keep
        // decrementing their own (old) counter.
        series.readers = std::make_shared<std::atomic<std::int64_t>>(0);
        copied = true;
        break;
      }
      const auto frozen = series.data;
      staged_epoch = series.epoch;
      lock.unlock();
      staged = std::make_shared<std::vector<predict::Observation>>();
      staged->reserve(std::max(frozen->capacity(), frozen->size() + 1));
      staged->assign(frozen->begin(), frozen->end());
      lock.lock();
    }
    auto& data = *series.data;
    if (data.empty() || data.back().time <= obs.time) {
      data.push_back(obs);
    } else {
      const auto pos = std::upper_bound(
          data.begin(), data.end(), obs,
          [](const predict::Observation& a, const predict::Observation& b) {
            return a.time < b.time;
          });
      data.insert(pos, obs);
      ++series.generation;
      out_of_order = true;
    }
    const std::size_t cap = config_.max_observations_per_series;
    if (cap > 0 && data.size() > cap) {
      // Evict in batches of cap/4 so the front-erase memmove amortizes
      // to O(1) per append instead of O(cap) once a series sits at cap.
      const std::size_t drop =
          std::max<std::size_t>(data.size() - cap, cap / 4);
      data.erase(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(drop));
      series.evicted += drop;
      ++series.generation;
      evictions = drop;
    }
    epoch = ++series.epoch;
    // Release pairs with the serving cache's acquire validation load:
    // a reader that observes the new watermark also observes the data
    // mutation that produced it.
    series.watermark->store(epoch, std::memory_order_release);
    series.last_append_wall = wall_seconds();
    ++shard.appends;
  }
  if (!metrics_.shard_appends.empty()) {
    metrics_.shard_appends[shard_index]->inc();
    if (out_of_order) metrics_.out_of_order->inc();
    if (evictions > 0) metrics_.evicted->inc(evictions);
    if (copied) metrics_.cow_copies->inc();
  }
  return epoch;
}

std::uint64_t HistoryStore::append(const gridftp::TransferRecord& record) {
  std::uint64_t hash = 0;
  const std::uint64_t* dedupe_hash = nullptr;
  if (config_.dedupe_records) {
    hash = record_hash(record);
    dedupe_hash = &hash;
  }
  bool applied = true;
  const std::uint64_t epoch = append_obs(
      series_key_for(record), to_observation(record), dedupe_hash, &applied);
  // A deduplicated record changed nothing: no observer (the quality
  // tracker must not re-join it) and no ingest span.
  if (!applied) return epoch;
  std::shared_ptr<const std::vector<RecordObserver>> observers;
  {
    const std::lock_guard<std::mutex> lock(observers_mu_);
    observers = observers_;
  }
  if (observers) {
    for (const RecordObserver& observer : *observers) observer(record);
  }
  if (config_.instrumented && obs::TraceContext::current().active()) {
    // Zero-width instant on the simulated timeline: ingest is the
    // terminal hop of the request's causal chain (parent and trace id
    // come from the ambient context).
    obs::Tracer::global().record(
        "history.ingest", 0, obs::sim_ns(record.end_time),
        obs::sim_ns(record.end_time),
        {{"SERIES", series_key_for(record).to_string()},
         {"RESULT", record.ok ? "ok" : "fail"}});
  }
  return epoch;
}

void HistoryStore::add_record_observer(RecordObserver observer) {
  const std::lock_guard<std::mutex> lock(observers_mu_);
  auto next = observers_ ? std::make_shared<std::vector<RecordObserver>>(
                               *observers_)
                         : std::make_shared<std::vector<RecordObserver>>();
  next->push_back(std::move(observer));
  observers_ = std::move(next);
}

std::size_t HistoryStore::ingest_log(const gridftp::TransferLog& log) {
  for (const auto& record : log.records()) append(record);
  return log.records().size();
}

std::size_t HistoryStore::attach(gridftp::TransferLog& log) {
  const std::size_t backfilled = ingest_log(log);
  log.set_record_sink(
      [this](const gridftp::TransferRecord& record) { append(record); });
  return backfilled;
}

SeriesSnapshot HistoryStore::snapshot(const SeriesKey& key) const {
  SeriesSnapshot snap;
  double age = 0.0;
  {
    const Shard& shard = shard_for(key);
    auto lock = lock_shard(shard);
    const auto it = shard.series.find(key);
    if (it == shard.series.end()) return snap;
    snap.data_ = it->second.data;
    // Take one lease on this epoch; relaxed is enough under the shard
    // lock (writers also check the count under it).
    it->second.readers->fetch_add(1, std::memory_order_relaxed);
    snap.lease_ = it->second.readers;
    snap.epoch_ = it->second.epoch;
    snap.generation_ = it->second.generation;
    snap.evicted_ = it->second.evicted;
    age = wall_seconds() - it->second.last_append_wall;
  }
  if (metrics_.snapshots != nullptr) {
    metrics_.snapshots->inc();
    metrics_.snapshot_age->set(age);
  }
  return snap;
}

std::vector<SeriesExport> HistoryStore::export_shard(
    std::size_t shard_index) const {
  WADP_CHECK_MSG(shard_index < shards_.size(), "export: no such shard");
  std::vector<SeriesExport> out;
  const Shard& shard = *shards_[shard_index];
  auto lock = lock_shard(shard);
  out.reserve(shard.series.size());
  for (const auto& [key, series] : shard.series) {
    if (!series.data) continue;  // watermark-only subscription, nothing to save
    SeriesExport exported;
    exported.key = key;
    exported.snapshot.data_ = series.data;
    series.readers->fetch_add(1, std::memory_order_relaxed);
    exported.snapshot.lease_ = series.readers;
    exported.snapshot.epoch_ = series.epoch;
    exported.snapshot.generation_ = series.generation;
    exported.snapshot.evicted_ = series.evicted;
    exported.hashes.assign(series.seen.begin(), series.seen.end());
    std::sort(exported.hashes.begin(), exported.hashes.end());
    out.push_back(std::move(exported));
  }
  return out;
}

void HistoryStore::restore_series(const SeriesKey& key,
                                  std::vector<predict::Observation> observations,
                                  std::uint64_t epoch,
                                  std::uint64_t generation,
                                  std::uint64_t evicted,
                                  std::vector<std::uint64_t> hashes) {
  const std::size_t shard_index = hash_of(key) & (shards_.size() - 1);
  Shard& shard = *shards_[shard_index];
  auto lock = lock_shard(shard);
  Series& series = shard.series[key];
  WADP_CHECK_MSG(!series.data || series.data->empty(),
                 "restore_series over a series that already holds data");
  const std::size_t count = observations.size();
  series.data = std::make_shared<std::vector<predict::Observation>>(
      std::move(observations));
  // Fresh lease counter: any snapshot taken of the (empty) pre-restore
  // epoch keeps decrementing its own.
  series.readers = std::make_shared<std::atomic<std::int64_t>>(0);
  series.epoch = epoch;
  series.generation = generation;
  series.evicted = evicted;
  if (config_.dedupe_records) {
    series.seen.insert(hashes.begin(), hashes.end());
  }
  // Release pairs with serving-cache validation loads: a cache entry
  // stamped with a pre-crash epoch revalidates against the restored
  // watermark exactly as it did against the live one.
  series.watermark->store(epoch, std::memory_order_release);
  series.last_append_wall = wall_seconds();
  shard.appends += count;
}

std::shared_ptr<const std::atomic<std::uint64_t>> HistoryStore::watermark(
    const SeriesKey& key) {
  Shard& shard = shard_for(key);
  auto lock = lock_shard(shard);
  // operator[] so a subscription taken before the first observation
  // binds to the same cell every later append will publish through.
  return shard.series[key].watermark;
}

std::uint64_t HistoryStore::epoch(const SeriesKey& key) const {
  const Shard& shard = shard_for(key);
  auto lock = lock_shard(shard);
  const auto it = shard.series.find(key);
  return it == shard.series.end() ? 0 : it->second.epoch;
}

std::vector<SeriesKey> HistoryStore::keys() const {
  std::vector<SeriesKey> out;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [key, series] : shard->series) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SeriesKey> HistoryStore::keys_for_host(
    const std::string& host) const {
  std::vector<SeriesKey> out;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [key, series] : shard->series) {
      if (key.host == host) out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t HistoryStore::series_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->series.size();
  }
  return total;
}

std::size_t HistoryStore::total_observations() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    for (const auto& [key, series] : shard->series) {
      if (series.data) total += series.data->size();
    }
  }
  return total;
}

std::vector<ShardStats> HistoryStore::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStats stats;
    stats.index = i;
    auto lock = lock_shard(*shards_[i]);
    stats.series_count = shards_[i]->series.size();
    for (const auto& [key, series] : shards_[i]->series) {
      if (series.data) stats.observation_count += series.data->size();
    }
    stats.appends = shards_[i]->appends;
    out.push_back(stats);
  }
  return out;
}

std::vector<SeriesInfo> HistoryStore::series_info() const {
  std::vector<SeriesInfo> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto lock = lock_shard(*shards_[i]);
    for (const auto& [key, series] : shards_[i]->series) {
      SeriesInfo info;
      info.key = key;
      info.shard = i;
      info.observations = series.data ? series.data->size() : 0;
      info.epoch = series.epoch;
      info.generation = series.generation;
      info.evicted = series.evicted;
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesInfo& a, const SeriesInfo& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace wadp::history
