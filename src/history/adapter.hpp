// The one record→observation conversion path.
//
// Three copies of this logic used to exist (workload/trace.cpp, the
// prediction service's ingest, the MDS provider's grouping pass); they
// are deduplicated here so every layer derives identical observations
// — same timestamp convention (completion time), same bandwidth
// formula — from the same TransferRecord.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gridftp/record.hpp"
#include "history/store.hpp"
#include "predict/observation.hpp"

namespace wadp::history {

/// The series a record belongs to: (serving host, remote endpoint,
/// direction) — the store's shard key.
SeriesKey series_key_for(const gridftp::TransferRecord& record);

/// Reduces a record to what prediction needs: when it finished, how
/// fast it went, how large the file was.
predict::Observation to_observation(const gridftp::TransferRecord& record);

/// Record filter for ad-hoc extraction from raw logs (benches, CLI).
struct SeriesFilter {
  /// Keep only records whose remote endpoint matches (empty = all).
  std::string remote_ip;
  /// Keep only this direction (nullopt = both).
  std::optional<gridftp::Operation> op = gridftp::Operation::kRead;

  bool matches(const gridftp::TransferRecord& record) const;
};

/// Extracts a time-ordered observation series from log records.
/// Records are assumed log-ordered (monotone end times, which the
/// instrumented server guarantees); feed a HistoryStore instead when
/// ordering is not guaranteed.
std::vector<predict::Observation> observations_from_records(
    std::span<const gridftp::TransferRecord> records,
    const SeriesFilter& filter = {});

}  // namespace wadp::history
