// Storage-system model.
//
// Section 3 of the paper singles storage out: unlike wide-area links,
// storage systems are "less amenable to law-of-large-numbers arguments"
// — a single extra flow visibly dents performance.  We model a site's
// storage as two capacity ports (read and write), each optionally
// perturbed by its own LoadProcess (competing local I/O), shared
// max-min among the flows crossing them.  A GridFTP read transfer
// crosses the source site's read port and the sink site's write port.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "net/load.hpp"
#include "net/provider.hpp"
#include "util/types.hpp"

namespace wadp::storage {

struct StorageParams {
  Bandwidth read_rate = 60 * kMB;   ///< aggregate sequential read, bytes/s
  Bandwidth write_rate = 45 * kMB;  ///< aggregate sequential write, bytes/s
  /// Competing local I/O; nullopt = dedicated storage.
  std::optional<net::LoadParams> local_load;
};

class StorageSystem {
 public:
  /// `seed`/`origin` parameterize the local-load processes (ignored for
  /// dedicated storage).
  StorageSystem(std::string site, StorageParams params, std::uint64_t seed,
                SimTime origin);

  const std::string& site() const { return site_; }
  const StorageParams& params() const { return params_; }

  /// Capacity ports usable as fluid-engine resources.
  net::CapacityProvider& read_port() { return *read_port_; }
  net::CapacityProvider& write_port() { return *write_port_; }
  const net::CapacityProvider& read_port() const { return *read_port_; }
  const net::CapacityProvider& write_port() const { return *write_port_; }

 private:
  class Port final : public net::CapacityProvider {
   public:
    Port(std::string name, Bandwidth rate,
         const std::optional<net::LoadParams>& load, std::uint64_t seed,
         SimTime origin);
    Bandwidth capacity_at(SimTime t) const override;
    SimTime next_change_after(SimTime t) const override;
    std::string_view resource_name() const override { return name_; }

   private:
    std::string name_;
    Bandwidth rate_;
    std::optional<net::LoadProcess> load_;
  };

  std::string site_;
  StorageParams params_;
  std::unique_ptr<Port> read_port_;
  std::unique_ptr<Port> write_port_;
};

}  // namespace wadp::storage
