#include "storage/storage.hpp"

#include "util/error.hpp"

namespace wadp::storage {

StorageSystem::Port::Port(std::string name, Bandwidth rate,
                          const std::optional<net::LoadParams>& load,
                          std::uint64_t seed, SimTime origin)
    : name_(std::move(name)), rate_(rate) {
  WADP_CHECK(rate_ > 0.0);
  if (load) load_.emplace(*load, seed, origin);
}

Bandwidth StorageSystem::Port::capacity_at(SimTime t) const {
  if (!load_) return rate_;
  return rate_ * load_->availability(t);
}

SimTime StorageSystem::Port::next_change_after(SimTime t) const {
  if (!load_) return kNeverTime;
  return load_->next_change_after(t);
}

StorageSystem::StorageSystem(std::string site, StorageParams params,
                             std::uint64_t seed, SimTime origin)
    : site_(std::move(site)), params_(params) {
  read_port_ = std::make_unique<Port>("storage:" + site_ + "/read",
                                      params_.read_rate, params_.local_load,
                                      seed ^ 0x1d, origin);
  write_port_ = std::make_unique<Port>("storage:" + site_ + "/write",
                                       params_.write_rate, params_.local_load,
                                       seed ^ 0x2e, origin);
}

}  // namespace wadp::storage
