// Causal trace context: a 64-bit trace id plus the span id that any
// nested work should parent under.  The context is thread-local and
// installed/removed by the RAII ScopedTraceContext, so instrumentation
// deep in the stack (MDS search, prediction service, history ingest)
// picks up the caller's trace without any signature changes: the
// Tracer consults TraceContext::current() when a span is opened or
// recorded with no explicit parent.
//
// The simulator runs callbacks on one thread, so a callback that works
// on behalf of an earlier request re-installs the context it captured
// at schedule time (see gridftp/client.cpp) — the thread-local is a
// propagation channel, not a store.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace wadp::obs {

/// The ambient causal context: which request (trace) the current call
/// stack works for, and which span new work should hang under.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no active trace
  SpanId parent = 0;           ///< span id nested spans parent under

  bool active() const { return trace_id != 0; }

  /// The context installed on this thread (inactive if none).
  static TraceContext current();

  /// Mints a fresh process-unique trace id (deterministic: a counter
  /// starting at 1, so demo runs produce stable ids).
  static std::uint64_t mint();
};

/// Installs a TraceContext on this thread for its lifetime, restoring
/// the previous one on destruction.  Non-copyable, non-movable: scopes
/// must nest like the call stack they describe.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ScopedTraceContext(std::uint64_t trace_id, SpanId parent)
      : ScopedTraceContext(TraceContext{trace_id, parent}) {}
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ScopedTraceContext(ScopedTraceContext&&) = delete;
  ScopedTraceContext& operator=(ScopedTraceContext&&) = delete;

 private:
  TraceContext saved_;
};

/// Traces one synchronous unit of simulated-time work (an MDS search, a
/// broker selection, a history ingest): when a trace is active on this
/// thread, allocates a span id, installs itself as the ambient parent —
/// so nested instrumentation hangs underneath — and records the span as
/// a zero-width instant at `sim_now` on destruction.  No-op (and free)
/// when no trace is active.
class SimSpanScope {
 public:
  SimSpanScope(std::string name, double sim_now,
               std::vector<std::pair<std::string, std::string>> attrs = {});
  ~SimSpanScope();

  SimSpanScope(const SimSpanScope&) = delete;
  SimSpanScope& operator=(const SimSpanScope&) = delete;
  SimSpanScope(SimSpanScope&&) = delete;
  SimSpanScope& operator=(SimSpanScope&&) = delete;

  bool active() const { return span_id_ != 0; }
  SpanId id() const { return span_id_; }

  /// Attributes added while the scope is open (ignored when inactive).
  void set_attr(std::string key, std::string value);
  void set_attr(std::string key, std::int64_t value);

 private:
  std::string name_;
  std::uint64_t instant_ns_ = 0;
  SpanId span_id_ = 0;  ///< 0 = inactive
  TraceContext outer_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace wadp::obs
