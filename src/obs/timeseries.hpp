// Metric time-series recorder: the registry, remembered.
//
// The paper's thesis is that *logged history* makes a system
// predictable; obs/metrics only ever answered "what is the value now".
// The MetricsRecorder closes that gap: on a fixed cadence it scrapes a
// Registry snapshot into fixed-capacity per-series ring buffers, so a
// shed storm, an fsync stall, or a drift episode leaves an inspectable
// trail instead of a single post-hoc gauge reading.
//
// Derived series, one ring each (names are `<metric key>` plus an
// aspect suffix):
//
//   counter    `name{labels}`        cumulative value
//              `name{labels}:rate`   per-second delta vs previous scrape
//              `name:rate`           label-summed family rate (only when
//                                    the family is labeled — ratio rules
//                                    want the aggregate)
//   gauge      `name{labels}`        instantaneous value
//   histogram  `name{labels}:rate`   samples/second
//              `name{labels}:p50`    } quantiles interpolated from ONE
//              `name{labels}:p99`    } cumulative-bucket snapshot per
//                                      scrape (never three walks)
//
// Cadence contract (docs/OBSERVABILITY.md): under the simulator the
// caller drives scrape(now) from a sim::PeriodicTask, so sample times
// are simulated seconds and runs stay deterministic; under a live
// process (`wadp serve`) start_wall_clock() runs a background thread
// stamping seconds-since-start.  scrape() never blocks metric writers:
// instruments are read with the same relaxed loads the exporters use,
// and only the recorder's own ring map takes a lock.  A scrape whose
// `now` does not advance past the previous one is skipped (counted),
// which makes double-wiring a tick harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace wadp::obs {

struct RecorderConfig {
  /// Samples kept per series; the oldest falls off first.
  std::size_t ring_capacity = 512;
  /// Bound on distinct series; past it new series are dropped+counted.
  std::size_t max_series = 8192;
  /// Registry to scrape (and where wadp_ts_* self-metrics register);
  /// nullptr = Registry::global().
  Registry* registry = nullptr;
};

/// One recorded point of one series.
struct TsSample {
  double time = 0.0;  ///< scrape instant (sim seconds or wall seconds)
  double value = 0.0;
};

/// Windowed aggregate the SLO evaluator and `wadp top` consume.
struct TsWindow {
  std::size_t samples = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  ///< newest sample inside the window

  bool empty() const { return samples == 0; }
};

/// One row of the `wadp top` ranking.
struct HotSeries {
  std::string name;
  double mean = 0.0;  ///< windowed mean (rate series: events/second)
  double last = 0.0;
  std::size_t samples = 0;
};

class MetricsRecorder {
 public:
  explicit MetricsRecorder(RecorderConfig config = {});
  ~MetricsRecorder();

  MetricsRecorder(const MetricsRecorder&) = delete;
  MetricsRecorder& operator=(const MetricsRecorder&) = delete;

  /// Scrapes every instrument into the rings, stamped `now`.  Returns
  /// the number of points recorded (0 when the scrape was skipped
  /// because `now` had not advanced).  Thread-safe.
  std::size_t scrape(double now);

  /// Spawns a background thread scraping every `interval_seconds` of
  /// wall time, stamping seconds since this call.  stop_wall_clock()
  /// (or destruction) joins it.  The sim path never uses this — it
  /// drives scrape(now) itself so runs stay deterministic.
  void start_wall_clock(double interval_seconds);
  void stop_wall_clock();

  /// Name-sorted list of every recorded series.
  std::vector<std::string> series_names() const;

  /// All samples of one series, oldest first (empty when unknown).
  std::vector<TsSample> samples(const std::string& series) const;

  /// Newest sample, or nullopt when the series is unknown/empty.
  std::optional<TsSample> latest(const std::string& series) const;

  /// Aggregate over samples with time in (now - window, now].
  TsWindow window(const std::string& series, double window_seconds,
                  double now) const;

  /// Rate-aspect series ranked by windowed mean, highest first — the
  /// "hottest series" view behind `wadp top`.
  std::vector<HotSeries> hottest(std::size_t limit, double window_seconds,
                                 double now) const;

  std::uint64_t scrapes() const;
  std::uint64_t skipped_scrapes() const;
  std::uint64_t dropped_series() const;
  std::size_t series_count() const;
  double last_scrape_time() const;

  const RecorderConfig& config() const { return config_; }

  /// Aspect-suffix helpers, so rule catalogs and tests never hand-roll
  /// the separator.
  static std::string rate_series(const std::string& metric_key);
  static std::string p50_series(const std::string& metric_key);
  static std::string p99_series(const std::string& metric_key);

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : data(capacity) {}
    std::vector<TsSample> data;  ///< fixed capacity, circular
    std::size_t head = 0;        ///< next write slot
    std::size_t size = 0;

    void push(TsSample sample);
  };

  /// Last raw cumulative value per counter/histogram-count series, for
  /// rate derivation.
  struct Cumulative {
    double value = 0.0;
    double time = 0.0;
    bool seen = false;
  };

  Ring* ring_for(const std::string& series);
  void record_point(const std::string& series, double now, double value,
                    std::size_t* points);
  void record_rate(const std::string& series, double now, double raw,
                   std::size_t* points);

  RecorderConfig config_;
  Registry& registry_;

  Counter& scrapes_total_;
  Counter& points_total_;
  Counter& skipped_total_;
  Counter& dropped_total_;
  Gauge& series_gauge_;
  Histogram& scrape_seconds_;

  mutable std::mutex mu_;
  std::map<std::string, Ring, std::less<>> rings_;
  std::map<std::string, Cumulative, std::less<>> cumulative_;
  double last_time_ = 0.0;
  bool scraped_once_ = false;
  std::uint64_t dropped_series_ = 0;
  /// Per-recorder tallies; the wadp_ts_* counters are shared across
  /// every recorder scraping the same registry.
  std::uint64_t local_scrapes_ = 0;
  std::uint64_t local_skipped_ = 0;

  std::thread wall_thread_;
  std::atomic<bool> wall_running_{false};
};

}  // namespace wadp::obs
