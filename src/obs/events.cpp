#include "obs/events.hpp"

namespace wadp::obs {

void EventSink::emit(std::string event, std::string subsystem,
                     util::UlmRecord record) {
  // EVNT/PROG lead every line (ULM's required fields come first), so
  // rebuild the record with them up front and the payload after.
  util::UlmRecord out;
  out.set("EVNT", std::move(event));
  out.set("PROG", std::move(subsystem));
  for (const auto& [key, value] : record.fields()) out.set(key, value);
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(out));
  ++emitted_total_;
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<util::UlmRecord> EventSink::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::string EventSink::to_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& record : events_) {
    out += record.to_line();
    out += "\n";
  }
  return out;
}

std::uint64_t EventSink::emitted_total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_total_;
}

void EventSink::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

EventSink& EventSink::global() {
  static EventSink sink;
  return sink;
}

}  // namespace wadp::obs
