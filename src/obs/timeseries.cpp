#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace wadp::obs {
namespace {

constexpr const char* kRateSuffix = ":rate";
constexpr const char* kP50Suffix = ":p50";
constexpr const char* kP99Suffix = ":p99";

/// `name{k="v",k2="v2"}` — same key shape as the JSON exporter, so a
/// series name pasted from `wadp metrics --json` resolves here.
std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

/// p50 and p99 from ONE cumulative-bucket snapshot.  The registry's
/// Histogram::quantile() re-snapshots all ~2k buckets per call; at
/// scrape cadence over dozens of histograms that walk dominates, so
/// the recorder interpolates both targets in a single pass.
struct QuantilePair {
  double p50 = 0.0;
  double p99 = 0.0;
};

QuantilePair quantiles_from_buckets(
    const std::vector<std::pair<double, std::uint64_t>>& buckets) {
  QuantilePair out;
  if (buckets.empty()) return out;
  const double total = static_cast<double>(buckets.back().second);
  if (total <= 0.0) return out;

  const double targets[2] = {0.5 * total, 0.99 * total};
  double* slots[2] = {&out.p50, &out.p99};
  std::size_t t = 0;
  double prev_upper = 0.0;
  double prev_cum = 0.0;
  for (const auto& [upper, cumulative] : buckets) {
    const double cum = static_cast<double>(cumulative);
    while (t < 2 && cum >= targets[t]) {
      const double span = cum - prev_cum;
      const double frac = span > 0.0 ? (targets[t] - prev_cum) / span : 1.0;
      *slots[t] = prev_upper + frac * (upper - prev_upper);
      ++t;
    }
    if (t == 2) break;
    prev_upper = upper;
    prev_cum = cum;
  }
  // Ranks past the last bucket (rounding) land on the max bound.
  for (; t < 2; ++t) *slots[t] = buckets.back().first;
  return out;
}

}  // namespace

void MetricsRecorder::Ring::push(TsSample sample) {
  if (data.empty()) return;
  data[head] = sample;
  head = (head + 1) % data.size();
  if (size < data.size()) ++size;
}

MetricsRecorder::MetricsRecorder(RecorderConfig config)
    : config_(config),
      registry_(config.registry != nullptr ? *config.registry
                                           : Registry::global()),
      scrapes_total_(registry_.counter(
          "wadp_ts_scrapes_total", {},
          "Registry scrapes recorded into the time-series rings")),
      points_total_(registry_.counter(
          "wadp_ts_points_total", {},
          "Samples appended across all time-series rings")),
      skipped_total_(registry_.counter(
          "wadp_ts_scrapes_skipped_total", {},
          "Scrapes skipped because the clock had not advanced")),
      dropped_total_(registry_.counter(
          "wadp_ts_dropped_series_total", {},
          "Series discarded because the recorder hit max_series")),
      series_gauge_(registry_.gauge("wadp_ts_series", {},
                                    "Distinct series currently recorded")),
      scrape_seconds_(registry_.histogram(
          "wadp_ts_scrape_seconds", {},
          "Wall-clock cost of one registry scrape")) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

MetricsRecorder::~MetricsRecorder() { stop_wall_clock(); }

MetricsRecorder::Ring* MetricsRecorder::ring_for(const std::string& series) {
  auto it = rings_.find(series);
  if (it != rings_.end()) return &it->second;
  if (rings_.size() >= config_.max_series) {
    ++dropped_series_;
    dropped_total_.inc();
    return nullptr;
  }
  return &rings_.emplace(series, Ring(config_.ring_capacity)).first->second;
}

void MetricsRecorder::record_point(const std::string& series, double now,
                                   double value, std::size_t* points) {
  Ring* ring = ring_for(series);
  if (ring == nullptr) return;
  ring->push({now, value});
  ++*points;
}

void MetricsRecorder::record_rate(const std::string& series, double now,
                                  double raw, std::size_t* points) {
  Cumulative& prev = cumulative_[series];
  // A counter first seen after scraping has begun implicitly sat at
  // zero until its first increment — synthesize that origin so the
  // series yields a rate on its FIRST scrape.  Without this, a metric
  // born mid-incident (retry exhaustion, torn frames) costs the SLO
  // monitor two extra intervals of detection latency.
  if (!prev.seen && scraped_once_) {
    prev.value = 0.0;
    prev.time = last_time_;
    prev.seen = true;
  }
  if (prev.seen) {
    const double dt = now - prev.time;
    // Counters are monotone; a negative delta means the instrument was
    // re-registered under us — record a zero rate rather than a spike.
    const double delta = std::max(0.0, raw - prev.value);
    if (dt > 0.0) {
      record_point(series, now, delta / dt, points);
    }
  }
  prev.value = raw;
  prev.time = now;
  prev.seen = true;
}

std::size_t MetricsRecorder::scrape(double now) {
  const auto wall_start = std::chrono::steady_clock::now();
  // families() snapshots under the registry lock; instrument reads are
  // the same relaxed loads the exporters use — writers never stall.
  const std::vector<Registry::Family> families = registry_.families();

  std::size_t points = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (scraped_once_ && now <= last_time_) {
      ++local_skipped_;
      skipped_total_.inc();
      return 0;
    }
    for (const auto& family : families) {
      double family_sum = 0.0;
      bool labeled = false;
      for (const auto& instrument : family.instruments) {
        const std::string key = series_key(family.name, instrument.labels);
        labeled = labeled || !instrument.labels.empty();
        switch (family.kind) {
          case Registry::Kind::kCounter: {
            const double raw =
                static_cast<double>(instrument.counter->value());
            family_sum += raw;
            record_point(key, now, raw, &points);
            record_rate(key + kRateSuffix, now, raw, &points);
            break;
          }
          case Registry::Kind::kGauge:
            record_point(key, now, instrument.gauge->value(), &points);
            break;
          case Registry::Kind::kHistogram: {
            const Histogram& h = *instrument.histogram;
            const auto buckets = h.cumulative_buckets();
            const QuantilePair q = quantiles_from_buckets(buckets);
            record_rate(key + kRateSuffix, now,
                        static_cast<double>(h.count()), &points);
            record_point(key + kP50Suffix, now, q.p50, &points);
            record_point(key + kP99Suffix, now, q.p99, &points);
            break;
          }
        }
      }
      // Ratio rules (hit rate, shed ratio, join rate) want the family
      // total, not one label cell — derive the label-summed rate too.
      if (family.kind == Registry::Kind::kCounter && labeled) {
        record_rate(family.name + kRateSuffix, now, family_sum, &points);
      }
    }
    last_time_ = now;
    scraped_once_ = true;
    ++local_scrapes_;
    series_gauge_.set(static_cast<double>(rings_.size()));
  }

  scrapes_total_.inc();
  points_total_.inc(points);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  scrape_seconds_.record(wall.count());
  return points;
}

void MetricsRecorder::start_wall_clock(double interval_seconds) {
  stop_wall_clock();
  if (interval_seconds <= 0.0) interval_seconds = 1.0;
  wall_running_.store(true, std::memory_order_release);
  wall_thread_ = std::thread([this, interval_seconds] {
    const auto start = std::chrono::steady_clock::now();
    auto next = start;
    while (wall_running_.load(std::memory_order_acquire)) {
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interval_seconds));
      // Sleep in short slices so stop_wall_clock() returns promptly
      // even with multi-second intervals.
      while (wall_running_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < next) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (!wall_running_.load(std::memory_order_acquire)) break;
      const std::chrono::duration<double> since =
          std::chrono::steady_clock::now() - start;
      scrape(since.count());
    }
  });
}

void MetricsRecorder::stop_wall_clock() {
  wall_running_.store(false, std::memory_order_release);
  if (wall_thread_.joinable()) wall_thread_.join();
}

std::vector<std::string> MetricsRecorder::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) out.push_back(name);
  return out;
}

std::vector<TsSample> MetricsRecorder::samples(
    const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(series);
  if (it == rings_.end()) return {};
  const Ring& ring = it->second;
  std::vector<TsSample> out;
  out.reserve(ring.size);
  const std::size_t cap = ring.data.size();
  const std::size_t start = (ring.head + cap - ring.size) % cap;
  for (std::size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.data[(start + i) % cap]);
  }
  return out;
}

std::optional<TsSample> MetricsRecorder::latest(
    const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(series);
  if (it == rings_.end() || it->second.size == 0) return std::nullopt;
  const Ring& ring = it->second;
  const std::size_t cap = ring.data.size();
  return ring.data[(ring.head + cap - 1) % cap];
}

TsWindow MetricsRecorder::window(const std::string& series,
                                 double window_seconds, double now) const {
  TsWindow out;
  const double since = now - window_seconds;
  for (const TsSample& sample : samples(series)) {
    if (sample.time <= since || sample.time > now) continue;
    if (out.samples == 0) {
      out.min = out.max = sample.value;
    } else {
      out.min = std::min(out.min, sample.value);
      out.max = std::max(out.max, sample.value);
    }
    out.mean += sample.value;
    out.last = sample.value;
    ++out.samples;
  }
  if (out.samples > 0) out.mean /= static_cast<double>(out.samples);
  return out;
}

std::vector<HotSeries> MetricsRecorder::hottest(std::size_t limit,
                                                double window_seconds,
                                                double now) const {
  std::vector<std::string> names = series_names();
  std::vector<HotSeries> out;
  for (const std::string& name : names) {
    // Rank rate aspects only: cumulative counters grow without bound
    // and would drown every gauge; rates are comparable across series.
    if (name.size() < 5 ||
        name.compare(name.size() - 5, 5, kRateSuffix) != 0) {
      continue;
    }
    const TsWindow w = window(name, window_seconds, now);
    if (w.empty()) continue;
    out.push_back({name, w.mean, w.last, w.samples});
  }
  std::sort(out.begin(), out.end(), [](const HotSeries& a, const HotSeries& b) {
    if (a.mean != b.mean) return a.mean > b.mean;
    return a.name < b.name;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

// Accessors report this recorder's own tallies, not the registry
// counters — those are shared when two recorders (e.g. `wadp serve`'s
// wall-clock and query-time instances) scrape the same registry.
std::uint64_t MetricsRecorder::scrapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_scrapes_;
}

std::uint64_t MetricsRecorder::skipped_scrapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_skipped_;
}

std::uint64_t MetricsRecorder::dropped_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

std::size_t MetricsRecorder::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

double MetricsRecorder::last_scrape_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_time_;
}

std::string MetricsRecorder::rate_series(const std::string& metric_key) {
  return metric_key + kRateSuffix;
}

std::string MetricsRecorder::p50_series(const std::string& metric_key) {
  return metric_key + kP50Suffix;
}

std::string MetricsRecorder::p99_series(const std::string& metric_key) {
  return metric_key + kP99Suffix;
}

}  // namespace wadp::obs
