// Trace spans: named, parented intervals over the transfer lifecycle
// (connect -> negotiate -> stream[i] -> fsync -> log) and the predict
// path (ingest -> classify -> battery update -> query).
//
// Two recording styles share one Tracer:
//
//   * RAII `Span` objects stamp monotonic wall-clock timestamps
//     (steady_clock ns, injectable for tests) — right for the predict
//     path, where real latency is the quantity of interest.
//   * `Tracer::record()` takes explicit start/end instants — right for
//     the simulated transfer lifecycle, whose phases complete across
//     scheduled callbacks and whose durations are *simulated* seconds.
//
// Finished spans land in a bounded ring (oldest evicted first), so a
// long campaign keeps its most recent transfers inspectable via
// `wadp trace` without unbounded growth.  The span taxonomy and
// attribute conventions live in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wadp::obs {

/// Identifies one span; 0 means "no span" (root parent).
using SpanId = std::uint64_t;

/// One finished span as stored by the Tracer.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  std::uint64_t trace_id = 0;  ///< request the span belongs to; 0 = untraced
  std::string name;
  std::uint64_t start_ns = 0;  ///< monotonic (or simulated ns for record())
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

class Tracer;

/// Move-only RAII handle: finishing (destruction or end()) records the
/// span.  Attributes accumulate while open.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  SpanId id() const { return record_.id; }
  bool active() const { return tracer_ != nullptr; }

  void set_attr(std::string key, std::string value);
  void set_attr(std::string key, std::int64_t value);
  void set_attr(std::string key, double value);

  /// Opens a child span of this one.
  Span child(std::string name);

  /// Finishes and records the span; further calls are no-ops.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

class Tracer {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// `capacity` bounds the finished-span ring; `clock` overrides the
  /// monotonic timestamp source (tests inject a fake).
  explicit Tracer(std::size_t capacity = 4096, Clock clock = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span stamped with the tracer's clock.  When a
  /// TraceContext is installed on the calling thread, the span adopts
  /// its trace id, and — if `parent` is 0 — parents under the
  /// context's span.
  Span start(std::string name, SpanId parent = 0);

  /// Records a finished span with caller-supplied instants (the
  /// simulated-lifecycle path).  Returns its id so callers can parent
  /// subsequent phases.  Adopts the ambient TraceContext exactly like
  /// start().
  SpanId record(std::string name, SpanId parent, std::uint64_t start_ns,
                std::uint64_t end_ns,
                std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Reserves a span id without recording anything — for spans whose
  /// children finish first (a fetch root is recorded at delivery, but
  /// its attempt spans need the id up front).
  SpanId allocate_id();

  /// Records a fully caller-built span.  An id of 0 is replaced with a
  /// fresh one; a pre-allocated id (allocate_id()) is kept.  Does NOT
  /// consult the ambient TraceContext — the record is taken verbatim.
  SpanId record_full(SpanRecord span);

  /// Finished spans, oldest first (copy; the ring keeps rolling).
  std::vector<SpanRecord> finished() const;

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever finished (ring evictions included).
  std::uint64_t recorded_total() const;
  /// Spans silently evicted from the finished ring — flight-recorder
  /// bundles quote this to state their own completeness.
  std::uint64_t dropped_total() const;

  /// Drops every finished span (the CLI resets between demo phases).
  void clear();

  std::uint64_t now_ns() const;

  /// Process-wide tracer the wired-in call sites use.
  static Tracer& global();

 private:
  friend class Span;
  void finish(SpanRecord record);
  SpanId next_id();

  std::size_t capacity_;
  Clock clock_;
  mutable std::mutex mu_;
  std::deque<SpanRecord> finished_;
  std::uint64_t recorded_total_ = 0;
  std::uint64_t dropped_total_ = 0;  // guarded by mu_
  void* dropped_counter_ = nullptr;  // obs::Counter*, resolved lazily
  std::uint64_t next_id_ = 1;  // guarded by mu_
};

/// Converts simulated seconds to the tracer's nanosecond timeline.
constexpr std::uint64_t sim_ns(double sim_seconds) {
  return sim_seconds <= 0.0
             ? 0
             : static_cast<std::uint64_t>(sim_seconds * 1e9);
}

}  // namespace wadp::obs
