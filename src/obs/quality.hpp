// Online prediction-quality plane: joins the predictions the framework
// *served* against the transfers that later *completed*, maintaining
// the paper's normalized percent error (Section 6.2) as a rolling,
// per-(site, predictor, size-class) statistic — at serving time, not
// in an offline evaluator pass.
//
// The join is causal first, temporal second: every served prediction
// is remembered under the trace id of the query that produced it
// (obs/context.hpp), and a completed TransferRecord carrying the same
// trace id claims those predictions exactly.  Records without a trace
// id (legacy logs, replayed campaigns) fall back to a
// (site, size-class, time-window) nearest-neighbour match.
//
// Each joined error feeds a Page-Hinkley drift detector per
// (site, predictor): when the error mean shifts upward — the serving
// link changed and the predictor hasn't caught up — the tracker raises
// a `quality.drift` ULM self-event, bumps wadp_quality_drift_total,
// and marks the pair "drifting" for a cooldown so the replica broker
// can demote it in kPredictedBest ranking (see replica/broker.cpp).
// That is the closed loop: predictions are scored online and the
// scores steer the next selection.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gridftp/record.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "predict/classifier.hpp"
#include "util/stats.hpp"

namespace wadp::obs {

/// One prediction as it was served to a caller.
struct ServedPrediction {
  std::uint64_t trace_id = 0;  ///< 0 = untraced (fallback join only)
  std::string site;            ///< serving host the prediction is about
  Bytes file_size = 0;         ///< size the query asked about
  double time = 0.0;           ///< sim-time the prediction was served
  std::string predictor;       ///< e.g. "AVG15/fs" — closed set of 30
  double value = 0.0;          ///< predicted bandwidth (bytes/sec)
};

struct QualityConfig {
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
  /// Max traces (and max unkeyed predictions) remembered while waiting
  /// for their transfer; oldest evicted first.
  std::size_t ledger_capacity = 4096;
  /// Fallback join: |record.start_time - prediction.time| bound (sim s).
  double fallback_window = 600.0;
  /// Page-Hinkley: errors seen before the detector may alarm.
  std::size_t min_observations = 8;
  /// Page-Hinkley tolerated drift delta (percent-error points).
  double ph_delta = 2.0;
  /// Page-Hinkley alarm threshold lambda (percent-error points).
  double ph_lambda = 30.0;
  /// Joins a (site, predictor) stays demoted after an alarm before the
  /// drifting flag clears and the detector restarts.
  std::size_t drift_cooldown = 50;
  /// Registry for wadp_quality_* metrics; nullptr = Registry::global().
  Registry* registry = nullptr;
  /// Sink for quality.drift self-events; nullptr = EventSink::global().
  EventSink* events = nullptr;
};

/// Rolling error statistics for one (site, predictor, size-class).
struct QualityCell {
  std::string site;
  std::string predictor;
  int size_class = 0;
  std::string class_label;  ///< classifier figure label, e.g. "10MB"
  std::size_t count = 0;
  double mean_error_pct = 0.0;
  double stddev_error_pct = 0.0;
  double min_error_pct = 0.0;
  double max_error_pct = 0.0;
  bool drifting = false;  ///< the (site, predictor) pair is demoted
};

/// Snapshot the broker (and the `wadp quality` verb) consults.
struct QualityReport {
  std::vector<QualityCell> cells;  ///< site / predictor / class sorted
  std::uint64_t predictions = 0;
  std::uint64_t joins_trace = 0;
  std::uint64_t joins_fallback = 0;
  std::uint64_t join_misses = 0;
  std::uint64_t skipped = 0;  ///< failed transfers not scored
  std::uint64_t drift_events = 0;

  std::uint64_t joins() const { return joins_trace + joins_fallback; }
  /// Joined transfers / scoreable transfers (1.0 when nothing seen).
  double join_rate() const;
};

class QualityTracker {
 public:
  explicit QualityTracker(QualityConfig config = {});
  QualityTracker(const QualityTracker&) = delete;
  QualityTracker& operator=(const QualityTracker&) = delete;

  /// Remembers one served prediction for a later join.
  void record_prediction(const ServedPrediction& prediction);

  /// Scores a completed transfer against the prediction(s) served for
  /// it.  Failed records are counted and skipped — a dead link says
  /// nothing about predictor accuracy.  Intended as a
  /// HistoryStore record observer (history/store.hpp).
  void observe_transfer(const gridftp::TransferRecord& record);

  /// True while the pair is in its post-alarm demotion window.
  bool drifting(const std::string& site, const std::string& predictor) const;
  /// Count-weighted mean percent error across every size class of one
  /// (site, predictor) pair — the scalar the arbitration loop in
  /// core/PredictionService compares champion vs challenger on.
  /// nullopt until at least one joined transfer scored the pair.
  std::optional<double> mean_error(const std::string& site,
                                   const std::string& predictor) const;
  /// True when any predictor serving `site` is drifting.
  bool site_drifting(const std::string& site) const;

  QualityReport report() const;

  const predict::SizeClassifier& classifier() const {
    return config_.classifier;
  }

 private:
  struct Detector {
    // Page-Hinkley over the error stream: alarm when the cumulative
    // deviation above the running mean exceeds lambda.
    std::size_t n = 0;
    double mean = 0.0;
    double cum = 0.0;
    double cum_min = 0.0;
    bool drifting = false;
    std::size_t cooldown_left = 0;

    void reset();
    /// Returns true when this sample raises an alarm.
    bool update(double x, const QualityConfig& config);
  };

  struct CellStats {
    util::RunningStats stats;
    Histogram* histogram = nullptr;  // registry-owned, resolved lazily
  };

  using CellKey = std::tuple<std::string, std::string, int>;  // site,pred,cls
  using PairKey = std::tuple<std::string, std::string>;       // site, pred
  // Transparent comparators: the observe hot path probes with
  // std::tie'd string references, never constructing an owning key on
  // the hit path (keys are built only on first insertion).

  void score(const ServedPrediction& prediction,
             const gridftp::TransferRecord& record, int size_class,
             const char* method);
  void evict_locked();

  QualityConfig config_;
  Registry& registry_;
  EventSink& events_;

  Counter& predictions_total_;
  Counter& joins_trace_total_;
  Counter& joins_fallback_total_;
  Counter& join_misses_total_;
  Counter& skipped_total_;

  mutable std::mutex mu_;
  /// Trace-keyed ledger plus FIFO of trace ids for eviction.
  std::unordered_map<std::uint64_t, std::vector<ServedPrediction>> ledger_;
  std::deque<std::uint64_t> ledger_order_;
  /// Untraced predictions, insertion order (time order in practice).
  std::deque<ServedPrediction> unkeyed_;
  std::map<CellKey, CellStats, std::less<>> cells_;
  std::map<PairKey, Detector, std::less<>> detectors_;
  std::uint64_t drift_events_ = 0;
};

}  // namespace wadp::obs
