// Structured event sink: ULM-format point events about the framework's
// own behavior (fallbacks taken, replays forced, registrations lapsed).
//
// The paper logs transfers as ULM Keyword=Value lines; the framework
// logs *itself* the same way, so one parser (util/ulm) reads both.
// Every event carries EVNT (event name) and PROG (emitting subsystem),
// mirroring the draft-abela-ulm-05 required fields the paper's records
// use.  The sink is bounded: oldest events fall off first.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/ulm.hpp"

namespace wadp::obs {

class EventSink {
 public:
  explicit EventSink(std::size_t capacity = 8192) : capacity_(capacity) {}
  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;

  /// Emits one event.  `event` becomes EVNT and `subsystem` PROG; extra
  /// fields ride in `record` (which may be empty).
  void emit(std::string event, std::string subsystem,
            util::UlmRecord record = {});

  /// Buffered events, oldest first.
  std::vector<util::UlmRecord> events() const;

  /// Buffered events serialized one per line.
  std::string to_text() const;

  std::uint64_t emitted_total() const;
  void clear();

  /// Process-wide sink the wired-in call sites use.
  static EventSink& global();

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<util::UlmRecord> events_;
  std::uint64_t emitted_total_ = 0;
};

}  // namespace wadp::obs
