#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "util/strings.hpp"
#include "util/ulm.hpp"

namespace wadp::obs {
namespace {

/// Label-value escaping per Prometheus text exposition format 0.0.4:
/// backslash, double-quote, and line-feed must be escaped inside the
/// quoted value; everything else passes through verbatim.
std::string prometheus_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP text allows quotes but must escape backslash and line-feed.
std::string prometheus_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k="v",k2="v2"}` or "" when unlabeled.
std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + prometheus_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Labels with one extra pair appended (for quantile= / le=).
std::string prometheus_labels_with(const Labels& labels,
                                   const std::string& key,
                                   const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return prometheus_labels(extended);
}

/// Shortest float form that round-trips typical metric values.
std::string number(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  std::string s = util::format("%.9g", v);
  return s;
}

std::string json_escape(const std::string& s) {
  // The one shared escaper (util::json_escape) — kept as a forwarding
  // alias so this file's emitters stay terse.
  return util::json_escape(s);
}

/// JSON key for one instrument: name plus serialized labels.
std::string json_key(const std::string& name, const Labels& labels) {
  return name + prometheus_labels(labels);
}

constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99"};
constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& family : registry.families()) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " +
             prometheus_escape_help(family.help) + "\n";
    }
    switch (family.kind) {
      case Registry::Kind::kCounter:
        out += "# TYPE " + family.name + " counter\n";
        for (const auto& instrument : family.instruments) {
          out += family.name + prometheus_labels(instrument.labels) + " " +
                 std::to_string(instrument.counter->value()) + "\n";
        }
        break;
      case Registry::Kind::kGauge:
        out += "# TYPE " + family.name + " gauge\n";
        for (const auto& instrument : family.instruments) {
          out += family.name + prometheus_labels(instrument.labels) + " " +
                 number(instrument.gauge->value()) + "\n";
        }
        break;
      case Registry::Kind::kHistogram:
        out += "# TYPE " + family.name + " histogram\n";
        for (const auto& instrument : family.instruments) {
          const Histogram& h = *instrument.histogram;
          std::uint64_t total = 0;
          for (const auto& [upper, cumulative] : h.cumulative_buckets()) {
            out += family.name + "_bucket" +
                   prometheus_labels_with(instrument.labels, "le",
                                          number(upper)) +
                   " " + std::to_string(cumulative) + "\n";
            total = cumulative;
          }
          out += family.name + "_bucket" +
                 prometheus_labels_with(instrument.labels, "le", "+Inf") + " " +
                 std::to_string(total) + "\n";
          for (std::size_t q = 0; q < 3; ++q) {
            out += family.name +
                   prometheus_labels_with(instrument.labels, "quantile",
                                          kQuantileLabels[q]) +
                   " " + number(h.quantile(kQuantiles[q])) + "\n";
          }
          out += family.name + "_sum" + prometheus_labels(instrument.labels) +
                 " " + number(h.sum()) + "\n";
          out += family.name + "_count" + prometheus_labels(instrument.labels) +
                 " " + std::to_string(h.count()) + "\n";
        }
        break;
    }
  }
  return out;
}

std::string metrics_to_ulm(const Registry& registry) {
  std::string out;
  for (const auto& family : registry.families()) {
    for (const auto& instrument : family.instruments) {
      util::UlmRecord record;
      record.set("EVNT", "metric");
      record.set("PROG", "wadp.obs");
      record.set("NAME", family.name);
      switch (family.kind) {
        case Registry::Kind::kCounter:
          record.set("TYPE", "counter");
          record.set_int("VALUE",
                         static_cast<std::int64_t>(instrument.counter->value()));
          break;
        case Registry::Kind::kGauge:
          record.set("TYPE", "gauge");
          record.set_double("VALUE", instrument.gauge->value());
          break;
        case Registry::Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          record.set("TYPE", "histogram");
          record.set_int("COUNT", static_cast<std::int64_t>(h.count()));
          record.set_double("SUM", h.sum());
          record.set_double("MIN", h.min());
          record.set_double("MAX", h.max());
          record.set_double("P50", h.quantile(0.5));
          record.set_double("P90", h.quantile(0.9));
          record.set_double("P99", h.quantile(0.99));
          break;
        }
      }
      for (const auto& [key, value] : instrument.labels) {
        std::string upper;
        for (const char c : key) {
          upper += static_cast<char>(
              std::toupper(static_cast<unsigned char>(c)));
        }
        record.set("L." + upper, value);
      }
      out += record.to_line();
      out += "\n";
    }
  }
  return out;
}

std::string spans_to_ulm(const Tracer& tracer) {
  std::string out;
  for (const auto& span : tracer.finished()) {
    util::UlmRecord record;
    record.set("EVNT", "span");
    record.set("PROG", "wadp.obs");
    record.set("NAME", span.name);
    record.set_int("SPAN", static_cast<std::int64_t>(span.id));
    record.set_int("PARENT", static_cast<std::int64_t>(span.parent));
    if (span.trace_id != 0) {
      record.set_int("TRACE", static_cast<std::int64_t>(span.trace_id));
    }
    record.set_int("START.NS", static_cast<std::int64_t>(span.start_ns));
    record.set_int("DUR.NS", static_cast<std::int64_t>(span.duration_ns()));
    for (const auto& [key, value] : span.attrs) record.set(key, value);
    out += record.to_line();
    out += "\n";
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string counters, gauges, histograms;
  for (const auto& family : registry.families()) {
    for (const auto& instrument : family.instruments) {
      const std::string key =
          "\"" + json_escape(json_key(family.name, instrument.labels)) +
          "\": ";
      switch (family.kind) {
        case Registry::Kind::kCounter:
          if (!counters.empty()) counters += ", ";
          counters += key + std::to_string(instrument.counter->value());
          break;
        case Registry::Kind::kGauge:
          if (!gauges.empty()) gauges += ", ";
          gauges += key + number(instrument.gauge->value());
          break;
        case Registry::Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          if (!histograms.empty()) histograms += ", ";
          histograms +=
              key +
              util::format("{\"count\": %zu, \"sum\": %s, \"min\": %s, "
                           "\"max\": %s, \"mean\": %s, \"p50\": %s, "
                           "\"p90\": %s, \"p99\": %s}",
                           h.count(), number(h.sum()).c_str(),
                           number(h.min()).c_str(), number(h.max()).c_str(),
                           number(h.mean()).c_str(),
                           number(h.quantile(0.5)).c_str(),
                           number(h.quantile(0.9)).c_str(),
                           number(h.quantile(0.99)).c_str());
          break;
        }
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

Expected<bool> write_bench_json(const std::string& path,
                                const std::string& bench_name,
                                const Registry& registry) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Expected<bool>::failure("cannot open " + path + " for writing");
  }
  const std::string body = "{\"bench\": \"" + json_escape(bench_name) +
                           "\", \"metrics\": " + to_json(registry) + "}\n";
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    return Expected<bool>::failure("short write to " + path);
  }
  return true;
}

}  // namespace wadp::obs
