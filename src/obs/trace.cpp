#include "obs/trace.hpp"

#include <chrono>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace wadp::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::set_attr(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(std::move(key), std::move(value));
}

void Span::set_attr(std::string key, std::int64_t value) {
  set_attr(std::move(key), std::to_string(value));
}

void Span::set_attr(std::string key, double value) {
  set_attr(std::move(key), util::format("%.9g", value));
}

Span Span::child(std::string name) {
  if (tracer_ == nullptr) return {};
  Span c = tracer_->start(std::move(name), record_.id);
  c.record_.trace_id = record_.trace_id;
  return c;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  record_.end_ns = tracer_->now_ns();
  tracer_->finish(std::move(record_));
  tracer_ = nullptr;
}

Tracer::Tracer(std::size_t capacity, Clock clock)
    : capacity_(capacity), clock_(std::move(clock)) {}

std::uint64_t Tracer::now_ns() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanId Tracer::next_id() {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_id_++;
}

Span Tracer::start(std::string name, SpanId parent) {
  const TraceContext ctx = TraceContext::current();
  SpanRecord record;
  record.id = next_id();
  record.parent = parent != 0 ? parent : ctx.parent;
  record.trace_id = ctx.trace_id;
  record.name = std::move(name);
  record.start_ns = now_ns();
  return Span(this, std::move(record));
}

SpanId Tracer::record(
    std::string name, SpanId parent, std::uint64_t start_ns,
    std::uint64_t end_ns,
    std::vector<std::pair<std::string, std::string>> attrs) {
  const TraceContext ctx = TraceContext::current();
  SpanRecord span;
  span.id = next_id();
  span.parent = parent != 0 ? parent : ctx.parent;
  span.trace_id = ctx.trace_id;
  span.name = std::move(name);
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.attrs = std::move(attrs);
  const SpanId id = span.id;
  finish(std::move(span));
  return id;
}

SpanId Tracer::allocate_id() { return next_id(); }

SpanId Tracer::record_full(SpanRecord span) {
  if (span.id == 0) span.id = next_id();
  const SpanId id = span.id;
  finish(std::move(span));
  return id;
}

void Tracer::finish(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(std::move(record));
  ++recorded_total_;
  while (finished_.size() > capacity_) {
    finished_.pop_front();
    ++dropped_total_;
    // Resolved on first eviction, not at construction: the global
    // tracer may outlive static-init ordering guarantees, and the
    // no-eviction hot path should never touch the registry at all.
    if (dropped_counter_ == nullptr) {
      dropped_counter_ = &Registry::global().counter(
          "wadp_trace_dropped_spans_total", {},
          "Finished spans evicted from the bounded span ring");
    }
    static_cast<Counter*>(dropped_counter_)->inc();
  }
}

std::vector<SpanRecord> Tracer::finished() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {finished_.begin(), finished_.end()};
}

std::uint64_t Tracer::recorded_total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_total_;
}

std::uint64_t Tracer::dropped_total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace wadp::obs
