// SLO health monitor: declarative burn-rate rules over recorded rings.
//
// A point-in-time metric cannot distinguish "one shed query" from "a
// shed storm"; an SLO rule over the MetricsRecorder's rings can.  Each
// rule watches one series (optionally as a ratio against a denominator
// series) through a fast/slow window pair, the multi-window burn-rate
// scheme from SRE practice: the fast window catches a violation
// quickly, the slow window confirms it is sustained, and an alert
// fires only when BOTH violate.  Hysteresis (clear_after consecutive
// healthy evaluations) keeps a flapping signal from strobing alerts.
//
// Firing and clearing emit `health.alert` ULM events through the
// EventSink and bump `wadp_health_*` metrics; callers (the flight
// recorder, the CLI) can also hook on_alert for synchronous capture.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/types.hpp"

namespace wadp::obs {

/// Which side of the threshold is unhealthy.
enum class SloDirection {
  kAbove,  ///< violation when value > threshold (error/latency rules)
  kBelow,  ///< violation when value < threshold (hit-rate/join rules)
};

/// One declarative service-level rule.
struct SloRule {
  std::string name;         ///< e.g. "serving.hit_rate" (dotted, stable)
  std::string description;  ///< one line for the `wadp health` table
  std::string series;       ///< recorder series (numerator for ratios)
  std::string denominator;  ///< optional ratio denominator series
  SloDirection direction = SloDirection::kAbove;
  double threshold = 0.0;   ///< the SLO boundary itself
  double fast_window = 0.0;  ///< seconds; catches violations quickly
  double slow_window = 0.0;  ///< seconds; confirms they are sustained
  /// Burn multipliers: the fast window must burn harder than the slow
  /// one to fire (kAbove: value > threshold*burn; kBelow: value <
  /// threshold/burn).  1.0 disables the margin.
  double fast_burn = 1.0;
  double slow_burn = 1.0;
  /// Windows with fewer samples than this are treated as healthy —
  /// a cold ring is absence of evidence, not an outage.
  std::size_t min_samples = 2;
  /// Consecutive healthy evaluations before a firing rule clears.
  std::size_t clear_after = 3;
};

/// Evaluated state of one rule, for the CLI table and `--json`.
struct SloStatus {
  SloRule rule;
  bool firing = false;
  double fast_value = 0.0;   ///< windowed mean over fast_window
  double slow_value = 0.0;   ///< windowed mean over slow_window
  std::size_t fast_samples = 0;
  std::size_t slow_samples = 0;
  std::uint64_t alerts = 0;  ///< lifetime fire transitions
  double last_transition = 0.0;  ///< eval time of the last fire/clear
};

struct HealthConfig {
  /// Where wadp_health_* metrics register; nullptr = Registry::global().
  Registry* registry = nullptr;
  /// Where health.alert events go; nullptr = EventSink::global().
  EventSink* events = nullptr;
};

class HealthMonitor {
 public:
  HealthMonitor(const MetricsRecorder& recorder, HealthConfig config = {});

  void add_rule(SloRule rule);
  void add_rules(std::vector<SloRule> rules);

  /// Evaluates every rule against the rings at time `now`.  Returns the
  /// number of rules that TRANSITIONED to firing this evaluation (not
  /// the number currently firing).
  std::size_t evaluate(double now);

  /// Current state of every rule, in registration order.
  std::vector<SloStatus> status() const;

  std::size_t firing_count() const;
  std::uint64_t evaluations() const { return evaluations_total_.value(); }

  /// Called synchronously on each fire transition (not on clear) —
  /// the flight recorder hangs its capture here.
  void set_on_alert(std::function<void(const SloStatus&, double now)> cb) {
    on_alert_ = std::move(cb);
  }

  /// The built-in rule catalog covering the subsystems the framework
  /// already ships (docs/OBSERVABILITY.md lists each): serving
  /// hit-rate and shed-ratio, WAL fsync p99 and torn frames, retry
  /// exhaustion, quality drift and join rate, net-fabric verify
  /// mismatches.  Windows scale from the scrape interval: fast = 2
  /// intervals, slow = 10.
  static std::vector<SloRule> builtin_rules(double scrape_interval_seconds);

 private:
  struct RuleState {
    SloRule rule;
    bool firing = false;
    std::size_t healthy_streak = 0;
    std::uint64_t alerts = 0;
    double last_transition = 0.0;
  };

  /// Windowed value of `series` (ratio when the rule has a
  /// denominator).  Returns false when there is not enough data.
  bool window_value(const SloRule& rule, double window, double now,
                    double* value, std::size_t* samples) const;

  const MetricsRecorder& recorder_;
  Registry& registry_;
  EventSink& events_;
  Counter& evaluations_total_;
  Gauge& firing_gauge_;
  mutable std::mutex mu_;  ///< guards rules_ (serve evaluates off-thread)
  std::vector<RuleState> rules_;
  std::function<void(const SloStatus&, double)> on_alert_;
};

}  // namespace wadp::obs
