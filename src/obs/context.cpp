#include "obs/context.hpp"

#include <atomic>

namespace wadp::obs {

namespace {
thread_local TraceContext g_current;
std::atomic<std::uint64_t> g_next_trace_id{1};
}  // namespace

TraceContext TraceContext::current() { return g_current; }

std::uint64_t TraceContext::mint() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = saved_; }

SimSpanScope::SimSpanScope(
    std::string name, double sim_now,
    std::vector<std::pair<std::string, std::string>> attrs)
    : outer_(g_current) {
  if (!outer_.active()) return;
  name_ = std::move(name);
  instant_ns_ = sim_ns(sim_now);
  attrs_ = std::move(attrs);
  span_id_ = Tracer::global().allocate_id();
  g_current = TraceContext{outer_.trace_id, span_id_};
}

SimSpanScope::~SimSpanScope() {
  if (span_id_ == 0) return;
  g_current = outer_;
  SpanRecord span;
  span.id = span_id_;
  span.parent = outer_.parent;
  span.trace_id = outer_.trace_id;
  span.name = std::move(name_);
  span.start_ns = instant_ns_;
  span.end_ns = instant_ns_;
  span.attrs = std::move(attrs_);
  Tracer::global().record_full(std::move(span));
}

void SimSpanScope::set_attr(std::string key, std::string value) {
  if (span_id_ == 0) return;
  attrs_.emplace_back(std::move(key), std::move(value));
}

void SimSpanScope::set_attr(std::string key, std::int64_t value) {
  set_attr(std::move(key), std::to_string(value));
}

}  // namespace wadp::obs
