// Exporters: one Registry/Tracer snapshot, three wire formats.
//
//   * Prometheus text exposition (counters/gauges verbatim; histograms
//     as summaries with p50/p90/p99 plus _sum/_count, and cumulative
//     `_bucket{le=...}` lines for the non-empty log-linear buckets).
//   * ULM Keyword=Value lines (metrics and spans as structured events,
//     parseable by util/ulm like the paper's transfer logs).
//   * JSON snapshot — the uniform body of the CI's BENCH_*.json
//     artifacts and of `wadp metrics --json`.
//
// All three are deterministic for a given registry state: families are
// name-sorted, instruments label-sorted (tests/obs keeps golden files).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wadp::obs {

/// Prometheus text exposition format (version 0.0.4).
std::string to_prometheus(const Registry& registry);

/// Every metric as one ULM line: EVNT=metric NAME=... VALUE=... (+ the
/// instrument's labels as upper-cased keys).
std::string metrics_to_ulm(const Registry& registry);

/// Every finished span as one ULM line: EVNT=span NAME=... SPAN=...
/// PARENT=... START.NS=... DUR.NS=... (+ span attributes).
std::string spans_to_ulm(const Tracer& tracer);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, min, max, mean, p50, p90, p99}}}.
std::string to_json(const Registry& registry);

/// Wraps to_json() with bench provenance ({"bench": name, "metrics":
/// ...}) and writes it to `path` — the uniform BENCH_*.json emitter.
Expected<bool> write_bench_json(const std::string& path,
                                const std::string& bench_name,
                                const Registry& registry);

}  // namespace wadp::obs
