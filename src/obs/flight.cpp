#include "obs/flight.hpp"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "util/strings.hpp"
#include "util/ulm.hpp"

namespace wadp::obs {
namespace {

namespace fs = std::filesystem;

std::string number(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "1e999";
  if (v == -std::numeric_limits<double>::infinity()) return "-1e999";
  if (v != v) return "0";  // NaN has no JSON spelling; clamp
  return util::format("%.9g", v);
}

/// Reason string reduced to a filename-safe slug.
std::string slug(const std::string& reason) {
  std::string out;
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "capture";
  return out;
}

/// Writes `body` to `path` atomically: temp file, then rename.  A
/// crash mid-write leaves only the temp, never a torn final file.
Expected<bool> write_atomic(const fs::path& path, const std::string& body) {
  const fs::path temp = path.string() + ".tmp";
  std::FILE* file = std::fopen(temp.string().c_str(), "w");
  if (file == nullptr) {
    return Expected<bool>::failure("cannot open " + temp.string());
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != body.size() || !flushed) {
    std::error_code ec;
    fs::remove(temp, ec);
    return Expected<bool>::failure("short write to " + temp.string());
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    return Expected<bool>::failure("rename " + temp.string() + " -> " +
                                   path.string() + ": " + ec.message());
  }
  return true;
}

}  // namespace

FlightRecorder::FlightRecorder(const MetricsRecorder* recorder,
                               const Tracer* tracer, const EventSink* events,
                               FlightConfig config)
    : config_(std::move(config)),
      recorder_(recorder),
      tracer_(tracer),
      events_(events),
      registry_(config_.registry != nullptr ? *config_.registry
                                            : Registry::global()),
      captures_total_(registry_.counter(
          "wadp_flight_captures_total", {},
          "Flight-recorder bundles written")) {}

Expected<BundleInfo> FlightRecorder::capture(const std::string& reason,
                                             double now) {
  std::lock_guard<std::mutex> lock(mu_);

  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    return Expected<BundleInfo>::failure("cannot create " + config_.dir +
                                         ": " + ec.message());
  }

  BundleInfo info;
  info.seq = ++seq_;
  info.dropped_spans = tracer_ != nullptr ? tracer_->dropped_total() : 0;

  std::string json;
  std::string ulm;
  json += "{\"reason\": \"" + util::json_escape(reason) + "\"";
  json += ", \"time\": " + number(now);
  json += ", \"seq\": " + std::to_string(info.seq);

  {
    util::UlmRecord meta;
    meta.set("EVNT", "flight.meta");
    meta.set("PROG", "wadp.flight");
    meta.set("REASON", reason);
    meta.set_double("TIME", now);
    meta.set_int("SEQ", static_cast<std::int64_t>(info.seq));
    meta.set_int("SPANS.DROPPED",
                 static_cast<std::int64_t>(info.dropped_spans));
    ulm += meta.to_line();
    ulm += "\n";
  }

  // --- Series rings (newest max_points_per_series samples each) ---
  json += ", \"series\": {";
  if (recorder_ != nullptr) {
    bool first_series = true;
    for (const std::string& name : recorder_->series_names()) {
      std::vector<TsSample> samples = recorder_->samples(name);
      if (samples.empty()) continue;
      if (samples.size() > config_.max_points_per_series) {
        samples.erase(samples.begin(),
                      samples.end() - static_cast<std::ptrdiff_t>(
                                          config_.max_points_per_series));
      }
      if (!first_series) json += ", ";
      first_series = false;
      json += "\"" + util::json_escape(name) + "\": [";
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i > 0) json += ", ";
        json += "[" + number(samples[i].time) + ", " +
                number(samples[i].value) + "]";
        util::UlmRecord point;
        point.set("EVNT", "flight.sample");
        point.set("PROG", "wadp.flight");
        point.set("NAME", name);
        point.set_double("TIME", samples[i].time);
        point.set_double("VALUE", samples[i].value, 9);
        ulm += point.to_line();
        ulm += "\n";
      }
      json += "]";
      ++info.series;
      info.points += samples.size();
    }
  }
  json += "}";

  // --- Span ring (newest max_spans) ---
  json += ", \"spans\": [";
  if (tracer_ != nullptr) {
    std::vector<SpanRecord> spans = tracer_->finished();
    if (spans.size() > config_.max_spans) {
      spans.erase(spans.begin(),
                  spans.end() -
                      static_cast<std::ptrdiff_t>(config_.max_spans));
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& span = spans[i];
      if (i > 0) json += ", ";
      json += util::format(
          "{\"id\": %llu, \"parent\": %llu, \"trace\": %llu, "
          "\"name\": \"%s\", \"start_ns\": %llu, \"dur_ns\": %llu}",
          static_cast<unsigned long long>(span.id),
          static_cast<unsigned long long>(span.parent),
          static_cast<unsigned long long>(span.trace_id),
          util::json_escape(span.name).c_str(),
          static_cast<unsigned long long>(span.start_ns),
          static_cast<unsigned long long>(span.duration_ns()));
      util::UlmRecord line;
      line.set("EVNT", "flight.span");
      line.set("PROG", "wadp.flight");
      line.set("NAME", span.name);
      line.set_int("SPAN", static_cast<std::int64_t>(span.id));
      line.set_int("PARENT", static_cast<std::int64_t>(span.parent));
      line.set_int("START.NS", static_cast<std::int64_t>(span.start_ns));
      line.set_int("DUR.NS", static_cast<std::int64_t>(span.duration_ns()));
      ulm += line.to_line();
      ulm += "\n";
    }
    info.spans = spans.size();
  }
  json += "]";

  // --- Self-events (newest max_events, re-tagged for provenance) ---
  json += ", \"events\": [";
  if (events_ != nullptr) {
    std::vector<util::UlmRecord> events = events_->events();
    if (events.size() > config_.max_events) {
      events.erase(events.begin(),
                   events.end() -
                       static_cast<std::ptrdiff_t>(config_.max_events));
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i > 0) json += ", ";
      json += "{";
      const auto& fields = events[i].fields();
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) json += ", ";
        json += "\"" + util::json_escape(fields[f].first) + "\": \"" +
                util::json_escape(fields[f].second) + "\"";
      }
      json += "}";
      ulm += events[i].to_line();
      ulm += "\n";
    }
    info.events = events.size();
  }
  json += "]";

  // --- Quality cells ---
  json += ", \"quality\": [";
  if (quality_ != nullptr) {
    const QualityReport report = quality_->report();
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      const QualityCell& cell = report.cells[i];
      if (i > 0) json += ", ";
      json += util::format(
          "{\"site\": \"%s\", \"predictor\": \"%s\", \"class\": \"%s\", "
          "\"count\": %zu, \"mean_error_pct\": %s, \"drifting\": %s}",
          util::json_escape(cell.site).c_str(),
          util::json_escape(cell.predictor).c_str(),
          util::json_escape(cell.class_label).c_str(), cell.count,
          number(cell.mean_error_pct).c_str(),
          cell.drifting ? "true" : "false");
      util::UlmRecord line;
      line.set("EVNT", "flight.quality");
      line.set("PROG", "wadp.flight");
      line.set("SITE", cell.site);
      line.set("PRED", cell.predictor);
      line.set("CLASS", cell.class_label);
      line.set_int("COUNT", static_cast<std::int64_t>(cell.count));
      line.set_double("ERR.PCT", cell.mean_error_pct);
      line.set("DRIFTING", cell.drifting ? "1" : "0");
      ulm += line.to_line();
      ulm += "\n";
    }
    info.quality_cells = report.cells.size();
  }
  json += "]";

  json += ", \"completeness\": {\"spans_dropped\": " +
          std::to_string(info.dropped_spans) +
          ", \"series_dropped\": " +
          std::to_string(recorder_ != nullptr ? recorder_->dropped_series()
                                              : 0) +
          ", \"points_per_series_limit\": " +
          std::to_string(config_.max_points_per_series) + "}";
  json += "}\n";

  const std::string base =
      "flight-" + std::to_string(info.seq) + "-" + slug(reason);
  const fs::path json_path = fs::path(config_.dir) / (base + ".json");
  const fs::path ulm_path = fs::path(config_.dir) / (base + ".ulm");

  if (Expected<bool> w = write_atomic(json_path, json); !w.ok()) {
    return Expected<BundleInfo>::failure(w.error());
  }
  if (Expected<bool> w = write_atomic(ulm_path, ulm); !w.ok()) {
    return Expected<BundleInfo>::failure(w.error());
  }

  info.json_path = json_path.string();
  info.ulm_path = ulm_path.string();
  info.json_bytes = json.size();
  captures_total_.inc();
  return info;
}

std::uint64_t FlightRecorder::captures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace wadp::obs
