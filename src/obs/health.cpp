#include "obs/health.hpp"

#include <utility>

namespace wadp::obs {
namespace {

/// Effective boundary after the burn multiplier: an above-rule must
/// exceed threshold*burn, a below-rule must drop under threshold/burn.
bool violates(const SloRule& rule, double value, double burn) {
  if (rule.direction == SloDirection::kAbove) {
    return value > rule.threshold * burn;
  }
  const double effective =
      burn > 0.0 ? rule.threshold / burn : rule.threshold;
  return value < effective;
}

}  // namespace

HealthMonitor::HealthMonitor(const MetricsRecorder& recorder,
                             HealthConfig config)
    : recorder_(recorder),
      registry_(config.registry != nullptr ? *config.registry
                                           : Registry::global()),
      events_(config.events != nullptr ? *config.events
                                       : EventSink::global()),
      evaluations_total_(registry_.counter(
          "wadp_health_evaluations_total", {},
          "SLO rule-set evaluation passes")),
      firing_gauge_(registry_.gauge("wadp_health_rules_firing", {},
                                    "SLO rules currently in firing state")) {}

void HealthMonitor::add_rule(SloRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState state;
  state.rule = std::move(rule);
  // Register the per-rule alert counter eagerly so the family shows up
  // in exports (and the metric lint) before any alert ever fires.
  registry_.counter("wadp_health_alerts_total", {{"rule", state.rule.name}},
                    "SLO alert fire transitions");
  rules_.push_back(std::move(state));
}

void HealthMonitor::add_rules(std::vector<SloRule> rules) {
  for (SloRule& rule : rules) add_rule(std::move(rule));
}

bool HealthMonitor::window_value(const SloRule& rule, double window,
                                 double now, double* value,
                                 std::size_t* samples) const {
  const TsWindow num = recorder_.window(rule.series, window, now);
  *samples = num.samples;
  if (num.samples < rule.min_samples) return false;
  if (rule.denominator.empty()) {
    *value = num.mean;
    return true;
  }
  const TsWindow den = recorder_.window(rule.denominator, window, now);
  if (den.samples < rule.min_samples || den.mean <= 0.0) return false;
  *value = num.mean / den.mean;
  return true;
}

std::size_t HealthMonitor::evaluate(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t fired = 0;
  std::size_t firing = 0;
  for (RuleState& state : rules_) {
    const SloRule& rule = state.rule;
    double fast_value = 0.0;
    double slow_value = 0.0;
    std::size_t fast_samples = 0;
    std::size_t slow_samples = 0;
    const bool fast_ok = window_value(rule, rule.fast_window, now,
                                      &fast_value, &fast_samples);
    const bool slow_ok = window_value(rule, rule.slow_window, now,
                                      &slow_value, &slow_samples);
    // Both windows must have data AND violate — the burn-rate pair.
    const bool violating = fast_ok && slow_ok &&
                           violates(rule, fast_value, rule.fast_burn) &&
                           violates(rule, slow_value, rule.slow_burn);

    bool transitioned_to_firing = false;
    if (violating) {
      state.healthy_streak = 0;
      if (!state.firing) {
        state.firing = true;
        ++state.alerts;
        state.last_transition = now;
        transitioned_to_firing = true;
        ++fired;
      }
    } else if (state.firing) {
      if (++state.healthy_streak >= rule.clear_after) {
        state.firing = false;
        state.healthy_streak = 0;
        state.last_transition = now;
        util::UlmRecord record;
        record.set("STATE", "cleared");
        record.set("RULE", rule.name);
        record.set_double("TIME", now);
        events_.emit("health.alert", "wadp.health", std::move(record));
      }
    }
    if (state.firing) ++firing;

    if (transitioned_to_firing) {
      registry_
          .counter("wadp_health_alerts_total", {{"rule", rule.name}})
          .inc();
      util::UlmRecord record;
      record.set("STATE", "firing");
      record.set("RULE", rule.name);
      record.set("SERIES", rule.series);
      record.set_double("TIME", now);
      record.set_double("VALUE.FAST", fast_value);
      record.set_double("VALUE.SLOW", slow_value);
      record.set_double("THRESHOLD", rule.threshold);
      events_.emit("health.alert", "wadp.health", std::move(record));
      if (on_alert_) {
        SloStatus status;
        status.rule = rule;
        status.firing = true;
        status.fast_value = fast_value;
        status.slow_value = slow_value;
        status.fast_samples = fast_samples;
        status.slow_samples = slow_samples;
        status.alerts = state.alerts;
        status.last_transition = state.last_transition;
        on_alert_(status, now);
      }
    }
  }
  evaluations_total_.inc();
  firing_gauge_.set(static_cast<double>(firing));
  return fired;
}

std::vector<SloStatus> HealthMonitor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(rules_.size());
  const double now = recorder_.last_scrape_time();
  for (const RuleState& state : rules_) {
    SloStatus status;
    status.rule = state.rule;
    status.firing = state.firing;
    window_value(state.rule, state.rule.fast_window, now, &status.fast_value,
                 &status.fast_samples);
    window_value(state.rule, state.rule.slow_window, now, &status.slow_value,
                 &status.slow_samples);
    status.alerts = state.alerts;
    status.last_transition = state.last_transition;
    out.push_back(std::move(status));
  }
  return out;
}

std::size_t HealthMonitor::firing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t firing = 0;
  for (const RuleState& state : rules_) {
    if (state.firing) ++firing;
  }
  return firing;
}

std::vector<SloRule> HealthMonitor::builtin_rules(
    double scrape_interval_seconds) {
  const double interval =
      scrape_interval_seconds > 0.0 ? scrape_interval_seconds : 1.0;
  const double fast = 2.0 * interval;
  const double slow = 10.0 * interval;
  auto rate = [](const std::string& key) {
    return MetricsRecorder::rate_series(key);
  };

  std::vector<SloRule> rules;

  {
    SloRule r;
    r.name = "serving.hit_rate";
    r.description = "Serving cache hit rate stays above 50%";
    r.series = rate("wadp_serving_cache_hits_total");
    r.denominator = rate("wadp_serving_queries_total");
    r.direction = SloDirection::kBelow;
    r.threshold = 0.5;
    r.fast_window = fast;
    r.slow_window = slow;
    r.fast_burn = 1.5;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "serving.shed_ratio";
    r.description = "Shed answers stay under 20% of queries";
    r.series = rate("wadp_serving_shed_total");
    r.denominator = rate("wadp_serving_queries_total");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.2;
    r.fast_window = fast;
    r.slow_window = slow;
    r.fast_burn = 1.5;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "wal.fsync_p99";
    r.description = "WAL fsync p99 stays under 50 ms";
    r.series = MetricsRecorder::p99_series("wadp_wal_fsync_seconds");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.05;
    r.fast_window = fast;
    r.slow_window = slow;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "wal.torn_frames";
    r.description = "No torn WAL frames observed";
    r.series = rate("wadp_wal_torn_frames_total");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.0;
    r.fast_window = fast;
    r.slow_window = slow;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "resilience.retry_exhaustion";
    r.description = "Retry exhaustion stays under 0.05/s";
    // Family aggregate: wadp_resilience_retry_exhausted_total is
    // labeled by op, and any op exhausting retries is bad.
    r.series = rate("wadp_resilience_retry_exhausted_total");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.05;
    r.fast_window = fast;
    r.slow_window = slow;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "quality.drift";
    r.description = "No predictor drift detections";
    r.series = rate("wadp_quality_drift_total");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.0;
    r.fast_window = fast;
    r.slow_window = slow;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "quality.join_rate";
    r.description = "Transfers join back to predictions at >= 50%";
    r.series = rate("wadp_quality_joins_total");
    r.denominator = rate("wadp_quality_predictions_total");
    r.direction = SloDirection::kBelow;
    r.threshold = 0.5;
    r.fast_window = fast;
    r.slow_window = slow;
    r.fast_burn = 1.5;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "net.verify_mismatch";
    r.description = "Incremental allocator never diverges from reference";
    r.series = rate("wadp_net_verify_mismatches_total");
    r.direction = SloDirection::kAbove;
    r.threshold = 0.0;
    r.fast_window = fast;
    r.slow_window = slow;
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace wadp::obs
