#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wadp::obs {
namespace {

/// Canonical serialized form of a label set: sorted `k="v"` joined by
/// commas.  Used both as the per-family ordering key and by exporters.
std::string serialize_labels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ",";
    out += key;
    out += "=\"";
    out += value;
    out += "\"";
  }
  return out;
}

}  // namespace

Histogram::Histogram()
    : buckets_(new std::atomic<std::uint64_t>[kBucketCount]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;  // underflow slot
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // in [0.5, 1)
  // Normalize to frac in [1, 2) over octave e = exponent - 1.
  const int octave = exponent - 1;
  if (octave < kMinExponent) return 0;
  if (octave >= kMaxExponent) return kBucketCount - 1;  // overflow slot
  const double frac = mantissa * 2.0;                   // [1, 2)
  auto sub = static_cast<std::size_t>((frac - 1.0) * kSubBuckets);
  sub = std::min<std::size_t>(sub, kSubBuckets - 1);
  return static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets + sub +
         1;
}

double Histogram::bucket_upper_bound(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t linear = index - 1;
  const auto octave =
      static_cast<int>(linear / kSubBuckets) + kMinExponent;
  const auto sub = static_cast<double>(linear % kSubBuckets);
  return std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, octave);
}

void Histogram::record(double value) {
  const std::size_t index = bucket_index(value);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo && !min_.compare_exchange_weak(
                           lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi && !max_.compare_exchange_weak(
                           hi, value, std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  return n ? sum_.load(std::memory_order_relaxed) / static_cast<double>(n)
           : 0.0;
}

std::vector<std::uint64_t> Histogram::snapshot_buckets(
    std::uint64_t* total) const {
  std::vector<std::uint64_t> out(kBucketCount);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
    sum += out[i];
  }
  if (total != nullptr) *total = sum;
  return out;
}

double Histogram::quantile(double q) const {
  WADP_CHECK(q >= 0.0 && q <= 1.0);
  // The rank comes from the snapshot's own total, so the walk is
  // self-consistent even if writers race the export.
  std::uint64_t n = 0;
  const std::vector<std::uint64_t> buckets = snapshot_buckets(&n);
  if (n == 0) return 0.0;
  const double observed_min = min_.load(std::memory_order_relaxed);
  const double observed_max = max_.load(std::memory_order_relaxed);
  // Rank of the target sample, 1-based, linear between extremes.
  const double rank = 1.0 + q * static_cast<double>(n - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto below = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) + 1e-12 < rank) continue;
    // Interpolate inside the landing bucket between its bounds,
    // clamped to the observed min/max so tails stay honest.
    const double lo = std::max(i == 0 ? 0.0 : bucket_upper_bound(i - 1),
                               observed_min);
    const double hi = std::min(bucket_upper_bound(i), observed_max);
    if (!(hi > lo)) return hi;
    const double within =
        (rank - below) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
  }
  return observed_max;
}

std::vector<std::pair<double, std::uint64_t>> Histogram::cumulative_buckets()
    const {
  const std::vector<std::uint64_t> buckets = snapshot_buckets(nullptr);
  std::vector<std::pair<double, std::uint64_t>> out;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    out.emplace_back(bucket_upper_bound(i), cumulative);
  }
  return out;
}

Registry::Cell& Registry::resolve(std::string_view name, Labels labels,
                                  std::string_view help, Kind kind) {
  std::sort(labels.begin(), labels.end());
  std::string label_key = serialize_labels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto family_it = families_.find(name);
  if (family_it == families_.end()) {
    family_it = families_.emplace(std::string(name), FamilyCell{}).first;
    family_it->second.kind = kind;
  }
  FamilyCell& family = family_it->second;
  WADP_CHECK_MSG(family.kind == kind,
                 "metric registered twice with different kinds");
  if (family.help.empty() && !help.empty()) family.help = help;
  for (const auto& cell : family.cells) {
    if (cell->label_key == label_key) return *cell;
  }
  auto cell = std::make_unique<Cell>();
  cell->labels = std::move(labels);
  cell->label_key = std::move(label_key);
  switch (kind) {
    case Kind::kCounter:
      cell->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      cell->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      cell->histogram = std::make_unique<Histogram>();
      break;
  }
  family.cells.push_back(std::move(cell));
  return *family.cells.back();
}

Counter& Registry::counter(std::string_view name, Labels labels,
                           std::string_view help) {
  return *resolve(name, std::move(labels), help, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels,
                       std::string_view help) {
  return *resolve(name, std::move(labels), help, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels,
                               std::string_view help) {
  return *resolve(name, std::move(labels), help, Kind::kHistogram).histogram;
}

std::vector<Registry::Family> Registry::families() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Family> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    Family exported;
    exported.name = name;
    exported.help = family.help;
    exported.kind = family.kind;
    std::vector<const Cell*> cells;
    cells.reserve(family.cells.size());
    for (const auto& cell : family.cells) cells.push_back(cell.get());
    std::sort(cells.begin(), cells.end(), [](const Cell* a, const Cell* b) {
      return a->label_key < b->label_key;
    });
    for (const Cell* cell : cells) {
      exported.instruments.push_back(Instrument{.labels = cell->labels,
                                                .counter = cell->counter.get(),
                                                .gauge = cell->gauge.get(),
                                                .histogram =
                                                    cell->histogram.get()});
    }
    out.push_back(std::move(exported));
  }
  return out;
}

// Build identity baked in by src/obs/CMakeLists.txt; the fallbacks keep
// non-CMake tooling (IDEs, single-file checks) compiling.
#ifndef WADP_VERSION
#define WADP_VERSION "unknown"
#endif
#ifndef WADP_GIT_SHA
#define WADP_GIT_SHA "unknown"
#endif
#ifndef WADP_BUILD_TYPE
#define WADP_BUILD_TYPE "unknown"
#endif

Registry& Registry::global() {
  static Registry registry;
  // Constant 1-valued gauge carrying build identity as labels — the
  // Prometheus "info metric" idiom — registered on first use so every
  // export format shows it without call-site wiring.
  static const bool build_info_registered = [] {
    registry
        .gauge("wadp_build_info",
               {{"version", WADP_VERSION},
                {"git_sha", WADP_GIT_SHA},
                {"build_type", WADP_BUILD_TYPE}},
               "Build identity (constant 1; labels carry the facts)")
        .set(1.0);
    return true;
  }();
  (void)build_info_registered;
  return registry;
}

}  // namespace wadp::obs
