// Flight recorder: bounded post-mortem bundles for staged incidents.
//
// When an SLO alert fires (or an operator asks), the interesting state
// is about to scroll out of the rings: the minutes of series history
// leading into the violation, the span ring, the self-event log, and
// the quality cells.  The FlightRecorder freezes all four into one
// bundle — a JSON file for tooling and an ULM file whose lines
// round-trip through util/ulm, the same dual form every other wadp
// artifact uses — written atomically via temp+rename so a crash
// mid-capture never leaves a half bundle for the post-mortem reader.
//
// Bundles are bounded (points per series, span count, event count) and
// state their own completeness: the tracer's dropped-span count and
// the recorder's dropped-series count ride in the meta section, so a
// reader knows whether "no span" means "did not happen" or "evicted".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wadp::obs {

struct FlightConfig {
  std::string dir = "flight";  ///< bundles land here (created on demand)
  /// Newest samples kept per series in the bundle.
  std::size_t max_points_per_series = 64;
  std::size_t max_spans = 256;
  std::size_t max_events = 512;
  /// Registry for wadp_flight_* metrics; nullptr = Registry::global().
  Registry* registry = nullptr;
};

/// What one capture wrote, for the CLI and the bench gates.
struct BundleInfo {
  std::string json_path;
  std::string ulm_path;
  std::uint64_t seq = 0;
  std::size_t series = 0;
  std::size_t points = 0;
  std::size_t spans = 0;
  std::size_t events = 0;
  std::size_t quality_cells = 0;
  std::uint64_t dropped_spans = 0;  ///< tracer evictions at capture time
  std::size_t json_bytes = 0;
};

class FlightRecorder {
 public:
  /// Any source may be null — the bundle simply omits that section.
  FlightRecorder(const MetricsRecorder* recorder, const Tracer* tracer,
                 const EventSink* events, FlightConfig config = {});

  /// Attaches the quality plane (lives in a higher layer, hence late
  /// binding rather than a constructor argument).
  void set_quality(const QualityTracker* quality) { quality_ = quality; }

  /// Dumps one bundle stamped `now`, tagged with `reason` (an alert
  /// rule name or "manual").  Returns what was written, or the first
  /// filesystem error.
  Expected<BundleInfo> capture(const std::string& reason, double now);

  std::uint64_t captures() const;
  const FlightConfig& config() const { return config_; }

 private:
  FlightConfig config_;
  const MetricsRecorder* recorder_;
  const Tracer* tracer_;
  const EventSink* events_;
  const QualityTracker* quality_ = nullptr;
  Registry& registry_;
  Counter& captures_total_;

  mutable std::mutex mu_;  ///< serializes captures; seq_ under it
  std::uint64_t seq_ = 0;
};

}  // namespace wadp::obs
