// Metrics registry: counters, gauges, and log-linear histograms.
//
// The paper's contribution is instrumentation of *transfers*; this
// module instruments the framework itself (ingest rates, prediction
// latency, fallback counts, MDS query volume) so scaling work has a
// measurement substrate.  Design:
//
//   * Instruments are registered once by (name, labels) and live for
//     the registry's lifetime, so call sites cache a reference and the
//     hot path is lock-free: Counter::inc is a single relaxed atomic
//     add (<50 ns, see bench_obs_overhead), Gauge::set a relaxed
//     store, Histogram::record a relaxed per-bucket add plus CAS
//     moment updates.  Only registration takes a lock.
//   * Histograms use log-linear buckets (HdrHistogram-style): one
//     power-of-two octave split into 16 linear sub-buckets, giving
//     quantile estimates with <= ~6% relative error over the full
//     double range, in constant memory, with no per-sample storage.
//
// Naming follows Prometheus conventions (docs/OBSERVABILITY.md):
// snake_case, unit suffix, `_total` for counters; label values are
// low-cardinality (site, op, engine — never file names or IPs).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace wadp::obs {

/// Label set for one instrument, e.g. {{"op", "read"}, {"site", "lbl"}}.
/// Canonicalized (sorted by key) at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.  Lock-free; safe to increment from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.  Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear-bucket histogram with streaming moments.  record() is
/// lock-free: one relaxed fetch_add on the landing bucket plus CAS
/// loops for sum/min/max, so concurrent writers never serialize and
/// the path stays TSan-clean.  Readers (quantiles, exports) snapshot
/// the buckets with relaxed loads; under concurrent writes a snapshot
/// is approximate by design — each sample is eventually visible, and a
/// quiesced histogram reads exactly.
class Histogram {
 public:
  /// 16 linear sub-buckets per power-of-two octave.
  static constexpr int kSubBuckets = 16;
  /// Octaves covered: 2^-64 .. 2^64 (values outside clamp to the ends).
  static constexpr int kMinExponent = -64;
  static constexpr int kMaxExponent = 64;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 2;

  Histogram();

  /// Records one sample.  Non-positive samples land in the underflow
  /// bucket (quantiles treat them as 0) but still feed min/max/mean.
  void record(double value);

  std::size_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;

  /// Quantile estimate, q in [0,1]: walks the cumulative bucket counts
  /// and interpolates linearly inside the landing bucket.  0 when empty.
  double quantile(double q) const;

  /// Bucket index for `value` (exposed for the accuracy tests).
  static std::size_t bucket_index(double value);
  /// Inclusive upper bound of bucket `index`.
  static double bucket_upper_bound(std::size_t index);

  /// Non-empty buckets as (upper_bound, cumulative_count), for the
  /// Prometheus exposition.  Snapshot under the lock.
  std::vector<std::pair<double, std::uint64_t>> cumulative_buckets() const;

 private:
  /// Relaxed snapshot of the bucket array plus its total, so quantile
  /// math and the cumulative walk agree on one view.
  std::vector<std::uint64_t> snapshot_buckets(std::uint64_t* total) const;

  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf when empty
  std::atomic<double> max_;  // -inf when empty
};

/// Registry: owns instruments keyed by (name, labels).  Lookups lock;
/// returned references stay valid for the registry's lifetime, so call
/// sites resolve once and increment forever.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = "");
  Histogram& histogram(std::string_view name, Labels labels = {},
                       std::string_view help = "");

  enum class Kind { kCounter, kGauge, kHistogram };

  /// One registered instrument, for exporters.
  struct Instrument {
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// One metric family: every instrument sharing a name (and kind).
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Instrument> instruments;  // label-sorted
  };

  /// Name-sorted snapshot of every family (deterministic exports).
  std::vector<Family> families() const;

  /// Process-wide registry the wired-in call sites use.
  static Registry& global();

 private:
  struct Cell {
    Labels labels;
    std::string label_key;  // canonical serialized labels, for ordering
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct FamilyCell {
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<std::unique_ptr<Cell>> cells;
  };

  Cell& resolve(std::string_view name, Labels labels, std::string_view help,
                Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, FamilyCell, std::less<>> families_;
};

}  // namespace wadp::obs
