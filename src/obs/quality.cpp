#include "obs/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

namespace wadp::obs {

namespace {

constexpr const char* kErrorHelp =
    "Normalized percent error of served predictions vs measured bandwidth";
constexpr const char* kDriftHelp =
    "Page-Hinkley error-mean-shift alarms per (site, predictor)";

}  // namespace

double QualityReport::join_rate() const {
  const std::uint64_t scored = joins() + join_misses;
  if (scored == 0) return 1.0;
  return static_cast<double>(joins()) / static_cast<double>(scored);
}

void QualityTracker::Detector::reset() {
  n = 0;
  mean = 0.0;
  cum = 0.0;
  cum_min = 0.0;
}

bool QualityTracker::Detector::update(double x, const QualityConfig& config) {
  ++n;
  mean += (x - mean) / static_cast<double>(n);
  cum += x - mean - config.ph_delta;
  cum_min = std::min(cum_min, cum);
  return n >= config.min_observations && cum - cum_min > config.ph_lambda;
}

QualityTracker::QualityTracker(QualityConfig config)
    : config_(std::move(config)),
      registry_(config_.registry != nullptr ? *config_.registry
                                            : Registry::global()),
      events_(config_.events != nullptr ? *config_.events
                                        : EventSink::global()),
      predictions_total_(registry_.counter(
          "wadp_quality_predictions_total", {},
          "Served predictions remembered for an accuracy join")),
      joins_trace_total_(registry_.counter(
          "wadp_quality_joins_total", {{"method", "trace"}},
          "Completed transfers joined against their served prediction")),
      joins_fallback_total_(registry_.counter("wadp_quality_joins_total",
                                              {{"method", "fallback"}})),
      join_misses_total_(registry_.counter(
          "wadp_quality_join_misses_total", {},
          "Scoreable transfers with no matching served prediction")),
      skipped_total_(registry_.counter(
          "wadp_quality_skipped_total", {},
          "Failed or zero-duration transfers not scored")) {}

void QualityTracker::record_prediction(const ServedPrediction& prediction) {
  predictions_total_.inc();
  const std::lock_guard<std::mutex> lock(mu_);
  if (prediction.trace_id == 0) {
    unkeyed_.push_back(prediction);
    if (unkeyed_.size() > config_.ledger_capacity) unkeyed_.pop_front();
    return;
  }
  auto [it, inserted] = ledger_.try_emplace(prediction.trace_id);
  it->second.push_back(prediction);
  if (inserted) {
    ledger_order_.push_back(prediction.trace_id);
    evict_locked();
  }
}

void QualityTracker::evict_locked() {
  while (ledger_order_.size() > config_.ledger_capacity) {
    ledger_.erase(ledger_order_.front());
    ledger_order_.pop_front();
  }
}

void QualityTracker::observe_transfer(const gridftp::TransferRecord& record) {
  // A failed attempt measures the outage, not the predictor; a
  // zero-duration record has no defined bandwidth.
  if (!record.ok || !(record.total_time() > 0.0) || record.file_size == 0) {
    skipped_total_.inc();
    return;
  }
  const int cls = config_.classifier.classify(record.file_size);

  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServedPrediction> matched;
  const char* method = "trace";
  if (record.trace_id != 0) {
    auto it = ledger_.find(record.trace_id);
    if (it != ledger_.end()) {
      // Claim every prediction served for this site and size class
      // under the trace (predict_all answers once per predictor); the
      // whole trace entry retires with its transfer.
      for (const ServedPrediction& p : it->second) {
        if (p.site == record.host &&
            config_.classifier.classify(p.file_size) == cls) {
          matched.push_back(p);
        }
      }
      if (!matched.empty()) ledger_.erase(it);
    }
  }
  if (matched.empty()) {
    // Temporal fallback: nearest untraced prediction for the same
    // (site, size class) within the window.
    method = "fallback";
    auto best = unkeyed_.end();
    double best_dt = config_.fallback_window;
    for (auto it = unkeyed_.begin(); it != unkeyed_.end(); ++it) {
      if (it->site != record.host) continue;
      if (config_.classifier.classify(it->file_size) != cls) continue;
      const double dt = std::abs(record.start_time - it->time);
      if (dt <= best_dt) {
        best_dt = dt;
        best = it;
      }
    }
    if (best != unkeyed_.end()) {
      matched.push_back(*best);
      unkeyed_.erase(best);
    }
  }
  if (matched.empty()) {
    join_misses_total_.inc();
    return;
  }
  (method[0] == 't' ? joins_trace_total_ : joins_fallback_total_).inc();
  for (const ServedPrediction& p : matched) score(p, record, cls, method);
}

void QualityTracker::score(const ServedPrediction& prediction,
                           const gridftp::TransferRecord& record,
                           int size_class, const char* /*method*/) {
  const double error =
      util::percent_error(record.bandwidth(), prediction.value);

  auto cell_it =
      cells_.find(std::tie(prediction.site, prediction.predictor, size_class));
  if (cell_it == cells_.end()) {
    cell_it = cells_
                  .try_emplace(CellKey{prediction.site, prediction.predictor,
                                       size_class})
                  .first;
  }
  CellStats& cell = cell_it->second;
  if (cell.histogram == nullptr) {
    cell.histogram = &registry_.histogram(
        "wadp_quality_error_pct",
        {{"site", prediction.site},
         {"predictor", prediction.predictor},
         {"class", config_.classifier.class_label(size_class)}},
        kErrorHelp);
  }
  cell.stats.add(error);
  cell.histogram->record(error);

  auto detector_it =
      detectors_.find(std::tie(prediction.site, prediction.predictor));
  if (detector_it == detectors_.end()) {
    detector_it =
        detectors_.try_emplace(PairKey{prediction.site, prediction.predictor})
            .first;
  }
  Detector& detector = detector_it->second;
  if (detector.drifting) {
    // Demotion window: the detector stays quiet until the cooldown
    // expires, then restarts against the new error regime.
    if (detector.cooldown_left > 0) --detector.cooldown_left;
    if (detector.cooldown_left == 0) detector.drifting = false;
    return;
  }
  if (detector.update(error, config_)) {
    ++drift_events_;
    registry_
        .counter("wadp_quality_drift_total",
                 {{"site", prediction.site},
                  {"predictor", prediction.predictor}},
                 kDriftHelp)
        .inc();
    util::UlmRecord event;
    event.set("SITE", prediction.site);
    event.set("PREDICTOR", prediction.predictor);
    event.set_double("MEAN", detector.mean, 3);
    event.set_double("VALUE", error, 3);
    event.set_int("N", static_cast<std::int64_t>(detector.n));
    events_.emit("quality.drift", "wadp.quality", std::move(event));
    detector.drifting = true;
    detector.cooldown_left = config_.drift_cooldown;
    detector.reset();
  }
}

bool QualityTracker::drifting(const std::string& site,
                              const std::string& predictor) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = detectors_.find(std::tie(site, predictor));
  return it != detectors_.end() && it->second.drifting;
}

std::optional<double> QualityTracker::mean_error(
    const std::string& site, const std::string& predictor) const {
  const std::lock_guard<std::mutex> lock(mu_);
  double weighted = 0.0;
  std::size_t total = 0;
  // Cells are keyed (site, predictor, class); the map is ordered, so
  // every class of the pair sits in one contiguous range.
  const int lowest_class = std::numeric_limits<int>::min();
  for (auto it = cells_.lower_bound(std::tie(site, predictor, lowest_class));
       it != cells_.end(); ++it) {
    const auto& [cell_site, cell_predictor, cls] = it->first;
    if (cell_site != site || cell_predictor != predictor) break;
    weighted += it->second.stats.mean() *
                static_cast<double>(it->second.stats.count());
    total += it->second.stats.count();
  }
  if (total == 0) return std::nullopt;
  return weighted / static_cast<double>(total);
}

bool QualityTracker::site_drifting(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, detector] : detectors_) {
    if (std::get<0>(key) == site && detector.drifting) return true;
  }
  return false;
}

QualityReport QualityTracker::report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  QualityReport out;
  out.predictions = predictions_total_.value();
  out.joins_trace = joins_trace_total_.value();
  out.joins_fallback = joins_fallback_total_.value();
  out.join_misses = join_misses_total_.value();
  out.skipped = skipped_total_.value();
  out.drift_events = drift_events_;
  out.cells.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    QualityCell exported;
    exported.site = std::get<0>(key);
    exported.predictor = std::get<1>(key);
    exported.size_class = std::get<2>(key);
    exported.class_label = config_.classifier.class_label(exported.size_class);
    exported.count = cell.stats.count();
    exported.mean_error_pct = cell.stats.mean();
    exported.stddev_error_pct = cell.stats.stddev();
    exported.min_error_pct = cell.stats.min();
    exported.max_error_pct = cell.stats.max();
    const auto detector =
        detectors_.find(std::tie(exported.site, exported.predictor));
    exported.drifting =
        detector != detectors_.end() && detector->second.drifting;
    out.cells.push_back(std::move(exported));
  }
  return out;
}

}  // namespace wadp::obs
