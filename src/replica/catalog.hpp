// Replica catalog: logical file name -> physical replica locations.
//
// The paper's motivating problem (Section 1) is replica selection in a
// tiered Data Grid where any data set "is likely to have replicas
// located at multiple sites".  The catalog is the naming layer the
// broker consults before asking the information service which location
// will transfer fastest.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wadp::replica {

struct PhysicalReplica {
  std::string site;         ///< topology site name ("lbl")
  std::string server_host;  ///< GridFTP host ("dpsslx04.lbl.gov")
  std::string path;         ///< file path on that server

  bool operator==(const PhysicalReplica&) const = default;
};

class ReplicaCatalog {
 public:
  /// Registers a replica of `logical_name`.  Duplicate (site, path)
  /// registrations are ignored.
  void add_replica(const std::string& logical_name, PhysicalReplica replica);

  bool remove_replica(const std::string& logical_name,
                      const PhysicalReplica& replica);

  /// All replicas of the logical file (empty span when unknown).
  std::span<const PhysicalReplica> replicas(
      const std::string& logical_name) const;

  std::vector<std::string> logical_names() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::vector<PhysicalReplica>> entries_;
};

}  // namespace wadp::replica
