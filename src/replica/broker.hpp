// Replica selection broker.
//
// Closes the paper's loop: a broker acting for a client (1) resolves a
// logical file through the catalog, (2) inquires at the GIIS for
// GridFTPPerfInfo entries describing past transfers from each candidate
// site to this client, (3) reads the published per-size-class
// prediction, and (4) picks the replica with the highest predicted
// bandwidth.  Baseline policies (random, round-robin, first) exist so
// benchmarks can quantify what prediction buys — the comparison behind
// the paper's claim that replica selection benefits from performance
// information (Section 1, citing [41]).
#pragma once

#include <optional>
#include <algorithm>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "mds/filter.hpp"

#include "history/store.hpp"
#include "mds/giis.hpp"
#include "mds/gridftp_provider.hpp"
#include "obs/quality.hpp"
#include "predict/classifier.hpp"
#include "replica/catalog.hpp"
#include "resilience/failover.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wadp::replica {

enum class SelectionPolicy {
  kPredictedBest,  ///< highest published predicted bandwidth
  kRandom,         ///< uniform choice (baseline)
  kRoundRobin,     ///< rotate through replicas (baseline)
  kFirst,          ///< always the first registered replica (baseline)
};

const char* to_string(SelectionPolicy policy);

struct Selection {
  PhysicalReplica replica;
  /// Predicted bandwidth backing the choice (bytes/s); nullopt for
  /// baselines and for predictive choices made without any data.
  std::optional<Bandwidth> predicted_bandwidth;
  /// True when the predictive policy had usable predictions; false
  /// means it fell back to the first replica.
  bool informed = false;
  /// True when the raw top-bandwidth candidate was passed over because
  /// its (site, predictor) pair is drifting (quality plane demotion).
  bool drift_demoted = false;
};

class ReplicaBroker {
 public:
  ReplicaBroker(const ReplicaCatalog& catalog, mds::Giis& giis,
                SelectionPolicy policy, std::uint64_t seed = 1,
                predict::SizeClassifier classifier =
                    predict::SizeClassifier::paper_classes());

  /// Chooses a replica for `client_ip` to fetch `logical_name` of
  /// `size` bytes at time `now`.  `exclude` lists replicas to skip
  /// (failover: pass the ones that just returned 421).  nullopt when no
  /// eligible replica remains.
  std::optional<Selection> select(const std::string& logical_name,
                                  const std::string& client_ip, Bytes size,
                                  SimTime now,
                                  std::span<const PhysicalReplica> exclude = {});

  /// One candidate's predicted bandwidth: GIIS inquiry first, history
  /// fallback second — exactly the estimate select() ranks on, exposed
  /// so the serving plane (src/serving/) can fill its prediction cache
  /// without running a full selection.  No side effects on cooldowns or
  /// the quality plane.  Not thread-safe (the GIIS itself is not);
  /// serving serializes its fill path.
  std::optional<Bandwidth> predict_candidate(const PhysicalReplica& replica,
                                             const std::string& client_ip,
                                             Bytes size, SimTime now);

  SelectionPolicy policy() const { return policy_; }

  /// Failover feedback: a failed fetch from `replica` puts its server
  /// into cooldown (growing exponentially with consecutive failures); a
  /// success clears the streak.  select() skips replicas in cooldown —
  /// unless every remaining candidate is cooling, in which case the
  /// cooldown is overridden (a cooling replica beats none at all).
  void record_failure(const PhysicalReplica& replica, SimTime now);
  void record_success(const PhysicalReplica& replica);
  const resilience::CooldownTracker& cooldowns() const { return cooldowns_; }

  /// Optional fallback source: when the GIIS has no usable entry for a
  /// candidate (provider not yet refreshed, registration lapsed), the
  /// broker reads the history plane directly — a snapshot of
  /// {host = replica server, remote_ip = client, op = read} — and
  /// predicts with the same classified last-N mean the provider
  /// publishes.  The store must outlive the broker.
  void bind_history(const history::HistoryStore* history) {
    history_ = history;
  }

  /// Optional quality plane: when bound, (1) every candidate prediction
  /// is recorded as a ServedPrediction under the ambient trace id so
  /// the tracker can join it against the eventual transfer, and (2)
  /// kPredictedBest demotes candidates whose (site, predictor) pair is
  /// currently drifting — a non-drifting informed alternative wins even
  /// at lower predicted bandwidth.  The tracker must outlive the broker.
  void bind_quality(obs::QualityTracker* quality) { quality_ = quality; }

  /// Name the quality plane files this broker's served predictions
  /// under (and checks drift against).  The broker's ranking input is
  /// the provider's classified last-15 mean, i.e. AVG15/fs — the
  /// default — but a deployment arbitrating the regression battery can
  /// point ranking at the challenger (e.g. "MREG25/fs") so demotions
  /// track the battery actually serving.
  void set_ranking_predictor(std::string name) {
    ranking_predictor_ = std::move(name);
  }
  const std::string& ranking_predictor() const { return ranking_predictor_; }

 private:
  std::optional<Bandwidth> predicted_for(const PhysicalReplica& replica,
                                         const std::string& client_ip,
                                         Bytes size, SimTime now);
  std::optional<Bandwidth> predicted_from_history(
      const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
      SimTime now) const;

  /// Memoized inquiry filter for (client, server).  Inquiry used to
  /// format, escape, and re-parse the filter text on every candidate of
  /// every select() — pure allocation churn, since the AST depends only
  /// on the two strings.  Built once via Filter::equals/all_of (no text
  /// round-trip) and cached; the memo is cleared if it ever reaches
  /// `kFilterMemoCap` entries (fleet pairs are few; churn implies a
  /// synthetic sweep that would not re-use them anyway).  The memo has
  /// its own mutex — a transfer-feedback thread calling select() can
  /// overlap the serving frontend's fill path — and hands out
  /// shared_ptrs so a cap-triggered clear never invalidates a filter a
  /// caller is still searching with.
  std::shared_ptr<const mds::Filter> inquiry_filter(
      const std::string& client_ip, const std::string& server_host);

  const ReplicaCatalog& catalog_;
  mds::Giis& giis_;
  const history::HistoryStore* history_ = nullptr;
  obs::QualityTracker* quality_ = nullptr;
  SelectionPolicy policy_;
  std::string ranking_predictor_ = "AVG15/fs";
  util::Rng rng_;
  predict::SizeClassifier classifier_;
  std::size_t round_robin_next_ = 0;
  resilience::CooldownTracker cooldowns_;
  std::mutex filter_mu_;  ///< guards filter_memo_ (off the GIIS hit path)
  std::unordered_map<std::string, std::shared_ptr<const mds::Filter>>
      filter_memo_;
};

}  // namespace wadp::replica
