#include "replica/fetcher.hpp"

#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/ulm.hpp"

namespace wadp::replica {

struct FailoverFetcher::FetchState {
  std::string logical_name;
  Bytes size = 0;
  FetchOptions options;
  FetchCallback callback;
  FetchOutcome outcome;
};

FailoverFetcher::FailoverFetcher(sim::Simulator& sim, ReplicaBroker& broker,
                                 gridftp::GridFtpClient& client,
                                 ServerResolver resolver)
    : sim_(sim),
      broker_(broker),
      client_(client),
      resolver_(std::move(resolver)) {}

void FailoverFetcher::fetch(std::string logical_name, Bytes size,
                            FetchOptions options, FetchCallback callback) {
  auto state = std::make_shared<FetchState>();
  state->logical_name = std::move(logical_name);
  state->size = size;
  state->options = std::move(options);
  state->callback = std::move(callback);
  try_next(state);
}

void FailoverFetcher::try_next(const std::shared_ptr<FetchState>& state) {
  const auto deliver = [&state] {
    if (state->callback) state->callback(state->outcome);
    state->callback = nullptr;
  };

  if (state->options.max_replicas > 0 &&
      state->outcome.failed.size() >= state->options.max_replicas) {
    state->outcome.ok = false;
    if (state->outcome.error.empty()) {
      state->outcome.error = "replica budget exhausted";
    }
    deliver();
    return;
  }

  const auto selection =
      broker_.select(state->logical_name, client_.ip(), state->size,
                     sim_.now(), state->outcome.failed);
  if (!selection) {
    state->outcome.ok = false;
    if (state->outcome.error.empty()) {
      state->outcome.error = "no replica available for " + state->logical_name;
    }
    deliver();
    return;
  }
  state->outcome.selection = selection;

  gridftp::GridFtpServer* server = resolver_(selection->replica);
  if (server == nullptr) {
    // Catalog/deployment mismatch; treat exactly like a failed replica
    // so the loop keeps moving.
    replica_failed(state, selection->replica,
                   "no server for replica " + selection->replica.server_host);
    try_next(state);
    return;
  }

  client_.get(*server, selection->replica.path, state->options.transfer,
              [this, state, replica = selection->replica](
                  const gridftp::TransferOutcome& outcome) {
                state->outcome.transfer = outcome;
                if (outcome.ok) {
                  broker_.record_success(replica);
                  state->outcome.ok = true;
                  state->outcome.error.clear();
                  if (state->callback) state->callback(state->outcome);
                  state->callback = nullptr;
                  return;
                }
                replica_failed(state, replica, outcome.error);
                try_next(state);
              });
}

void FailoverFetcher::replica_failed(const std::shared_ptr<FetchState>& state,
                                     const PhysicalReplica& replica,
                                     std::string error) {
  broker_.record_failure(replica, sim_.now());
  state->outcome.failed.push_back(replica);
  ++state->outcome.failovers;
  state->outcome.error = error;

  obs::Registry::global()
      .counter("wadp_resilience_failovers_total", {},
               "Replicas abandoned in favour of the next-best candidate")
      .inc();
  util::UlmRecord event;
  event.set("LOGICAL", state->logical_name);
  event.set("HOST", replica.server_host);
  event.set("ERROR", std::move(error));
  obs::EventSink::global().emit("resilience.failover", "replica.fetcher",
                                std::move(event));
}

}  // namespace wadp::replica
