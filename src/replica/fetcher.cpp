#include "replica/fetcher.hpp"

#include <utility>

#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ulm.hpp"

namespace wadp::replica {

struct FailoverFetcher::FetchState {
  std::string logical_name;
  Bytes size = 0;
  FetchOptions options;
  FetchCallback callback;
  FetchOutcome outcome;
  // Trace bookkeeping: the root "fetch" span is recorded at delivery,
  // so its id is reserved up front for children to parent under.
  std::uint64_t trace_id = 0;
  obs::SpanId root_span = 0;
  obs::SpanId outer_parent = 0;
  SimTime started = 0.0;
};

FailoverFetcher::FailoverFetcher(sim::Simulator& sim, ReplicaBroker& broker,
                                 gridftp::GridFtpClient& client,
                                 ServerResolver resolver)
    : sim_(sim),
      broker_(broker),
      client_(client),
      resolver_(std::move(resolver)) {}

void FailoverFetcher::fetch(std::string logical_name, Bytes size,
                            FetchOptions options, FetchCallback callback) {
  auto state = std::make_shared<FetchState>();
  state->logical_name = std::move(logical_name);
  state->size = size;
  state->options = std::move(options);
  state->callback = std::move(callback);
  // Adopt the caller's trace when one is active (a CLI verb or test
  // already opened one); otherwise this fetch is the request entry
  // point and mints its own.
  const auto ambient = obs::TraceContext::current();
  state->trace_id =
      ambient.active() ? ambient.trace_id : obs::TraceContext::mint();
  state->outer_parent = ambient.parent;
  state->root_span = obs::Tracer::global().allocate_id();
  state->started = sim_.now();
  state->outcome.trace_id = state->trace_id;
  try_next(state);
}

void FailoverFetcher::try_next(const std::shared_ptr<FetchState>& state) {
  // Everything downstream of here — broker selection (and its MDS
  // searches), the client attempt loop, history ingest — parents under
  // the fetch root span.
  const obs::ScopedTraceContext trace_scope(state->trace_id,
                                            state->root_span);

  if (state->options.max_replicas > 0 &&
      state->outcome.failed.size() >= state->options.max_replicas) {
    state->outcome.ok = false;
    if (state->outcome.error.empty()) {
      state->outcome.error = "replica budget exhausted";
    }
    deliver(state);
    return;
  }

  const auto selection =
      broker_.select(state->logical_name, client_.ip(), state->size,
                     sim_.now(), state->outcome.failed);
  if (!selection) {
    state->outcome.ok = false;
    if (state->outcome.error.empty()) {
      state->outcome.error = "no replica available for " + state->logical_name;
    }
    deliver(state);
    return;
  }
  state->outcome.selection = selection;

  gridftp::GridFtpServer* server = resolver_(selection->replica);
  if (server == nullptr) {
    // Catalog/deployment mismatch; treat exactly like a failed replica
    // so the loop keeps moving.
    replica_failed(state, selection->replica,
                   "no server for replica " + selection->replica.server_host);
    try_next(state);
    return;
  }

  client_.get(*server, selection->replica.path, state->options.transfer,
              [this, state, replica = selection->replica](
                  const gridftp::TransferOutcome& outcome) {
                // Completion runs from a simulator callback; re-install
                // the fetch's context so failover re-selection and
                // delivery stay on this trace.
                const obs::ScopedTraceContext scope(state->trace_id,
                                                    state->root_span);
                state->outcome.transfer = outcome;
                if (outcome.ok) {
                  broker_.record_success(replica);
                  state->outcome.ok = true;
                  state->outcome.error.clear();
                  deliver(state);
                  return;
                }
                replica_failed(state, replica, outcome.error);
                try_next(state);
              });
}

void FailoverFetcher::deliver(const std::shared_ptr<FetchState>& state) {
  if (!state->callback) return;
  obs::SpanRecord span;
  span.id = state->root_span;
  span.parent = state->outer_parent;
  span.trace_id = state->trace_id;
  span.name = "fetch";
  span.start_ns = obs::sim_ns(state->started);
  span.end_ns = obs::sim_ns(sim_.now());
  span.attrs.emplace_back("LOGICAL", state->logical_name);
  span.attrs.emplace_back("RESULT", state->outcome.ok ? "ok" : "fail");
  span.attrs.emplace_back("FAILOVERS",
                          std::to_string(state->outcome.failovers));
  obs::Tracer::global().record_full(std::move(span));
  auto callback = std::move(state->callback);
  state->callback = nullptr;
  callback(state->outcome);
}

void FailoverFetcher::replica_failed(const std::shared_ptr<FetchState>& state,
                                     const PhysicalReplica& replica,
                                     std::string error) {
  broker_.record_failure(replica, sim_.now());
  state->outcome.failed.push_back(replica);
  ++state->outcome.failovers;
  state->outcome.error = error;

  obs::Registry::global()
      .counter("wadp_resilience_failovers_total", {},
               "Replicas abandoned in favour of the next-best candidate")
      .inc();
  util::UlmRecord event;
  event.set("LOGICAL", state->logical_name);
  event.set("HOST", replica.server_host);
  event.set("ERROR", std::move(error));
  obs::EventSink::global().emit("resilience.failover", "replica.fetcher",
                                std::move(event));
}

}  // namespace wadp::replica
