#include "replica/broker.hpp"

#include <utility>

#include "mds/filter.hpp"
#include "obs/context.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/ulm.hpp"

namespace wadp::replica {

const char* to_string(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kPredictedBest:
      return "predicted-best";
    case SelectionPolicy::kRandom:
      return "random";
    case SelectionPolicy::kRoundRobin:
      return "round-robin";
    case SelectionPolicy::kFirst:
      return "first";
  }
  return "?";
}

ReplicaBroker::ReplicaBroker(const ReplicaCatalog& catalog, mds::Giis& giis,
                             SelectionPolicy policy, std::uint64_t seed,
                             predict::SizeClassifier classifier)
    : catalog_(catalog),
      giis_(giis),
      policy_(policy),
      rng_(seed),
      classifier_(std::move(classifier)) {}

std::shared_ptr<const mds::Filter> ReplicaBroker::inquiry_filter(
    const std::string& client_ip, const std::string& server_host) {
  // One reusable key buffer: lookups dominate (a fleet has few
  // (client, server) pairs) and must not allocate per call.
  static thread_local std::string memo_key;
  memo_key.clear();
  memo_key.append(client_ip);
  memo_key.push_back('\n');
  memo_key.append(server_host);
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    if (const auto it = filter_memo_.find(memo_key);
        it != filter_memo_.end()) {
      return it->second;
    }
  }
  // Direct AST construction: equals() takes the values as literals, so
  // a hostname containing ( ) * \ matches literally without the old
  // escape-format-reparse round trip (and without its unreachable
  // "parser rejected our own filter" failure mode).  Built off-lock;
  // losing an insert race just means two identical filters, one of
  // which wins the memo.
  std::vector<mds::Filter> terms;
  terms.reserve(3);
  terms.push_back(mds::Filter::equals("objectclass", "GridFTPPerfInfo"));
  terms.push_back(mds::Filter::equals("cn", client_ip));
  terms.push_back(mds::Filter::equals("hostname", server_host));
  auto filter =
      std::make_shared<const mds::Filter>(mds::Filter::all_of(std::move(terms)));
  constexpr std::size_t kFilterMemoCap = 4096;
  std::lock_guard<std::mutex> lock(filter_mu_);
  if (filter_memo_.size() >= kFilterMemoCap) filter_memo_.clear();
  return filter_memo_.emplace(memo_key, std::move(filter)).first->second;
}

std::optional<Bandwidth> ReplicaBroker::predicted_for(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) {
  // Inquiry: the performance entry this replica's site published about
  // past transfers to this client.  Hold the shared_ptr across the
  // search: a concurrent memo clear must not free the filter mid-walk.
  const auto filter = inquiry_filter(client_ip, replica.server_host);
  const auto entries = giis_.search(now, *filter);
  if (entries.empty()) return std::nullopt;

  // Several GIIS paths can carry entries for the same (client, host)
  // pair — typically a lapsed registration alongside a fresh one.
  // First-wins returned whichever entry the GIIS happened to list
  // first, silently preferring stale data; instead take the attribute
  // from the entry with the newest historyepoch (the provider's
  // source-series epoch), breaking ties on lastupdate.
  const auto freshness = [](const mds::Entry& entry) {
    return std::pair(entry.get_double("historyepoch").value_or(-1.0),
                     entry.get_double("lastupdate").value_or(-1.0));
  };
  const auto freshest_value =
      [&](const std::string& attr) -> std::optional<double> {
    std::optional<double> best;
    std::pair<double, double> best_key{-1.0, -1.0};
    for (const auto& entry : entries) {
      const auto value = entry.get_double(attr);
      if (!value) continue;
      const auto key = freshness(entry);
      if (!best || key > best_key) {
        best = value;
        best_key = key;
      }
    }
    return best;
  };

  const int cls = classifier_.classify(size);
  const std::string attr =
      "predictedrdbandwidth" +
      mds::GridFtpInfoProvider::range_fragment(classifier_, cls);
  if (const auto kb = freshest_value(attr)) {
    return *kb * static_cast<double>(kKB);  // published in KB/s
  }
  // No same-class prediction yet: fall back to the overall average.
  if (const auto kb = freshest_value("avgrdbandwidth")) {
    return *kb * static_cast<double>(kKB);
  }
  return std::nullopt;
}

void ReplicaBroker::record_failure(const PhysicalReplica& replica,
                                   SimTime now) {
  cooldowns_.record_failure(replica.server_host, now);
}

void ReplicaBroker::record_success(const PhysicalReplica& replica) {
  cooldowns_.record_success(replica.server_host);
}

std::optional<Bandwidth> ReplicaBroker::predicted_from_history(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) const {
  if (history_ == nullptr) return std::nullopt;
  const auto snapshot = history_->snapshot(
      history::SeriesKey{.host = replica.server_host,
                         .remote_ip = client_ip,
                         .op = gridftp::Operation::kRead});
  if (!snapshot) return std::nullopt;

  // Same estimate the provider publishes: mean of the last
  // `prediction_window` same-class transfers, classes shared with the
  // GIIS path.  Only the past counts — the snapshot may already hold
  // transfers timestamped after `now` when the broker replays history.
  const int cls = classifier_.classify(size);
  constexpr std::size_t kWindow = 15;
  double sum = 0.0;
  std::size_t count = 0;
  const auto observations = snapshot.observations();
  for (auto it = observations.rbegin();
       it != observations.rend() && count < kWindow; ++it) {
    if (it->time > now) continue;
    if (classifier_.classify(it->file_size) != cls) continue;
    sum += it->value;
    ++count;
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

std::optional<Bandwidth> ReplicaBroker::predict_candidate(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) {
  auto bw = predicted_for(replica, client_ip, size, now);
  if (!bw) bw = predicted_from_history(replica, client_ip, size, now);
  return bw;
}

std::optional<Selection> ReplicaBroker::select(
    const std::string& logical_name, const std::string& client_ip, Bytes size,
    SimTime now, std::span<const PhysicalReplica> exclude) {
  // No-op without an ambient trace; with one, the GIIS searches the
  // inquiry loop issues nest under this span.
  obs::SimSpanScope span("broker.select", now,
                         {{"LOGICAL", logical_name},
                          {"POLICY", to_string(policy_)}});
  std::vector<PhysicalReplica> replicas;
  std::vector<PhysicalReplica> cooling;
  for (const auto& replica : catalog_.replicas(logical_name)) {
    const bool excluded =
        std::find(exclude.begin(), exclude.end(), replica) != exclude.end();
    if (excluded) continue;
    if (!cooldowns_.available(replica.server_host, now)) {
      cooling.push_back(replica);
      continue;
    }
    replicas.push_back(replica);
  }
  if (replicas.empty() && !cooling.empty()) {
    // Every surviving candidate is in cooldown: trying one anyway beats
    // answering "no replica".  The usual case resolves before this —
    // cooldowns expire on the simulation clock.
    obs::Registry::global()
        .counter("wadp_resilience_cooldown_overrides_total", {},
                 "Selections forced to use a cooling replica")
        .inc();
    replicas = std::move(cooling);
  } else if (!cooling.empty()) {
    obs::Registry::global()
        .counter("wadp_resilience_cooldown_skips_total", {},
                 "Replicas skipped by selection while in cooldown")
        .inc(cooling.size());
  }
  if (replicas.empty()) return std::nullopt;

  Selection selection;
  switch (policy_) {
    case SelectionPolicy::kFirst:
      selection.replica = replicas.front();
      span.set_attr("CHOSEN", selection.replica.server_host);
      return selection;
    case SelectionPolicy::kRandom:
      selection.replica = replicas[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(replicas.size()) - 1))];
      span.set_attr("CHOSEN", selection.replica.server_host);
      return selection;
    case SelectionPolicy::kRoundRobin:
      selection.replica = replicas[round_robin_next_ % replicas.size()];
      ++round_robin_next_;
      span.set_attr("CHOSEN", selection.replica.server_host);
      return selection;
    case SelectionPolicy::kPredictedBest:
      break;
  }

  // What the broker consults is the provider's classified last-15 mean,
  // i.e. the paper's AVG15/fs predictor by default; the quality plane
  // files these served predictions under ranking_predictor_ so a
  // deployment serving the regression battery scores and demotes the
  // name it actually ranks on.
  struct Candidate {
    const PhysicalReplica* replica;
    Bandwidth bandwidth;
    bool drifting;
  };
  std::vector<Candidate> informed;
  for (const auto& replica : replicas) {
    const auto bw = predict_candidate(replica, client_ip, size, now);
    if (!bw) continue;
    bool drifting = false;
    if (quality_ != nullptr) {
      quality_->record_prediction(obs::ServedPrediction{
          .trace_id = obs::TraceContext::current().trace_id,
          .site = replica.server_host,
          .file_size = size,
          .time = now,
          .predictor = ranking_predictor_,
          .value = *bw,
      });
      drifting = quality_->drifting(replica.server_host, ranking_predictor_);
    }
    informed.push_back(Candidate{&replica, *bw, drifting});
  }
  if (informed.empty()) {
    // No information published yet: fall back, flagged as uninformed.
    selection.replica = replicas.front();
    selection.informed = false;
    span.set_attr("CHOSEN", selection.replica.server_host);
    return selection;
  }

  const auto better = [](const Candidate& a, const Candidate& b) {
    return a.bandwidth > b.bandwidth;
  };
  const Candidate* best = nullptr;
  const Candidate* best_any = nullptr;
  for (const auto& candidate : informed) {
    if (!best_any || better(candidate, *best_any)) best_any = &candidate;
    if (candidate.drifting) continue;
    if (!best || better(candidate, *best)) best = &candidate;
  }
  if (best == nullptr) {
    // Every informed candidate is drifting; the ranking is suspect
    // either way, so take the raw best rather than refuse.
    best = best_any;
  } else if (best != best_any) {
    // The raw winner was passed over because its predictor is drifting:
    // the quality plane just steered a selection.
    selection.drift_demoted = true;
    obs::Registry::global()
        .counter("wadp_quality_demotions_total", {},
                 "Selections where a drifting predictor's top candidate "
                 "was passed over")
        .inc();
    util::UlmRecord event;
    event.set("LOGICAL", logical_name);
    event.set("DEMOTED", best_any->replica->server_host);
    event.set("CHOSEN", best->replica->server_host);
    obs::EventSink::global().emit("quality.demotion", "replica.broker",
                                  std::move(event));
  }
  selection.replica = *best->replica;
  selection.predicted_bandwidth = best->bandwidth;
  selection.informed = true;
  span.set_attr("CHOSEN", selection.replica.server_host);
  if (selection.drift_demoted) span.set_attr("DEMOTED", std::string("1"));
  return selection;
}

}  // namespace wadp::replica
