#include "replica/broker.hpp"

#include "mds/filter.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::replica {

const char* to_string(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kPredictedBest:
      return "predicted-best";
    case SelectionPolicy::kRandom:
      return "random";
    case SelectionPolicy::kRoundRobin:
      return "round-robin";
    case SelectionPolicy::kFirst:
      return "first";
  }
  return "?";
}

ReplicaBroker::ReplicaBroker(const ReplicaCatalog& catalog, mds::Giis& giis,
                             SelectionPolicy policy, std::uint64_t seed,
                             predict::SizeClassifier classifier)
    : catalog_(catalog),
      giis_(giis),
      policy_(policy),
      rng_(seed),
      classifier_(std::move(classifier)) {}

std::optional<Bandwidth> ReplicaBroker::predicted_for(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) {
  // Inquiry: the performance entry this replica's site published about
  // past transfers to this client.
  const auto filter = mds::Filter::parse(util::format(
      "(&(objectclass=GridFTPPerfInfo)(cn=%s)(hostname=%s))",
      client_ip.c_str(), replica.server_host.c_str()));
  WADP_CHECK(filter.has_value());
  const auto entries = giis_.search(now, *filter);
  if (entries.empty()) return std::nullopt;

  const int cls = classifier_.classify(size);
  const std::string attr =
      "predictedrdbandwidth" +
      mds::GridFtpInfoProvider::range_fragment(classifier_, cls);
  for (const auto& entry : entries) {
    if (const auto kb = entry.get_double(attr)) {
      return *kb * static_cast<double>(kKB);  // published in KB/s
    }
  }
  // No same-class prediction yet: fall back to the overall average.
  for (const auto& entry : entries) {
    if (const auto kb = entry.get_double("avgrdbandwidth")) {
      return *kb * static_cast<double>(kKB);
    }
  }
  return std::nullopt;
}

std::optional<Selection> ReplicaBroker::select(
    const std::string& logical_name, const std::string& client_ip, Bytes size,
    SimTime now, std::span<const PhysicalReplica> exclude) {
  std::vector<PhysicalReplica> replicas;
  for (const auto& replica : catalog_.replicas(logical_name)) {
    const bool excluded =
        std::find(exclude.begin(), exclude.end(), replica) != exclude.end();
    if (!excluded) replicas.push_back(replica);
  }
  if (replicas.empty()) return std::nullopt;

  Selection selection;
  switch (policy_) {
    case SelectionPolicy::kFirst:
      selection.replica = replicas.front();
      return selection;
    case SelectionPolicy::kRandom:
      selection.replica = replicas[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(replicas.size()) - 1))];
      return selection;
    case SelectionPolicy::kRoundRobin:
      selection.replica = replicas[round_robin_next_ % replicas.size()];
      ++round_robin_next_;
      return selection;
    case SelectionPolicy::kPredictedBest:
      break;
  }

  std::optional<Bandwidth> best_bw;
  const PhysicalReplica* best = nullptr;
  for (const auto& replica : replicas) {
    const auto bw = predicted_for(replica, client_ip, size, now);
    if (bw && (!best_bw || *bw > *best_bw)) {
      best_bw = bw;
      best = &replica;
    }
  }
  if (best == nullptr) {
    // No information published yet: fall back, flagged as uninformed.
    selection.replica = replicas.front();
    selection.informed = false;
    return selection;
  }
  selection.replica = *best;
  selection.predicted_bandwidth = best_bw;
  selection.informed = true;
  return selection;
}

}  // namespace wadp::replica
