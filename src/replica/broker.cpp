#include "replica/broker.hpp"

#include "mds/filter.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::replica {

const char* to_string(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kPredictedBest:
      return "predicted-best";
    case SelectionPolicy::kRandom:
      return "random";
    case SelectionPolicy::kRoundRobin:
      return "round-robin";
    case SelectionPolicy::kFirst:
      return "first";
  }
  return "?";
}

ReplicaBroker::ReplicaBroker(const ReplicaCatalog& catalog, mds::Giis& giis,
                             SelectionPolicy policy, std::uint64_t seed,
                             predict::SizeClassifier classifier)
    : catalog_(catalog),
      giis_(giis),
      policy_(policy),
      rng_(seed),
      classifier_(std::move(classifier)) {}

std::optional<Bandwidth> ReplicaBroker::predicted_for(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) {
  // Inquiry: the performance entry this replica's site published about
  // past transfers to this client.
  const auto filter = mds::Filter::parse(util::format(
      "(&(objectclass=GridFTPPerfInfo)(cn=%s)(hostname=%s))",
      client_ip.c_str(), replica.server_host.c_str()));
  WADP_CHECK(filter.has_value());
  const auto entries = giis_.search(now, *filter);
  if (entries.empty()) return std::nullopt;

  const int cls = classifier_.classify(size);
  const std::string attr =
      "predictedrdbandwidth" +
      mds::GridFtpInfoProvider::range_fragment(classifier_, cls);
  for (const auto& entry : entries) {
    if (const auto kb = entry.get_double(attr)) {
      return *kb * static_cast<double>(kKB);  // published in KB/s
    }
  }
  // No same-class prediction yet: fall back to the overall average.
  for (const auto& entry : entries) {
    if (const auto kb = entry.get_double("avgrdbandwidth")) {
      return *kb * static_cast<double>(kKB);
    }
  }
  return std::nullopt;
}

std::optional<Bandwidth> ReplicaBroker::predicted_from_history(
    const PhysicalReplica& replica, const std::string& client_ip, Bytes size,
    SimTime now) const {
  if (history_ == nullptr) return std::nullopt;
  const auto snapshot = history_->snapshot(
      history::SeriesKey{.host = replica.server_host,
                         .remote_ip = client_ip,
                         .op = gridftp::Operation::kRead});
  if (!snapshot) return std::nullopt;

  // Same estimate the provider publishes: mean of the last
  // `prediction_window` same-class transfers, classes shared with the
  // GIIS path.  Only the past counts — the snapshot may already hold
  // transfers timestamped after `now` when the broker replays history.
  const int cls = classifier_.classify(size);
  constexpr std::size_t kWindow = 15;
  double sum = 0.0;
  std::size_t count = 0;
  const auto observations = snapshot.observations();
  for (auto it = observations.rbegin();
       it != observations.rend() && count < kWindow; ++it) {
    if (it->time > now) continue;
    if (classifier_.classify(it->file_size) != cls) continue;
    sum += it->value;
    ++count;
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

std::optional<Selection> ReplicaBroker::select(
    const std::string& logical_name, const std::string& client_ip, Bytes size,
    SimTime now, std::span<const PhysicalReplica> exclude) {
  std::vector<PhysicalReplica> replicas;
  for (const auto& replica : catalog_.replicas(logical_name)) {
    const bool excluded =
        std::find(exclude.begin(), exclude.end(), replica) != exclude.end();
    if (!excluded) replicas.push_back(replica);
  }
  if (replicas.empty()) return std::nullopt;

  Selection selection;
  switch (policy_) {
    case SelectionPolicy::kFirst:
      selection.replica = replicas.front();
      return selection;
    case SelectionPolicy::kRandom:
      selection.replica = replicas[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(replicas.size()) - 1))];
      return selection;
    case SelectionPolicy::kRoundRobin:
      selection.replica = replicas[round_robin_next_ % replicas.size()];
      ++round_robin_next_;
      return selection;
    case SelectionPolicy::kPredictedBest:
      break;
  }

  std::optional<Bandwidth> best_bw;
  const PhysicalReplica* best = nullptr;
  for (const auto& replica : replicas) {
    auto bw = predicted_for(replica, client_ip, size, now);
    if (!bw) bw = predicted_from_history(replica, client_ip, size, now);
    if (bw && (!best_bw || *bw > *best_bw)) {
      best_bw = bw;
      best = &replica;
    }
  }
  if (best == nullptr) {
    // No information published yet: fall back, flagged as uninformed.
    selection.replica = replicas.front();
    selection.informed = false;
    return selection;
  }
  selection.replica = *best;
  selection.predicted_bandwidth = best_bw;
  selection.informed = true;
  return selection;
}

}  // namespace wadp::replica
