// Failover fetcher: select -> transfer -> fall through to the next-best
// replica.
//
// The broker answers "which replica looks fastest right now"; the
// client moves bytes and retries transient failures in place.  What
// neither does alone is survive a *dead* replica: when the client's
// retry budget for one server is exhausted, the fetcher reports the
// failure to the broker (starting that server's cooldown), excludes the
// replica, re-ranks the survivors, and tries the next best.  The
// operation only fails once every eligible replica has been tried.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gridftp/client.hpp"
#include "replica/broker.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace wadp::replica {

struct FetchOptions {
  gridftp::TransferOptions transfer;
  /// Cap on distinct replicas tried (0 = every eligible replica).
  std::size_t max_replicas = 0;
};

struct FetchOutcome {
  bool ok = false;
  std::string error;  ///< last failure when !ok
  /// Outcome of the transfer against the final replica tried.
  gridftp::TransferOutcome transfer;
  /// Replicas that failed and were abandoned, in order.
  std::vector<PhysicalReplica> failed;
  int failovers = 0;  ///< replicas fallen through (== failed.size())
  /// Selection behind the final attempt (nullopt when the broker had
  /// nothing to offer at all).
  std::optional<Selection> selection;
  /// Trace id the whole operation ran under (select, every attempt,
  /// history ingest); `wadp trace --tree <id>` renders the request.
  std::uint64_t trace_id = 0;
};

using FetchCallback = std::function<void(const FetchOutcome&)>;

class FailoverFetcher {
 public:
  /// Maps a catalog replica to the simulated server that holds it;
  /// returning null marks the replica unusable (counted as a failover).
  using ServerResolver =
      std::function<gridftp::GridFtpServer*(const PhysicalReplica&)>;

  FailoverFetcher(sim::Simulator& sim, ReplicaBroker& broker,
                  gridftp::GridFtpClient& client, ServerResolver resolver);

  /// Fetches `logical_name` (`size` is the expected file size, used for
  /// size-classed prediction).  The callback fires exactly once.
  /// The whole operation runs under one trace: the ambient TraceContext
  /// is adopted when active, otherwise a fresh trace id is minted (the
  /// fetcher is the request entry point), and a root "fetch" span is
  /// recorded at delivery covering select -> attempts -> ingest.
  void fetch(std::string logical_name, Bytes size, FetchOptions options,
             FetchCallback callback);

 private:
  struct FetchState;

  void try_next(const std::shared_ptr<FetchState>& state);
  void deliver(const std::shared_ptr<FetchState>& state);
  void replica_failed(const std::shared_ptr<FetchState>& state,
                      const PhysicalReplica& replica, std::string error);

  sim::Simulator& sim_;
  ReplicaBroker& broker_;
  gridftp::GridFtpClient& client_;
  ServerResolver resolver_;
};

}  // namespace wadp::replica
