#include "replica/catalog.hpp"

#include <algorithm>

namespace wadp::replica {

void ReplicaCatalog::add_replica(const std::string& logical_name,
                                 PhysicalReplica replica) {
  auto& list = entries_[logical_name];
  if (std::find(list.begin(), list.end(), replica) != list.end()) return;
  list.push_back(std::move(replica));
}

bool ReplicaCatalog::remove_replica(const std::string& logical_name,
                                    const PhysicalReplica& replica) {
  const auto it = entries_.find(logical_name);
  if (it == entries_.end()) return false;
  auto& list = it->second;
  const auto pos = std::find(list.begin(), list.end(), replica);
  if (pos == list.end()) return false;
  list.erase(pos);
  if (list.empty()) entries_.erase(it);
  return true;
}

std::span<const PhysicalReplica> ReplicaCatalog::replicas(
    const std::string& logical_name) const {
  const auto it = entries_.find(logical_name);
  if (it == entries_.end()) return {};
  return it->second;
}

std::vector<std::string> ReplicaCatalog::logical_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, list] : entries_) out.push_back(name);
  return out;
}

}  // namespace wadp::replica
