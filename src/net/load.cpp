#include "net/load.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace wadp::net {

LoadProcess::LoadProcess(LoadParams params, std::uint64_t seed, SimTime origin)
    : params_(params), origin_(origin), rng_(seed) {
  WADP_CHECK(params_.grid_step > 0.0);
  WADP_CHECK(params_.max_utilization > 0.0 && params_.max_utilization <= 1.0);
  WADP_CHECK(params_.min_utilization >= 0.0 &&
             params_.min_utilization <= params_.max_utilization);
  WADP_CHECK(params_.ar_phi >= 0.0 && params_.ar_phi < 1.0);
}

void LoadProcess::extend_to(std::size_t index) const {
  const double step_hours = params_.grid_step / util::kSecondsPerHour;
  const double episode_prob =
      1.0 - std::exp(-params_.episode_rate_per_hour * step_hours);
  const double mean_episode_steps =
      std::max(1.0, params_.episode_mean_minutes * 60.0 / params_.grid_step);

  while (grid_.size() <= index) {
    // AR(1) fluctuation around zero.
    ar_state_ = params_.ar_phi * ar_state_ + rng_.normal(0.0, params_.ar_sigma);

    // Congestion episodes: memoryless arrival, geometric duration.
    if (episode_steps_left_ > 0) {
      --episode_steps_left_;
    } else if (rng_.uniform() < episode_prob) {
      episode_steps_left_ = static_cast<std::size_t>(
          std::ceil(rng_.exponential(mean_episode_steps)));
    }
    const double episode =
        episode_steps_left_ > 0 ? params_.episode_utilization : 0.0;

    const SimTime t = origin_ + static_cast<double>(grid_.size()) * params_.grid_step;
    const double local_hour =
        util::seconds_into_local_day(t, params_.zone) / util::kSecondsPerHour;
    const double phase = 2.0 * std::numbers::pi *
                         (local_hour - params_.diurnal_peak_hour) / 24.0;
    const double diurnal = params_.diurnal_amplitude * std::cos(phase);

    const double total = params_.base + diurnal + ar_state_ + episode;
    grid_.push_back(
        std::clamp(total, params_.min_utilization, params_.max_utilization));
  }
}

double LoadProcess::utilization(SimTime t) const {
  double offset = (t - origin_) / params_.grid_step;
  if (offset < 0.0) offset = 0.0;
  const auto index = static_cast<std::size_t>(offset);
  extend_to(index);
  return grid_[index];
}

SimTime LoadProcess::next_change_after(SimTime t) const {
  if (t < origin_) return origin_;
  const double steps = std::floor((t - origin_) / params_.grid_step) + 1.0;
  return origin_ + steps * params_.grid_step;
}

}  // namespace wadp::net
