// Route resolution: the abstraction between "who wants to move bytes
// between two sites" (GridFTP clients, workload drivers) and "what
// shared resources those bytes cross" (the fluid engine's allocation).
//
// Two implementations exist:
//   * net::Topology — the paper's directed site-pair registry, where a
//     route is exactly one PathModel (the calibrated 3-site testbed);
//   * net::GridTopology — the grid-scale graph, where a route is the
//     precomputed multi-link shortest path between two sites.
//
// Callers resolve once per transfer and hand the result to the fluid
// engine; they never need to know which world they run in.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "net/tcp.hpp"
#include "util/types.hpp"

namespace wadp::net {

class CapacityProvider;
class PathModel;

/// One resolved source->destination route.  Exactly one of `path` /
/// `links` is populated:
///   * `path != nullptr` — the paper-testbed case: a single PathModel
///     carries capacity, RTT, TCP params, and the background load; the
///     fluid engine allocates against the path itself.
///   * `links` non-empty — the grid case: the flow crosses each link in
///     order; every link is a shared resource with its own background
///     load, and the flow's TCP behaviour is governed by the end-to-end
///     `rtt` / `tcp` below.
struct ResolvedRoute {
  PathModel* path = nullptr;
  std::vector<CapacityProvider*> links;
  Duration rtt = 0.0;        ///< end-to-end base round-trip time
  Bandwidth bottleneck = 0.0;  ///< min segment capacity (planning hint)
  TcpParams tcp;
};

/// Resolves site pairs to routes.  Implementations own the underlying
/// paths/links; resolved pointers stay valid for the resolver's
/// lifetime.
class PathResolver {
 public:
  virtual ~PathResolver() = default;

  /// nullopt when no route connects source to destination.
  virtual std::optional<ResolvedRoute> resolve(std::string_view source_site,
                                               std::string_view sink_site) = 0;
};

}  // namespace wadp::net
