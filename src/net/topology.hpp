// Grid-scale network topology: sites, links, precomputed routes.
//
// The paper's world is three sites and two wide-area links; the grid
// world the ROADMAP targets is hundreds of sites and thousands of
// links.  GridTopology models that world as an undirected graph whose
// edges are Link objects — each a CapacityProvider with its own
// capacity, propagation RTT, and background-load process — and resolves
// site pairs to precomputed shortest-RTT routes (Dijkstra at build
// time; route lookups during simulation are one hash probe).
//
// Every Link records the utilization series the fluid engine reports
// through CapacityProvider::on_allocation.  The series is the
// per-link observable the predictor plane consumes (the grid analogue
// of the paper's NWS link probes), and it is safe to read from other
// threads while a simulation runs — the dashboards-and-probes pattern
// the *Thread* stress suites exercise.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/load.hpp"
#include "net/provider.hpp"
#include "net/route.hpp"
#include "util/types.hpp"

namespace wadp::net {

struct LinkParams {
  Bandwidth capacity = 12'500'000.0;  ///< bytes/s
  Duration rtt = 0.010;               ///< propagation round trip of this hop
  LoadParams load;                    ///< background (non-wadp) traffic
};

/// One utilization observation: what fraction of the link's available
/// capacity wadp flows held from `t` onward.
struct UtilizationSample {
  SimTime t = 0.0;
  Bandwidth allocated = 0.0;  ///< bytes/s granted to wadp flows
  Bandwidth capacity = 0.0;   ///< capacity_at(t) when sampled
  double utilization() const {
    return capacity > 0.0 ? allocated / capacity : 0.0;
  }
};

/// An undirected wide-area link between two sites (or routers).  Both
/// traffic directions share its capacity — the shared-medium model that
/// keeps a 1000-link grid tractable; the paper testbed keeps its
/// per-direction PathModels.
class Link final : public CapacityProvider {
 public:
  Link(std::string a, std::string b, LinkParams params, std::uint64_t seed,
       SimTime origin);

  // CapacityProvider.
  Bandwidth capacity_at(SimTime t) const override;
  SimTime next_change_after(SimTime t) const override;
  std::string_view resource_name() const override { return name_; }
  void on_allocation(SimTime t, Bandwidth allocated) override;

  const std::string& site_a() const { return a_; }
  const std::string& site_b() const { return b_; }
  Duration rtt() const { return params_.rtt; }
  Bandwidth capacity() const { return params_.capacity; }

  /// Most recent utilization sample (zeroes before any allocation).
  UtilizationSample last_utilization() const;

  /// Copy of the bounded utilization series, oldest first.  Thread-safe
  /// against the simulating thread.
  std::vector<UtilizationSample> utilization_series() const;

 private:
  std::string a_;
  std::string b_;
  std::string name_;
  LinkParams params_;
  LoadProcess load_;

  // The series is written from simulator context and read from
  // dashboard/predictor threads; a mutex around a bounded ring keeps
  // both honest (samples are tiny, contention is per-allocation).
  mutable std::mutex mu_;
  std::vector<UtilizationSample> ring_;
  std::size_t ring_next_ = 0;
  bool ring_full_ = false;
};

/// A site-to-site route: the ordered links a flow crosses plus the
/// end-to-end characteristics the TCP model needs.
struct GridRoute {
  std::vector<Link*> links;
  Duration rtt = 0.0;          ///< sum of hop RTTs
  Bandwidth bottleneck = 0.0;  ///< min hop capacity
};

/// The grid graph.  Build with add_site/add_link, then freeze() to
/// precompute all-pairs shortest-RTT routes; resolve() afterwards is
/// O(1).  Owns sites and links.
class GridTopology : public PathResolver {
 public:
  GridTopology() = default;
  GridTopology(const GridTopology&) = delete;
  GridTopology& operator=(const GridTopology&) = delete;

  /// Registers a site; returns its dense index.
  std::size_t add_site(std::string name);

  /// Registers an undirected link between two existing sites.  `seed`
  /// drives the link's background-load process.
  Link& add_link(std::string_view a, std::string_view b, LinkParams params,
                 std::uint64_t seed, SimTime origin);

  /// Precomputes routes (shortest total RTT, ties broken by fewest hops
  /// then lowest link insertion order — deterministic across runs).
  /// Call once after the graph is complete.
  void freeze();

  /// Route between two sites; nullptr when disconnected or unknown.
  /// Requires freeze().
  const GridRoute* route(std::string_view source, std::string_view sink) const;

  // PathResolver: multi-link route with default TCP params.
  std::optional<ResolvedRoute> resolve(std::string_view source_site,
                                       std::string_view sink_site) override;

  /// TCP parameterization handed out with resolved routes.
  void set_tcp(TcpParams tcp) { tcp_ = tcp; }
  TcpParams tcp() const { return tcp_; }

  std::size_t site_count() const { return site_names_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const std::vector<std::string>& site_names() const { return site_names_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  bool frozen() const { return frozen_; }

  /// True when every site can reach every other site.
  bool connected() const;

  /// Max and mean of the links' latest utilization samples — the
  /// aggregate the simgrid CLI and the bench report.
  struct UtilizationSummary {
    double max = 0.0;
    double mean = 0.0;
  };
  UtilizationSummary utilization_summary() const;

 private:
  std::size_t site_index(std::string_view name) const;

  std::vector<std::string> site_names_;
  std::map<std::string, std::size_t, std::less<>> site_index_;
  std::vector<std::unique_ptr<Link>> links_;
  // adjacency_[site] = {(neighbor site, link index), ...} in insertion order.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adjacency_;
  // routes_[src * sites + dst]; empty links == unreachable (or src==dst).
  std::vector<GridRoute> routes_;
  bool frozen_ = false;
  TcpParams tcp_;
};

}  // namespace wadp::net
