// Fluid-flow transfer engine.
//
// FluidEngine simulates concurrent data flows over shared resources
// (paths, grid links, storage ports) using a piecewise-constant fluid
// model: between "re-evaluation instants" every flow moves bytes at a
// constant rate; rates are recomputed by weighted max-min fair
// allocation whenever anything changes — a flow starts or finishes, a
// stream's slow-start window doubles, or a resource's background load
// steps to a new grid value.
//
// The allocation honours, per flow:
//   * a rate cap from TCP:  streams * min(cwnd(t), buffer) / rtt
//     (the slow-start ramp, then the window-limited ceiling);
//   * its weighted share of every resource it crosses.  The weight on
//     wide-area segments equals the stream count — the reason GridFTP
//     opens parallel streams is precisely to claim a larger share of a
//     congested link — and 1 on storage ports.
//
// Weighted max-min decomposes exactly across connected components of
// the flow<->resource sharing graph: flows in different components
// never compete, so a change confined to one component cannot move any
// rate outside it.  The engine exploits that to make reallocation
// *incremental*: every change (arrival, completion, ramp step, load
// step) marks the resources it touches dirty, and only the connected
// components reached from dirty resources are waterfilled again.  A
// reference global-recompute allocator is retained both as a
// correctness oracle (EngineConfig::verify_allocator) and as the
// baseline the bench compares against.
//
// Two progress-bookkeeping modes:
//   * eager (default) — every advance integrates every flow, and one
//     pending wake-up covers the earliest completion/ramp/load instant.
//     This is the original engine's schedule, kept bit-identical so the
//     calibrated paper testbed reproduces its records exactly.
//   * lazy (EngineConfig::lazy_progress) — per-flow completion and ramp
//     events, per-resource load events, and same-instant dirty-set
//     coalescing ("sweep") localize each event's cost to its component.
//     This is the grid-scale mode: cost per event is proportional to
//     the affected component, not to the total flow count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/path.hpp"
#include "net/provider.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace wadp::net {

using FlowId = std::uint64_t;

/// Completion statistics delivered to the flow's callback.
struct FlowStats {
  FlowId id = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes bytes = 0;
  Duration duration() const { return end - start; }
  Bandwidth bandwidth() const {
    return duration() > 0.0 ? static_cast<double>(bytes) / duration() : 0.0;
  }
};

struct FlowSpec {
  /// The wide-area route: either a single PathModel (paper testbed) or
  /// an explicit link list (grid routes).  Exactly one must be set.
  PathModel* path = nullptr;
  /// Multi-segment route: each link is a shared resource the flow
  /// crosses with weight = streams.  Used when `path` is null.
  std::vector<CapacityProvider*> links;
  /// TCP parameters and end-to-end RTT for link-routed flows (ignored
  /// when `path` is set — the path carries both).
  TcpParams tcp;
  Duration base_rtt = 0.05;
  /// Additional unit-weight resources the flow crosses (storage ports).
  std::vector<CapacityProvider*> extra_resources;
  int streams = 1;
  Bytes buffer = kTunedTcpBuffer;  ///< per-stream socket buffer
  Bytes size = 0;                  ///< bytes to move (> 0)
  std::function<void(const FlowStats&)> on_complete;  ///< may be empty
};

/// Which allocator recomputes rates on a change.
enum class AllocatorKind {
  kIncremental,  ///< dirty-component waterfill (default)
  kReference,    ///< global recompute on every change (oracle/baseline)
};

struct EngineConfig {
  AllocatorKind allocator = AllocatorKind::kIncremental;
  /// Per-flow/per-resource events instead of the eager single wake.
  bool lazy_progress = false;
  /// Shadow every incremental reallocation with a reference global
  /// recompute and count rate mismatches (tests).
  bool verify_allocator = false;
  /// When > 0, every Nth reallocation also times (but does not apply) a
  /// reference global recompute — the in-bench cost baseline.
  std::uint32_t reference_sample_every = 0;
};

class FluidEngine {
 public:
  explicit FluidEngine(sim::Simulator& sim, EngineConfig config = {})
      : sim_(sim), config_(config) {}

  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  /// Starts a flow now.  The completion callback fires from simulator
  /// context when the last byte moves.
  FlowId start_flow(FlowSpec spec);

  /// Aborts an active flow without invoking its callback.  Returns
  /// false when the flow already completed or never existed.
  bool cancel_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current allocated rate of an active flow (bytes/s); 0 if unknown.
  Bandwidth current_rate(FlowId id) const;

  /// Instantaneous progress of an active flow (advances internal
  /// bookkeeping to now first, which in eager mode may complete other
  /// flows whose callbacks then fire).  nullopt once the flow completed
  /// or never existed.  Basis for GridFTP performance markers.
  struct FlowProgress {
    Bytes moved = 0;
    Bytes total = 0;
    Bandwidth rate = 0.0;
  };
  std::optional<FlowProgress> progress(FlowId id);

  /// Aborts an active flow like cancel_flow but returns how far it got
  /// — the basis for partial-transfer failure records when a data
  /// channel is truncated or times out.  nullopt when the flow already
  /// completed (its callback has fired or is firing) or never existed.
  std::optional<FlowProgress> interrupt_flow(FlowId id);

  /// Total flows completed since construction (for tests/metrics).
  std::uint64_t completed_flows() const { return completed_; }

  /// Allocator cost accounting (bench / property tests).
  struct AllocStats {
    std::uint64_t reallocs = 0;       ///< waterfill passes
    std::uint64_t components = 0;     ///< dirty components recomputed
    std::uint64_t flows_touched = 0;  ///< flow entries across passes
    std::uint64_t sweeps = 0;         ///< lazy-mode coalescing sweeps
    std::uint64_t alloc_ns = 0;       ///< wall time in applied waterfills
    std::uint64_t reference_ns = 0;       ///< wall time in scratch recomputes
    std::uint64_t reference_samples = 0;  ///< scratch recomputes taken
    std::uint64_t reference_flows = 0;    ///< flow entries across scratch
    std::uint64_t verify_mismatches = 0;  ///< incremental != reference rates
  };
  const AllocStats& alloc_stats() const { return stats_; }

  /// Description of the first verify-mode mismatch, empty when clean.
  const std::string& first_mismatch() const { return first_mismatch_; }

  /// Recomputes all rates globally (reference allocator) into a scratch
  /// buffer and compares with the live rates; returns the number of
  /// flows whose rate differs.  Test hook — does not modify state.
  std::size_t compare_with_reference();

 private:
  struct Flow {
    FlowSpec spec;
    SimTime start = 0.0;
    double remaining = 0.0;  ///< fluid bytes left
    Bandwidth rate = 0.0;    ///< current allocation
    int ramp_rtts_total = 0; ///< re-evaluations needed to finish slow start
    /// RTT including queueing delay, sampled when the flow starts.  The
    /// connection's self-clocking is set up in its first round trips, so
    /// the load level at establishment dominates its ramp behaviour.
    Duration rtt = 0.0;
    TcpParams tcp;           ///< copied from path or spec at start
    double cached_cap = -1.0;  ///< flow_cap at the last waterfill
    // Lazy mode only.
    SimTime integrated_to = 0.0;
    sim::EventId completion_ev = 0;
    sim::EventId ramp_ev = 0;
  };

  struct ResourceState {
    std::vector<FlowId> members;
    double capacity_cached = -1.0;  ///< capacity_at at last dirty scan
    std::uint64_t visit_mark = 0;   ///< BFS epoch
    bool dirty = false;
    sim::EventId load_ev = 0;  ///< lazy mode: next load-grid step
  };

  /// Invokes fn(provider, weight) for each resource the flow crosses,
  /// in canonical order: path/links (weight = streams), then extras
  /// (weight = 1).
  template <typename Fn>
  static void for_each_resource(const Flow& f, Fn&& fn);

  // -- shared bookkeeping --------------------------------------------
  void register_flow(FlowId id, Flow&& flow);
  /// Removes the flow from resource membership, marks its resources
  /// dirty, and (lazy mode) cancels its events.  Does not erase it from
  /// flows_.
  void unlink_flow(FlowId id, Flow& f);
  void mark_resources_dirty(const Flow& f);

  /// Weighted max-min over `entries` (ascending FlowId order expected).
  /// Writes rates into the flows when `apply`, into `scratch` otherwise.
  struct WaterfillResult {
    std::size_t flows = 0;
  };
  WaterfillResult waterfill(const std::vector<FlowId>& ids, SimTime t,
                            bool apply, std::vector<double>* scratch);

  /// Recomputes the connected components reached from dirty resources;
  /// the incremental allocator's core.  No-op when nothing is dirty.
  void realloc_dirty(SimTime t);
  /// Expands dirty resources to full components; returns member flow
  /// ids ascending and the component's resources.
  void collect_dirty_components(std::vector<FlowId>& ids,
                                std::vector<CapacityProvider*>& resources);
  /// Reports allocation sums to the touched resources' on_allocation.
  void report_allocations(const std::vector<FlowId>& ids, SimTime t);
  /// Runs the reference global recompute into scratch (timing it) and,
  /// in verify mode, compares with live rates.
  void reference_shadow(SimTime t, bool verify);

  // -- eager mode ----------------------------------------------------
  /// Moves bytes for the elapsed interval and completes finished flows.
  void advance_to(SimTime t);
  /// Marks resources whose capacity changed and flows whose TCP cap
  /// changed since the last waterfill (eager wake-ups).
  void scan_for_changes(SimTime t);
  /// Schedules the next wake-up (completion / ramp step / load change).
  void schedule_next();
  void wake();

  // -- lazy mode -----------------------------------------------------
  void request_sweep();
  void sweep();
  void integrate_flow(FlowId id, Flow& f, SimTime t);
  /// (Re)schedules the flow's completion event from its current rate.
  void arm_completion(FlowId id, Flow& f);
  void arm_ramp(FlowId id, Flow& f);
  void arm_load_event(CapacityProvider* resource, ResourceState& state);
  /// Completes the flow at `t` (records stats, unlinks, erases) and
  /// fires its callback.
  void finish_flow(FlowId id, SimTime t);

  /// Per-flow instantaneous cap from TCP ramp + window limit.
  Bandwidth flow_cap(const Flow& f, SimTime t) const;

  sim::Simulator& sim_;
  EngineConfig config_;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  std::unordered_map<CapacityProvider*, ResourceState> resources_;
  std::vector<CapacityProvider*> dirty_resources_;
  FlowId next_id_ = 1;
  SimTime last_update_ = 0.0;
  sim::EventId pending_wake_ = 0;
  bool sweep_pending_ = false;
  std::uint64_t visit_epoch_ = 0;
  std::uint64_t completed_ = 0;
  AllocStats stats_;
  std::string first_mismatch_;
};

}  // namespace wadp::net
