// Fluid-flow transfer engine.
//
// FluidEngine simulates concurrent data flows over shared resources
// (paths, storage ports) using a piecewise-constant fluid model:
// between "re-evaluation instants" every flow moves bytes at a constant
// rate; rates are recomputed by weighted max-min fair allocation
// whenever anything changes — a flow starts or finishes, a stream's
// slow-start window doubles, or a resource's background load steps to a
// new grid value.
//
// The allocation honours, per flow:
//   * a rate cap from TCP:  streams * min(cwnd(t), buffer) / rtt
//     (the slow-start ramp, then the window-limited ceiling);
//   * its weighted share of every resource it crosses.  The weight on
//     the network path equals the stream count — the reason GridFTP
//     opens parallel streams is precisely to claim a larger share of a
//     congested link — and 1 on storage ports.
//
// This is the standard flow-level abstraction used by grid/network
// simulators; it reproduces end-to-end throughput shapes without
// simulating individual packets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/path.hpp"
#include "net/provider.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace wadp::net {

using FlowId = std::uint64_t;

/// Completion statistics delivered to the flow's callback.
struct FlowStats {
  FlowId id = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes bytes = 0;
  Duration duration() const { return end - start; }
  Bandwidth bandwidth() const {
    return duration() > 0.0 ? static_cast<double>(bytes) / duration() : 0.0;
  }
};

struct FlowSpec {
  PathModel* path = nullptr;  ///< required: the wide-area segment
  /// Additional unit-weight resources the flow crosses (storage ports).
  std::vector<CapacityProvider*> extra_resources;
  int streams = 1;
  Bytes buffer = kTunedTcpBuffer;  ///< per-stream socket buffer
  Bytes size = 0;                  ///< bytes to move (> 0)
  std::function<void(const FlowStats&)> on_complete;  ///< may be empty
};

class FluidEngine {
 public:
  explicit FluidEngine(sim::Simulator& sim) : sim_(sim) {}

  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  /// Starts a flow now.  The completion callback fires from simulator
  /// context when the last byte moves.
  FlowId start_flow(FlowSpec spec);

  /// Aborts an active flow without invoking its callback.  Returns
  /// false when the flow already completed or never existed.
  bool cancel_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current allocated rate of an active flow (bytes/s); 0 if unknown.
  Bandwidth current_rate(FlowId id) const;

  /// Instantaneous progress of an active flow (advances internal
  /// bookkeeping to now first, which may complete other flows whose
  /// callbacks then fire).  nullopt once the flow completed or never
  /// existed.  Basis for GridFTP performance markers.
  struct FlowProgress {
    Bytes moved = 0;
    Bytes total = 0;
    Bandwidth rate = 0.0;
  };
  std::optional<FlowProgress> progress(FlowId id);

  /// Aborts an active flow like cancel_flow but returns how far it got
  /// — the basis for partial-transfer failure records when a data
  /// channel is truncated or times out.  nullopt when the flow already
  /// completed (its callback has fired or is firing) or never existed.
  std::optional<FlowProgress> interrupt_flow(FlowId id);

  /// Total flows completed since construction (for tests/metrics).
  std::uint64_t completed_flows() const { return completed_; }

 private:
  struct Flow {
    FlowSpec spec;
    SimTime start = 0.0;
    double remaining = 0.0;  ///< fluid bytes left
    Bandwidth rate = 0.0;    ///< current allocation
    int ramp_rtts_total = 0; ///< re-evaluations needed to finish slow start
    /// RTT including queueing delay, sampled when the flow starts.  The
    /// connection's self-clocking is set up in its first round trips, so
    /// the load level at establishment dominates its ramp behaviour.
    Duration rtt = 0.0;
  };

  /// Moves bytes for the elapsed interval and completes finished flows.
  void advance_to(SimTime t);
  /// Weighted max-min fair allocation at time `t` (flows_ must be advanced).
  void reallocate(SimTime t);
  /// Schedules the next wake-up (completion / ramp step / load change).
  void schedule_next();
  void wake();

  /// Per-flow instantaneous cap from TCP ramp + window limit.
  Bandwidth flow_cap(const Flow& f, SimTime t) const;

  sim::Simulator& sim_;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_id_ = 1;
  SimTime last_update_ = 0.0;
  sim::EventId pending_wake_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace wadp::net
