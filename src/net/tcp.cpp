#include "net/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wadp::net {

Bytes cwnd_after_rtts(const TcpParams& tcp, Bytes buffer, int rtts) {
  WADP_CHECK(rtts >= 0);
  WADP_CHECK(tcp.initial_window > 0);
  // Doubling with overflow guard: stop as soon as the cap is reached.
  Bytes cwnd = tcp.initial_window;
  for (int i = 0; i < rtts && cwnd < buffer; ++i) {
    cwnd = std::min(buffer, cwnd * 2);
  }
  return std::min(cwnd, buffer);
}

int rtts_to_fill_window(const TcpParams& tcp, Bytes buffer) {
  WADP_CHECK(tcp.initial_window > 0);
  int rtts = 0;
  Bytes cwnd = tcp.initial_window;
  while (cwnd < buffer) {
    cwnd *= 2;
    ++rtts;
  }
  return rtts;
}

Bandwidth window_limited_rate(Bytes buffer, Duration rtt) {
  WADP_CHECK(rtt > 0.0);
  return static_cast<double>(buffer) / rtt;
}

Bandwidth ramp_rate_cap(const TcpParams& tcp, Bytes buffer, Duration rtt,
                        Duration elapsed) {
  WADP_CHECK(rtt > 0.0);
  if (elapsed < 0.0) elapsed = 0.0;
  return static_cast<double>(
             cwnd_after_rtts(tcp, buffer, elapsed_rtts(rtt, elapsed))) /
         rtt;
}

int elapsed_rtts(Duration rtt, Duration elapsed) {
  WADP_CHECK(rtt > 0.0);
  if (elapsed < 0.0) return 0;
  // Epoch-seconds doubles carry ~1e-7 s of rounding; without the
  // tolerance a wake scheduled exactly at start + k*rtt can observe
  // elapsed/rtt = k - 1e-9 and never advance the window.
  return static_cast<int>(elapsed / rtt + 1e-4);
}

Duration unconstrained_transfer_time(const TcpParams& tcp, Bytes size,
                                     Bytes buffer, Duration rtt) {
  WADP_CHECK(rtt > 0.0);
  WADP_CHECK(buffer > 0);
  if (size == 0) return 0.0;

  // Walk the slow-start rounds: in round k the stream moves cwnd_k bytes
  // in one RTT.
  Bytes sent = 0;
  Bytes cwnd = std::min(tcp.initial_window, buffer);
  Duration t = 0.0;
  while (cwnd < buffer) {
    if (sent + cwnd >= size) {
      // Finishes inside this round; charge the fraction of the RTT.
      const auto remaining = static_cast<double>(size - sent);
      return t + rtt * remaining / static_cast<double>(cwnd);
    }
    sent += cwnd;
    t += rtt;
    cwnd = std::min(buffer, cwnd * 2);
  }
  // Window-limited cruise at buffer/rtt.
  const auto remaining = static_cast<double>(size - sent);
  return t + remaining / window_limited_rate(buffer, rtt);
}

Bandwidth achieved_bandwidth(Bytes size, Duration time) {
  WADP_CHECK_MSG(time > 0.0, "zero-duration transfer");
  return static_cast<double>(size) / time;
}

}  // namespace wadp::net
