// TCP throughput arithmetic used by the fluid-flow engine and by the
// NWS probe analysis.
//
// The paper's central empirical observation (Section 4.3, Figs. 1–2) is
// that transfer bandwidth depends strongly on file size, "primarily due
// to the startup overhead associated with the TCP start mechanism".  We
// model each stream's congestion window as doubling once per RTT from
// an initial window until it hits the socket-buffer cap (slow start; no
// loss events are modelled individually — loss shows up as background
// load on the path), after which the stream sustains
//
//     steady rate = buffer / RTT      (window-limited)
//
// subject to its fair share of bottleneck capacity.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace wadp::net {

struct TcpParams {
  Bytes mss = 1460;              ///< maximum segment size
  Bytes initial_window = 2 * 1460;  ///< RFC 2581 initial cwnd (2 segments)

  bool operator==(const TcpParams&) const = default;
};

/// Widely deployed default socket buffer circa 2001; what the paper
/// means by NWS using "standard TCP buffer sizes".
inline constexpr Bytes kDefaultTcpBuffer = 32 * kKiB;

/// The tuned buffer the paper's experiments used (Section 6.1).
inline constexpr Bytes kTunedTcpBuffer = 1'000'000;

/// Congestion window after `rtts` whole round trips of slow start,
/// capped at `buffer`.
Bytes cwnd_after_rtts(const TcpParams& tcp, Bytes buffer, int rtts);

/// Number of whole RTTs of slow start needed before the window reaches
/// `buffer` (0 when the initial window already does).
int rtts_to_fill_window(const TcpParams& tcp, Bytes buffer);

/// Window-limited steady-state rate of one stream: buffer / rtt.
Bandwidth window_limited_rate(Bytes buffer, Duration rtt);

/// Instantaneous per-stream rate cap `elapsed` seconds after the stream
/// started, combining the slow-start ramp with the window cap.  The ramp
/// is discretized per whole RTT, matching how the fluid engine schedules
/// re-evaluations.
Bandwidth ramp_rate_cap(const TcpParams& tcp, Bytes buffer, Duration rtt,
                        Duration elapsed);

/// Whole round trips completed after `elapsed` seconds, with a small
/// tolerance so an event scheduled exactly at a round-trip boundary
/// counts that round despite floating-point rounding of epoch times.
int elapsed_rtts(Duration rtt, Duration elapsed);

/// Analytic single-stream transfer time on an *unloaded* path whose
/// capacity never binds: slow-start rounds followed by window-limited
/// cruise.  Used for closed-form cross-checks in tests and for the NWS
/// probe-theory bench; the fluid engine computes the loaded general case.
Duration unconstrained_transfer_time(const TcpParams& tcp, Bytes size,
                                     Bytes buffer, Duration rtt);

/// Bandwidth formula the paper applies to its logs: size / time.
Bandwidth achieved_bandwidth(Bytes size, Duration time);

}  // namespace wadp::net
