#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "util/error.hpp"

namespace wadp::net {
namespace {

/// Utilization samples retained per link.  At the fluid engine's
/// realloc cadence this spans the recent-history window predictors
/// read; older samples age out of the ring.
constexpr std::size_t kUtilizationRingCapacity = 1024;

}  // namespace

Link::Link(std::string a, std::string b, LinkParams params, std::uint64_t seed,
           SimTime origin)
    : a_(std::move(a)),
      b_(std::move(b)),
      name_("link:" + a_ + "<->" + b_),
      params_(params),
      load_(params.load, seed, origin) {
  WADP_CHECK(params_.capacity > 0.0);
  WADP_CHECK(params_.rtt > 0.0);
}

Bandwidth Link::capacity_at(SimTime t) const {
  return params_.capacity * load_.availability(t);
}

SimTime Link::next_change_after(SimTime t) const {
  return load_.next_change_after(t);
}

void Link::on_allocation(SimTime t, Bandwidth allocated) {
  UtilizationSample sample;
  sample.t = t;
  sample.allocated = allocated;
  sample.capacity = capacity_at(t);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kUtilizationRingCapacity) {
    ring_.push_back(sample);
    ring_next_ = ring_.size() % kUtilizationRingCapacity;
    ring_full_ = ring_.size() == kUtilizationRingCapacity;
  } else {
    ring_[ring_next_] = sample;
    ring_next_ = (ring_next_ + 1) % kUtilizationRingCapacity;
  }
}

UtilizationSample Link::last_utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return {};
  const std::size_t last =
      (ring_next_ + ring_.size() - 1) % ring_.size();
  return ring_[ring_full_ ? last : ring_.size() - 1];
}

std::vector<UtilizationSample> Link::utilization_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<UtilizationSample> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  // Oldest first: the slot about to be overwritten is the oldest.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t GridTopology::add_site(std::string name) {
  WADP_CHECK_MSG(!frozen_, "topology is frozen");
  WADP_CHECK_MSG(!name.empty(), "site name must be non-empty");
  const auto [it, inserted] = site_index_.emplace(name, site_names_.size());
  WADP_CHECK_MSG(inserted, "duplicate site");
  site_names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return it->second;
}

std::size_t GridTopology::site_index(std::string_view name) const {
  const auto it = site_index_.find(name);
  WADP_CHECK_MSG(it != site_index_.end(), "unknown site");
  return it->second;
}

Link& GridTopology::add_link(std::string_view a, std::string_view b,
                             LinkParams params, std::uint64_t seed,
                             SimTime origin) {
  WADP_CHECK_MSG(!frozen_, "topology is frozen");
  const std::size_t ia = site_index(a);
  const std::size_t ib = site_index(b);
  WADP_CHECK_MSG(ia != ib, "link endpoints must differ");
  links_.push_back(std::make_unique<Link>(std::string(a), std::string(b),
                                          params, seed, origin));
  const std::size_t index = links_.size() - 1;
  adjacency_[ia].emplace_back(ib, index);
  adjacency_[ib].emplace_back(ia, index);
  return *links_.back();
}

void GridTopology::freeze() {
  WADP_CHECK_MSG(!frozen_, "freeze() called twice");
  const std::size_t n = site_names_.size();
  routes_.assign(n * n, GridRoute{});

  // Dijkstra from every source.  Cost = (total rtt, hops, tie); the hop
  // and insertion-order tie-breaks make the routes deterministic even
  // when rtts collide (seeded builders round-trip exactly).
  struct Node {
    Duration dist;
    std::size_t hops;
    std::size_t site;
    bool operator>(const Node& o) const {
      return std::tie(dist, hops, site) > std::tie(o.dist, o.hops, o.site);
    }
  };
  constexpr Duration kUnreachable = std::numeric_limits<Duration>::infinity();

  std::vector<Duration> dist(n);
  std::vector<std::size_t> hops(n);
  std::vector<std::size_t> via_link(n);  // link taken into this site
  std::vector<std::size_t> parent(n);

  for (std::size_t src = 0; src < n; ++src) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(hops.begin(), hops.end(), 0);
    std::fill(via_link.begin(), via_link.end(), links_.size());
    std::fill(parent.begin(), parent.end(), n);
    dist[src] = 0.0;

    std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
    frontier.push({0.0, 0, src});
    while (!frontier.empty()) {
      const Node node = frontier.top();
      frontier.pop();
      if (node.dist > dist[node.site] ||
          (node.dist == dist[node.site] && node.hops > hops[node.site])) {
        continue;  // stale entry
      }
      for (const auto& [next, link_index] : adjacency_[node.site]) {
        const Duration d = node.dist + links_[link_index]->rtt();
        const std::size_t h = node.hops + 1;
        const bool better =
            d < dist[next] ||
            (d == dist[next] && (parent[next] == n || h < hops[next] ||
                                 (h == hops[next] && link_index < via_link[next])));
        if (!better) continue;
        dist[next] = d;
        hops[next] = h;
        via_link[next] = link_index;
        parent[next] = node.site;
        frontier.push({d, h, next});
      }
    }

    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src || dist[dst] == kUnreachable) continue;
      GridRoute& route = routes_[src * n + dst];
      route.rtt = dist[dst];
      route.bottleneck = std::numeric_limits<Bandwidth>::infinity();
      for (std::size_t at = dst; at != src; at = parent[at]) {
        Link* link = links_[via_link[at]].get();
        route.links.push_back(link);
        route.bottleneck = std::min(route.bottleneck, link->capacity());
      }
      std::reverse(route.links.begin(), route.links.end());
    }
  }
  frozen_ = true;
}

const GridRoute* GridTopology::route(std::string_view source,
                                     std::string_view sink) const {
  WADP_CHECK_MSG(frozen_, "freeze() the topology before routing");
  const auto src = site_index_.find(source);
  const auto dst = site_index_.find(sink);
  if (src == site_index_.end() || dst == site_index_.end()) return nullptr;
  if (src->second == dst->second) return nullptr;
  const GridRoute& route =
      routes_[src->second * site_names_.size() + dst->second];
  return route.links.empty() ? nullptr : &route;
}

std::optional<ResolvedRoute> GridTopology::resolve(std::string_view source_site,
                                                   std::string_view sink_site) {
  const GridRoute* grid_route = route(source_site, sink_site);
  if (grid_route == nullptr) return std::nullopt;
  ResolvedRoute resolved;
  resolved.links.reserve(grid_route->links.size());
  for (Link* link : grid_route->links) resolved.links.push_back(link);
  resolved.rtt = grid_route->rtt;
  resolved.bottleneck = grid_route->bottleneck;
  resolved.tcp = tcp_;
  return resolved;
}

bool GridTopology::connected() const {
  if (site_names_.empty()) return true;
  std::vector<bool> seen(site_names_.size(), false);
  std::vector<std::size_t> stack = {0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    for (const auto& [next, link_index] : adjacency_[at]) {
      (void)link_index;
      if (seen[next]) continue;
      seen[next] = true;
      ++count;
      stack.push_back(next);
    }
  }
  return count == site_names_.size();
}

GridTopology::UtilizationSummary GridTopology::utilization_summary() const {
  UtilizationSummary summary;
  if (links_.empty()) return summary;
  double sum = 0.0;
  for (const auto& link : links_) {
    const double u = link->last_utilization().utilization();
    summary.max = std::max(summary.max, u);
    sum += u;
  }
  summary.mean = sum / static_cast<double>(links_.size());
  return summary;
}

}  // namespace wadp::net
