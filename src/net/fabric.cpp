#include "net/fabric.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace wadp::net {
namespace {

/// Residual fluid below which a flow counts as finished (half a byte —
/// far below anything observable at wide-area rates).
constexpr double kCompletionEpsilon = 0.5;

/// Minimum forward step the engine schedules.  SimTime is an epoch-
/// seconds double (~1e9), whose ulp is ~1.2e-7 s: steps below the ulp
/// would schedule a wake at an *unchanged* timestamp and spin forever.
/// One microsecond is comfortably above the ulp and far below anything
/// a wide-area transfer can resolve.
constexpr double kTimeQuantum = 1e-6;

}  // namespace

Bandwidth FluidEngine::flow_cap(const Flow& f, SimTime t) const {
  const PathModel& path = *f.spec.path;
  const Duration elapsed = t - f.start;
  return static_cast<double>(f.spec.streams) *
         ramp_rate_cap(path.tcp(), f.spec.buffer, f.rtt, elapsed);
}

FlowId FluidEngine::start_flow(FlowSpec spec) {
  WADP_CHECK_MSG(spec.path != nullptr, "flow needs a path");
  WADP_CHECK_MSG(spec.size > 0, "flow needs bytes to move");
  WADP_CHECK_MSG(spec.streams >= 1, "flow needs at least one stream");
  WADP_CHECK_MSG(spec.buffer > 0, "flow needs a socket buffer");

  advance_to(sim_.now());

  const FlowId id = next_id_++;
  Flow flow;
  flow.start = sim_.now();
  flow.remaining = static_cast<double>(spec.size);
  flow.ramp_rtts_total = rtts_to_fill_window(spec.path->tcp(), spec.buffer);
  flow.rtt = spec.path->effective_rtt(sim_.now());
  flow.spec = std::move(spec);
  flows_.emplace(id, std::move(flow));

  reallocate(sim_.now());
  schedule_next();
  return id;
}

bool FluidEngine::cancel_flow(FlowId id) {
  advance_to(sim_.now());
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  flows_.erase(it);
  reallocate(sim_.now());
  schedule_next();
  return true;
}

Bandwidth FluidEngine::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

std::optional<FluidEngine::FlowProgress> FluidEngine::progress(FlowId id) {
  advance_to(sim_.now());
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  const Flow& f = it->second;
  FlowProgress p;
  p.total = f.spec.size;
  const auto remaining = static_cast<Bytes>(f.remaining);
  p.moved = f.spec.size > remaining ? f.spec.size - remaining : 0;
  p.rate = f.rate;
  return p;
}

std::optional<FluidEngine::FlowProgress> FluidEngine::interrupt_flow(
    FlowId id) {
  advance_to(sim_.now());
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  const Flow& f = it->second;
  FlowProgress p;
  p.total = f.spec.size;
  const auto remaining = static_cast<Bytes>(f.remaining);
  p.moved = f.spec.size > remaining ? f.spec.size - remaining : 0;
  p.rate = f.rate;
  flows_.erase(it);
  reallocate(sim_.now());
  schedule_next();
  return p;
}

void FluidEngine::advance_to(SimTime t) {
  if (flows_.empty()) {
    last_update_ = t;
    return;
  }
  const Duration elapsed = t - last_update_;
  WADP_CHECK(elapsed >= 0.0);
  last_update_ = t;
  if (elapsed == 0.0) return;

  struct Completion {
    FlowStats stats;
    std::function<void(const FlowStats&)> callback;
  };
  std::vector<Completion> done;

  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    f.remaining -= f.rate * elapsed;
    // A flow also completes when its residue would drain within one
    // time quantum — the engine cannot schedule anything finer.
    if (f.remaining <= kCompletionEpsilon ||
        f.remaining <= f.rate * kTimeQuantum) {
      FlowStats stats;
      stats.id = it->first;
      stats.start = f.start;
      stats.end = t;
      stats.bytes = f.spec.size;
      done.push_back({stats, std::move(f.spec.on_complete)});
      it = flows_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }

  // Callbacks run after bookkeeping so they can start new flows safely.
  for (auto& c : done) {
    if (c.callback) c.callback(c.stats);
  }
}

void FluidEngine::reallocate(SimTime t) {
  if (flows_.empty()) return;

  // Collect the distinct resources touched by active flows.
  std::vector<CapacityProvider*> resources;
  const auto resource_index = [&](CapacityProvider* r) {
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (resources[i] == r) return i;
    }
    resources.push_back(r);
    return resources.size() - 1;
  };

  struct Member {
    std::size_t resource;
    double weight;
  };
  struct Entry {
    Flow* flow;
    double cap;                 // TCP ramp/window ceiling
    std::vector<Member> members;
    bool fixed = false;
  };
  std::vector<Entry> entries;
  entries.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    Entry e;
    e.flow = &flow;
    e.cap = flow_cap(flow, t);
    e.members.push_back(
        {resource_index(flow.spec.path), static_cast<double>(flow.spec.streams)});
    for (CapacityProvider* extra : flow.spec.extra_resources) {
      e.members.push_back({resource_index(extra), 1.0});
    }
    entries.push_back(std::move(e));
  }

  std::vector<double> residual(resources.size());
  for (std::size_t i = 0; i < resources.size(); ++i) {
    residual[i] = std::max(0.0, resources[i]->capacity_at(t));
  }

  // Weighted max-min: repeatedly find the most constrained flow, fix it,
  // and release its resource consumption from the pools.
  std::size_t unfixed = entries.size();
  while (unfixed > 0) {
    std::vector<double> pool_weight(resources.size(), 0.0);
    for (const Entry& e : entries) {
      if (e.fixed) continue;
      for (const Member& m : e.members) pool_weight[m.resource] += m.weight;
    }

    double min_tentative = std::numeric_limits<double>::infinity();
    for (Entry& e : entries) {
      if (e.fixed) continue;
      double share = std::numeric_limits<double>::infinity();
      for (const Member& m : e.members) {
        WADP_CHECK(pool_weight[m.resource] > 0.0);
        share = std::min(share,
                         residual[m.resource] * m.weight / pool_weight[m.resource]);
      }
      const double tentative = std::min(e.cap, share);
      min_tentative = std::min(min_tentative, tentative);
      e.flow->rate = tentative;  // provisional; final for fixed flows below
    }

    // Fix every flow at the minimum (ties fix together), release capacity.
    const double threshold = min_tentative * (1.0 + 1e-12) + 1e-9;
    bool fixed_any = false;
    for (Entry& e : entries) {
      if (e.fixed || e.flow->rate > threshold) continue;
      e.fixed = true;
      fixed_any = true;
      --unfixed;
      for (const Member& m : e.members) {
        residual[m.resource] = std::max(0.0, residual[m.resource] - e.flow->rate);
      }
    }
    WADP_CHECK_MSG(fixed_any, "max-min allocation failed to converge");
  }
}

void FluidEngine::schedule_next() {
  if (pending_wake_ != 0) {
    sim_.cancel(pending_wake_);
    pending_wake_ = 0;
  }
  if (flows_.empty()) return;

  const SimTime now = sim_.now();
  SimTime next = kNeverTime;

  std::vector<const CapacityProvider*> seen;
  for (const auto& [id, f] : flows_) {
    // Earliest completion at current rate (never below the quantum).
    if (f.rate > 0.0) {
      next = std::min(next, now + std::max(f.remaining / f.rate, kTimeQuantum));
    }
    // Next slow-start doubling (only while ramping).
    const Duration elapsed = now - f.start;
    const Duration rtt = f.rtt;
    const int rtts_done = elapsed_rtts(rtt, elapsed);
    if (rtts_done < f.ramp_rtts_total) {
      const SimTime ramp_next = f.start + (rtts_done + 1) * rtt;
      if (ramp_next > now) next = std::min(next, ramp_next);
    }
    // Resource load-grid changes.
    const auto consider = [&](const CapacityProvider* r) {
      for (const CapacityProvider* s : seen) {
        if (s == r) return;
      }
      seen.push_back(r);
      next = std::min(next, r->next_change_after(now));
    };
    consider(f.spec.path);
    for (const CapacityProvider* extra : f.spec.extra_resources) consider(extra);
  }

  if (next == kNeverTime) return;
  // Guard against zero-length self-wake loops from float coincidences.
  if (next <= now + kTimeQuantum) next = now + kTimeQuantum;
  pending_wake_ = sim_.schedule_at(next, [this] {
    pending_wake_ = 0;
    wake();
  });
}

void FluidEngine::wake() {
  advance_to(sim_.now());
  reallocate(sim_.now());
  schedule_next();
}

}  // namespace wadp::net
