#include "net/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::net {
namespace {

/// Residual fluid below which a flow counts as finished (half a byte —
/// far below anything observable at wide-area rates).
constexpr double kCompletionEpsilon = 0.5;

/// Minimum forward step the engine schedules.  SimTime is an epoch-
/// seconds double (~1e9), whose ulp is ~1.2e-7 s: steps below the ulp
/// would schedule a wake at an *unchanged* timestamp and spin forever.
/// One microsecond is comfortably above the ulp and far below anything
/// a wide-area transfer can resolve.
constexpr double kTimeQuantum = 1e-6;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Engine-wide counters; totals aggregate across engines in a process.
struct NetMetrics {
  obs::Counter& started = obs::Registry::global().counter(
      "wadp_net_flows_started_total", {}, "Flows started on any engine");
  obs::Counter& completed = obs::Registry::global().counter(
      "wadp_net_flows_completed_total", {}, "Flows completed on any engine");
  obs::Counter& reallocs = obs::Registry::global().counter(
      "wadp_net_reallocs_total", {},
      "Applied max-min waterfill passes (incremental or global)");
  obs::Counter& realloc_flows = obs::Registry::global().counter(
      "wadp_net_realloc_flows_total", {},
      "Flow entries recomputed across waterfill passes");
  obs::Counter& realloc_ns = obs::Registry::global().counter(
      "wadp_net_realloc_ns_total", {},
      "Wall nanoseconds spent in applied waterfill passes");
  obs::Counter& sweeps = obs::Registry::global().counter(
      "wadp_net_sweeps_total", {},
      "Lazy-mode dirty-set coalescing sweeps");
  obs::Counter& verify_mismatches = obs::Registry::global().counter(
      "wadp_net_verify_mismatches_total", {},
      "Incremental-allocator rates diverging from the reference "
      "recompute — the net.verify_mismatch SLO rule watches this");
  obs::Gauge& active = obs::Registry::global().gauge(
      "wadp_net_active_flows", {}, "Currently active flows");
  obs::Gauge& util_max = obs::Registry::global().gauge(
      "wadp_net_link_utilization_max_pct", {},
      "Max resource utilization among resources touched by the last "
      "reallocation");

  static NetMetrics& get() {
    static NetMetrics metrics;
    return metrics;
  }
};

}  // namespace

template <typename Fn>
void FluidEngine::for_each_resource(const Flow& f, Fn&& fn) {
  const double stream_weight = static_cast<double>(f.spec.streams);
  if (f.spec.path != nullptr) {
    fn(static_cast<CapacityProvider*>(f.spec.path), stream_weight);
  } else {
    for (CapacityProvider* link : f.spec.links) fn(link, stream_weight);
  }
  for (CapacityProvider* extra : f.spec.extra_resources) fn(extra, 1.0);
}

Bandwidth FluidEngine::flow_cap(const Flow& f, SimTime t) const {
  const Duration elapsed = t - f.start;
  return static_cast<double>(f.spec.streams) *
         ramp_rate_cap(f.tcp, f.spec.buffer, f.rtt, elapsed);
}

FlowId FluidEngine::start_flow(FlowSpec spec) {
  WADP_CHECK_MSG(spec.path != nullptr || !spec.links.empty(),
                 "flow needs a path or a link route");
  WADP_CHECK_MSG(spec.path == nullptr || spec.links.empty(),
                 "flow route is either a path or links, not both");
  WADP_CHECK_MSG(spec.size > 0, "flow needs bytes to move");
  WADP_CHECK_MSG(spec.streams >= 1, "flow needs at least one stream");
  WADP_CHECK_MSG(spec.buffer > 0, "flow needs a socket buffer");

  if (!config_.lazy_progress) advance_to(sim_.now());

  const SimTime now = sim_.now();
  const FlowId id = next_id_++;
  Flow flow;
  flow.start = now;
  flow.remaining = static_cast<double>(spec.size);
  flow.tcp = spec.path != nullptr ? spec.path->tcp() : spec.tcp;
  flow.ramp_rtts_total = rtts_to_fill_window(flow.tcp, spec.buffer);
  flow.rtt = spec.path != nullptr ? spec.path->effective_rtt(now)
                                  : spec.base_rtt;
  WADP_CHECK_MSG(flow.rtt > 0.0, "flow needs a positive rtt");
  flow.integrated_to = now;
  flow.spec = std::move(spec);
  register_flow(id, std::move(flow));

  NetMetrics::get().started.inc();
  NetMetrics::get().active.set(static_cast<double>(flows_.size()));

  if (config_.lazy_progress) {
    request_sweep();
  } else {
    realloc_dirty(now);
    schedule_next();
  }
  return id;
}

void FluidEngine::register_flow(FlowId id, Flow&& flow) {
  const auto [it, inserted] = flows_.emplace(id, std::move(flow));
  WADP_CHECK(inserted);
  Flow& f = it->second;
  const SimTime now = sim_.now();
  for_each_resource(f, [&](CapacityProvider* r, double) {
    auto [rit, fresh] = resources_.try_emplace(r);
    ResourceState& state = rit->second;
    if (fresh) {
      state.capacity_cached = r->capacity_at(now);
      if (config_.lazy_progress) arm_load_event(r, state);
    }
    state.members.push_back(id);
    if (!state.dirty) {
      state.dirty = true;
      dirty_resources_.push_back(r);
    }
  });
  if (config_.lazy_progress && f.ramp_rtts_total > 0) arm_ramp(id, f);
}

void FluidEngine::unlink_flow(FlowId id, Flow& f) {
  const SimTime now = sim_.now();
  for_each_resource(f, [&](CapacityProvider* r, double) {
    const auto rit = resources_.find(r);
    if (rit == resources_.end()) return;
    ResourceState& state = rit->second;
    std::erase(state.members, id);
    if (state.members.empty()) {
      // Last flow gone: the resource reads as idle from now on.
      r->on_allocation(now, 0.0);
      if (state.load_ev != 0) sim_.cancel(state.load_ev);
      resources_.erase(rit);
    } else if (!state.dirty) {
      state.dirty = true;
      dirty_resources_.push_back(r);
    }
  });
  if (f.completion_ev != 0) {
    sim_.cancel(f.completion_ev);
    f.completion_ev = 0;
  }
  if (f.ramp_ev != 0) {
    sim_.cancel(f.ramp_ev);
    f.ramp_ev = 0;
  }
}

void FluidEngine::mark_resources_dirty(const Flow& f) {
  for_each_resource(f, [&](CapacityProvider* r, double) {
    const auto rit = resources_.find(r);
    if (rit == resources_.end()) return;
    if (!rit->second.dirty) {
      rit->second.dirty = true;
      dirty_resources_.push_back(r);
    }
  });
}

bool FluidEngine::cancel_flow(FlowId id) {
  if (!config_.lazy_progress) advance_to(sim_.now());
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  unlink_flow(id, it->second);
  flows_.erase(it);
  NetMetrics::get().active.set(static_cast<double>(flows_.size()));
  if (config_.lazy_progress) {
    request_sweep();
  } else {
    realloc_dirty(sim_.now());
    schedule_next();
  }
  return true;
}

Bandwidth FluidEngine::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

std::optional<FluidEngine::FlowProgress> FluidEngine::progress(FlowId id) {
  if (!config_.lazy_progress) {
    advance_to(sim_.now());
  } else {
    const auto lit = flows_.find(id);
    if (lit != flows_.end()) integrate_flow(id, lit->second, sim_.now());
  }
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  const Flow& f = it->second;
  FlowProgress p;
  p.total = f.spec.size;
  const auto remaining = static_cast<Bytes>(std::max(0.0, f.remaining));
  p.moved = f.spec.size > remaining ? f.spec.size - remaining : 0;
  p.rate = f.rate;
  return p;
}

std::optional<FluidEngine::FlowProgress> FluidEngine::interrupt_flow(
    FlowId id) {
  if (!config_.lazy_progress) advance_to(sim_.now());
  const auto it = flows_.find(id);
  if (it == flows_.end()) return std::nullopt;
  Flow& f = it->second;
  if (config_.lazy_progress) integrate_flow(id, f, sim_.now());
  FlowProgress p;
  p.total = f.spec.size;
  const auto remaining = static_cast<Bytes>(std::max(0.0, f.remaining));
  p.moved = f.spec.size > remaining ? f.spec.size - remaining : 0;
  p.rate = f.rate;
  unlink_flow(id, f);
  flows_.erase(it);
  NetMetrics::get().active.set(static_cast<double>(flows_.size()));
  if (config_.lazy_progress) {
    request_sweep();
  } else {
    realloc_dirty(sim_.now());
    schedule_next();
  }
  return p;
}

// ---------------------------------------------------------------------
// Eager mode: whole-engine integration and a single pending wake-up.
// This is the original engine's schedule, preserved bit-identically.

void FluidEngine::advance_to(SimTime t) {
  if (flows_.empty()) {
    last_update_ = t;
    return;
  }
  const Duration elapsed = t - last_update_;
  WADP_CHECK(elapsed >= 0.0);
  last_update_ = t;
  if (elapsed == 0.0) return;

  struct Completion {
    FlowStats stats;
    std::function<void(const FlowStats&)> callback;
  };
  std::vector<Completion> done;

  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    f.remaining -= f.rate * elapsed;
    // A flow also completes when its residue would drain within one
    // time quantum — the engine cannot schedule anything finer.
    if (f.remaining <= kCompletionEpsilon ||
        f.remaining <= f.rate * kTimeQuantum) {
      FlowStats stats;
      stats.id = it->first;
      stats.start = f.start;
      stats.end = t;
      stats.bytes = f.spec.size;
      unlink_flow(it->first, f);
      done.push_back({stats, std::move(f.spec.on_complete)});
      it = flows_.erase(it);
      ++completed_;
      NetMetrics::get().completed.inc();
    } else {
      ++it;
    }
  }
  NetMetrics::get().active.set(static_cast<double>(flows_.size()));

  // Callbacks run after bookkeeping so they can start new flows safely.
  for (auto& c : done) {
    if (c.callback) c.callback(c.stats);
  }
}

void FluidEngine::scan_for_changes(SimTime t) {
  // A resource is dirty when its available capacity moved off the value
  // used by its component's last waterfill; a flow when its TCP cap
  // crossed a slow-start boundary.  Components with no change recompute
  // to the identical rates, so skipping them is exact.
  for (auto& [r, state] : resources_) {
    const double capacity = r->capacity_at(t);
    if (capacity != state.capacity_cached) {
      state.capacity_cached = capacity;
      if (!state.dirty) {
        state.dirty = true;
        dirty_resources_.push_back(r);
      }
    }
  }
  for (auto& [id, f] : flows_) {
    if (flow_cap(f, t) != f.cached_cap) mark_resources_dirty(f);
  }
}

void FluidEngine::schedule_next() {
  if (pending_wake_ != 0) {
    sim_.cancel(pending_wake_);
    pending_wake_ = 0;
  }
  if (flows_.empty()) return;

  const SimTime now = sim_.now();
  SimTime next = kNeverTime;

  std::vector<const CapacityProvider*> seen;
  for (const auto& [id, f] : flows_) {
    // Earliest completion at current rate (never below the quantum).
    if (f.rate > 0.0) {
      next = std::min(next, now + std::max(f.remaining / f.rate, kTimeQuantum));
    }
    // Next slow-start doubling (only while ramping).
    const Duration elapsed = now - f.start;
    const Duration rtt = f.rtt;
    const int rtts_done = elapsed_rtts(rtt, elapsed);
    if (rtts_done < f.ramp_rtts_total) {
      const SimTime ramp_next = f.start + (rtts_done + 1) * rtt;
      if (ramp_next > now) next = std::min(next, ramp_next);
    }
    // Resource load-grid changes.
    for_each_resource(f, [&](const CapacityProvider* r, double) {
      for (const CapacityProvider* s : seen) {
        if (s == r) return;
      }
      seen.push_back(r);
      next = std::min(next, r->next_change_after(now));
    });
  }

  if (next == kNeverTime) return;
  // Guard against zero-length self-wake loops from float coincidences.
  if (next <= now + kTimeQuantum) next = now + kTimeQuantum;
  pending_wake_ = sim_.schedule_at(next, [this] {
    pending_wake_ = 0;
    wake();
  });
}

void FluidEngine::wake() {
  advance_to(sim_.now());
  scan_for_changes(sim_.now());
  realloc_dirty(sim_.now());
  schedule_next();
}

// ---------------------------------------------------------------------
// Allocation: dirty-component collection and the max-min waterfill.

void FluidEngine::collect_dirty_components(
    std::vector<FlowId>& ids, std::vector<CapacityProvider*>& resources) {
  ++visit_epoch_;
  std::unordered_set<FlowId> visited_flows;
  std::vector<CapacityProvider*> stack;

  for (CapacityProvider* seed : dirty_resources_) {
    const auto sit = resources_.find(seed);
    if (sit == resources_.end()) continue;  // last member already left
    sit->second.dirty = false;
    if (sit->second.visit_mark == visit_epoch_) continue;
    sit->second.visit_mark = visit_epoch_;
    ++stats_.components;
    stack.push_back(seed);
    while (!stack.empty()) {
      CapacityProvider* r = stack.back();
      stack.pop_back();
      resources.push_back(r);
      for (const FlowId id : resources_.at(r).members) {
        if (!visited_flows.insert(id).second) continue;
        ids.push_back(id);
        const auto fit = flows_.find(id);
        WADP_CHECK(fit != flows_.end());
        for_each_resource(fit->second, [&](CapacityProvider* other, double) {
          const auto oit = resources_.find(other);
          if (oit == resources_.end()) return;
          ResourceState& state = oit->second;
          if (state.visit_mark == visit_epoch_) return;
          state.visit_mark = visit_epoch_;
          state.dirty = false;
          stack.push_back(other);
        });
      }
    }
  }
  dirty_resources_.clear();
  // Ascending FlowId: matches the reference allocator's map iteration,
  // which keeps the waterfill arithmetic order-identical.
  std::sort(ids.begin(), ids.end());
}

FluidEngine::WaterfillResult FluidEngine::waterfill(
    const std::vector<FlowId>& ids, SimTime t, bool apply,
    std::vector<double>* scratch) {
  WaterfillResult result;
  result.flows = ids.size();
  if (ids.empty()) return result;

  // Resources indexed by first touch over flows in id order — the
  // iteration order the original global allocator used, preserved so
  // float accumulation is bit-identical.
  std::vector<CapacityProvider*> resources;
  std::unordered_map<CapacityProvider*, std::size_t> resource_index;
  const auto index_of = [&](CapacityProvider* r) {
    const auto [it, fresh] = resource_index.try_emplace(r, resources.size());
    if (fresh) resources.push_back(r);
    return it->second;
  };

  struct Member {
    std::size_t resource;
    double weight;
  };
  struct Entry {
    Flow* flow;
    double cap;  // TCP ramp/window ceiling
    std::vector<Member> members;
    bool fixed = false;
    double rate = 0.0;
  };
  std::vector<Entry> entries;
  entries.reserve(ids.size());
  for (const FlowId id : ids) {
    const auto fit = flows_.find(id);
    WADP_CHECK(fit != flows_.end());
    Flow& flow = fit->second;
    Entry e;
    e.flow = &flow;
    e.cap = flow_cap(flow, t);
    for_each_resource(flow, [&](CapacityProvider* r, double weight) {
      e.members.push_back({index_of(r), weight});
    });
    entries.push_back(std::move(e));
  }

  std::vector<double> residual(resources.size());
  for (std::size_t i = 0; i < resources.size(); ++i) {
    residual[i] = std::max(0.0, resources[i]->capacity_at(t));
  }

  // Weighted max-min: repeatedly find the most constrained flow, fix it,
  // and release its resource consumption from the pools.
  std::size_t unfixed = entries.size();
  while (unfixed > 0) {
    std::vector<double> pool_weight(resources.size(), 0.0);
    for (const Entry& e : entries) {
      if (e.fixed) continue;
      for (const Member& m : e.members) pool_weight[m.resource] += m.weight;
    }

    double min_tentative = std::numeric_limits<double>::infinity();
    for (Entry& e : entries) {
      if (e.fixed) continue;
      double share = std::numeric_limits<double>::infinity();
      for (const Member& m : e.members) {
        WADP_CHECK(pool_weight[m.resource] > 0.0);
        share = std::min(
            share, residual[m.resource] * m.weight / pool_weight[m.resource]);
      }
      const double tentative = std::min(e.cap, share);
      min_tentative = std::min(min_tentative, tentative);
      e.rate = tentative;  // provisional; final once fixed below
    }

    // Fix every flow at the minimum (ties fix together), release capacity.
    const double threshold = min_tentative * (1.0 + 1e-12) + 1e-9;
    bool fixed_any = false;
    for (Entry& e : entries) {
      if (e.fixed || e.rate > threshold) continue;
      e.fixed = true;
      fixed_any = true;
      --unfixed;
      for (const Member& m : e.members) {
        residual[m.resource] = std::max(0.0, residual[m.resource] - e.rate);
      }
    }
    WADP_CHECK_MSG(fixed_any, "max-min allocation failed to converge");
  }

  if (apply) {
    for (Entry& e : entries) {
      e.flow->rate = e.rate;
      e.flow->cached_cap = e.cap;
    }
  } else {
    WADP_CHECK(scratch != nullptr);
    scratch->resize(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      (*scratch)[i] = entries[i].rate;
    }
  }
  return result;
}

void FluidEngine::realloc_dirty(SimTime t) {
  if (dirty_resources_.empty()) return;
  if (flows_.empty()) {
    for (CapacityProvider* r : dirty_resources_) {
      const auto it = resources_.find(r);
      if (it != resources_.end()) it->second.dirty = false;
    }
    dirty_resources_.clear();
    return;
  }

  std::vector<FlowId> ids;
  std::vector<CapacityProvider*> touched;
  if (config_.allocator == AllocatorKind::kReference) {
    for (CapacityProvider* r : dirty_resources_) {
      const auto it = resources_.find(r);
      if (it != resources_.end()) it->second.dirty = false;
    }
    dirty_resources_.clear();
    ids.reserve(flows_.size());
    for (const auto& [id, f] : flows_) ids.push_back(id);
    ++stats_.components;
  } else {
    collect_dirty_components(ids, touched);
  }
  if (ids.empty()) return;

  const std::uint64_t begin = now_ns();
  const WaterfillResult result = waterfill(ids, t, /*apply=*/true, nullptr);
  const std::uint64_t ns = now_ns() - begin;
  ++stats_.reallocs;
  stats_.flows_touched += result.flows;
  stats_.alloc_ns += ns;
  NetMetrics::get().reallocs.inc();
  NetMetrics::get().realloc_flows.inc(result.flows);
  NetMetrics::get().realloc_ns.inc(ns);

  if (config_.reference_sample_every > 0 &&
      stats_.reallocs % config_.reference_sample_every == 0) {
    reference_shadow(t, /*verify=*/false);
  }
  if (config_.verify_allocator &&
      config_.allocator == AllocatorKind::kIncremental) {
    reference_shadow(t, /*verify=*/true);
  }
  report_allocations(ids, t);
}

void FluidEngine::report_allocations(const std::vector<FlowId>& ids,
                                     SimTime t) {
  // Sum allocated rate per resource touched by the recomputed flows and
  // report it — the hook links use to record utilization series.
  std::vector<CapacityProvider*> order;
  std::unordered_map<CapacityProvider*, double> sums;
  for (const FlowId id : ids) {
    const auto fit = flows_.find(id);
    if (fit == flows_.end()) continue;  // completed during this instant
    const Flow& f = fit->second;
    for_each_resource(f, [&](CapacityProvider* r, double) {
      const auto [it, fresh] = sums.try_emplace(r, 0.0);
      if (fresh) order.push_back(r);
      it->second += f.rate;
    });
  }
  double max_util = 0.0;
  for (CapacityProvider* r : order) {
    const double allocated = sums[r];
    r->on_allocation(t, allocated);
    const double capacity = r->capacity_at(t);
    if (capacity > 0.0) max_util = std::max(max_util, allocated / capacity);
  }
  if (!order.empty()) {
    NetMetrics::get().util_max.set(100.0 * max_util);
  }
}

void FluidEngine::reference_shadow(SimTime t, bool verify) {
  if (flows_.empty()) return;
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, f] : flows_) ids.push_back(id);

  std::vector<double> scratch;
  const std::uint64_t begin = now_ns();
  waterfill(ids, t, /*apply=*/false, &scratch);
  stats_.reference_ns += now_ns() - begin;
  ++stats_.reference_samples;
  stats_.reference_flows += ids.size();

  if (!verify) return;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Flow& f = flows_.at(ids[i]);
    if (f.rate != scratch[i]) {
      ++stats_.verify_mismatches;
      NetMetrics::get().verify_mismatches.inc();
      if (first_mismatch_.empty()) {
        first_mismatch_ = "flow " + std::to_string(ids[i]) + " at t=" +
                          std::to_string(t) + ": incremental=" +
                          std::to_string(f.rate) +
                          " reference=" + std::to_string(scratch[i]);
      }
    }
  }
}

std::size_t FluidEngine::compare_with_reference() {
  if (flows_.empty()) return 0;
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, f] : flows_) ids.push_back(id);
  std::vector<double> scratch;
  waterfill(ids, sim_.now(), /*apply=*/false, &scratch);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (flows_.at(ids[i]).rate != scratch[i]) ++mismatches;
  }
  return mismatches;
}

// ---------------------------------------------------------------------
// Lazy mode: per-flow completion/ramp events, per-resource load events,
// and a same-instant coalescing sweep.

void FluidEngine::request_sweep() {
  if (sweep_pending_) return;
  sweep_pending_ = true;
  // Scheduled at the current instant: the simulator's FIFO tie-break
  // runs it after every already-queued event of this timestamp, so all
  // same-instant dirt lands in one sweep.
  sim_.schedule_at(sim_.now(), [this] { sweep(); });
}

void FluidEngine::integrate_flow(FlowId, Flow& f, SimTime t) {
  const Duration elapsed = t - f.integrated_to;
  if (elapsed <= 0.0) return;
  f.remaining -= f.rate * elapsed;
  f.integrated_to = t;
}

void FluidEngine::arm_completion(FlowId id, Flow& f) {
  if (f.completion_ev != 0) {
    sim_.cancel(f.completion_ev);
    f.completion_ev = 0;
  }
  if (f.rate <= 0.0) return;  // starved: a later reallocation re-arms
  const SimTime now = sim_.now();
  SimTime when = f.integrated_to + f.remaining / f.rate;
  if (when <= now + kTimeQuantum) when = now + kTimeQuantum;
  f.completion_ev = sim_.schedule_at(when, [this, id] {
    const auto it = flows_.find(id);
    WADP_CHECK(it != flows_.end());
    Flow& flow = it->second;
    flow.completion_ev = 0;
    integrate_flow(id, flow, sim_.now());
    if (flow.remaining <= kCompletionEpsilon ||
        flow.remaining <= flow.rate * kTimeQuantum) {
      finish_flow(id, sim_.now());
    } else {
      arm_completion(id, flow);  // float residue: nudge forward
    }
  });
}

void FluidEngine::arm_ramp(FlowId id, Flow& f) {
  if (f.ramp_ev != 0) {
    sim_.cancel(f.ramp_ev);
    f.ramp_ev = 0;
  }
  const SimTime now = sim_.now();
  const int rtts_done = elapsed_rtts(f.rtt, now - f.start);
  if (rtts_done >= f.ramp_rtts_total) return;  // window filled
  SimTime when = f.start + (rtts_done + 1) * f.rtt;
  if (when <= now + kTimeQuantum) when = now + kTimeQuantum;
  f.ramp_ev = sim_.schedule_at(when, [this, id] {
    const auto it = flows_.find(id);
    WADP_CHECK(it != flows_.end());
    Flow& flow = it->second;
    flow.ramp_ev = 0;
    mark_resources_dirty(flow);
    request_sweep();
    arm_ramp(id, flow);
  });
}

void FluidEngine::arm_load_event(CapacityProvider* resource,
                                 ResourceState& state) {
  if (state.load_ev != 0) {
    sim_.cancel(state.load_ev);
    state.load_ev = 0;
  }
  const SimTime when = resource->next_change_after(sim_.now());
  if (when == kNeverTime) return;
  state.load_ev = sim_.schedule_at(when, [this, resource] {
    const auto it = resources_.find(resource);
    if (it == resources_.end()) return;  // deregistered meanwhile
    it->second.load_ev = 0;
    if (!it->second.dirty) {
      it->second.dirty = true;
      dirty_resources_.push_back(resource);
    }
    request_sweep();
    arm_load_event(resource, it->second);
  });
}

void FluidEngine::finish_flow(FlowId id, SimTime t) {
  const auto it = flows_.find(id);
  WADP_CHECK(it != flows_.end());
  Flow& f = it->second;
  FlowStats stats;
  stats.id = id;
  stats.start = f.start;
  stats.end = t;
  stats.bytes = f.spec.size;
  auto callback = std::move(f.spec.on_complete);
  unlink_flow(id, f);
  flows_.erase(it);
  ++completed_;
  NetMetrics::get().completed.inc();
  NetMetrics::get().active.set(static_cast<double>(flows_.size()));
  request_sweep();
  if (callback) callback(stats);
}

void FluidEngine::sweep() {
  sweep_pending_ = false;
  const SimTime t = sim_.now();
  ++stats_.sweeps;
  NetMetrics::get().sweeps.inc();
  if (dirty_resources_.empty()) return;

  std::vector<FlowId> ids;
  std::vector<CapacityProvider*> touched;
  if (config_.allocator == AllocatorKind::kReference) {
    for (CapacityProvider* r : dirty_resources_) {
      const auto it = resources_.find(r);
      if (it != resources_.end()) it->second.dirty = false;
    }
    dirty_resources_.clear();
    ids.reserve(flows_.size());
    for (const auto& [id, f] : flows_) ids.push_back(id);
    ++stats_.components;
  } else {
    collect_dirty_components(ids, touched);
  }
  if (ids.empty()) return;

  // Bring the affected flows' byte counts to t; anything that drains in
  // the process completes after rates settle (callbacks last).
  std::vector<FlowId> drained;
  std::vector<FlowId> live;
  live.reserve(ids.size());
  for (const FlowId id : ids) {
    const auto fit = flows_.find(id);
    if (fit == flows_.end()) continue;
    Flow& f = fit->second;
    integrate_flow(id, f, t);
    if (f.remaining <= kCompletionEpsilon ||
        f.remaining <= f.rate * kTimeQuantum) {
      drained.push_back(id);
    } else {
      live.push_back(id);
    }
  }

  if (!live.empty()) {
    std::vector<double> previous(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      previous[i] = flows_.at(live[i]).rate;
    }

    const std::uint64_t begin = now_ns();
    const WaterfillResult result = waterfill(live, t, /*apply=*/true, nullptr);
    const std::uint64_t ns = now_ns() - begin;
    ++stats_.reallocs;
    stats_.flows_touched += result.flows;
    stats_.alloc_ns += ns;
    NetMetrics::get().reallocs.inc();
    NetMetrics::get().realloc_flows.inc(result.flows);
    NetMetrics::get().realloc_ns.inc(ns);

    for (std::size_t i = 0; i < live.size(); ++i) {
      Flow& f = flows_.at(live[i]);
      // A changed rate moves the completion instant; an unchanged rate
      // leaves the armed event valid (same remaining trajectory).
      if (f.rate != previous[i] || f.completion_ev == 0) {
        arm_completion(live[i], f);
      }
    }

    if (config_.reference_sample_every > 0 &&
        stats_.reallocs % config_.reference_sample_every == 0) {
      reference_shadow(t, /*verify=*/false);
    }
    if (config_.verify_allocator &&
        config_.allocator == AllocatorKind::kIncremental) {
      reference_shadow(t, /*verify=*/true);
    }
    report_allocations(live, t);
  }

  for (const FlowId id : drained) {
    if (flows_.contains(id)) finish_flow(id, t);
  }
}

}  // namespace wadp::net
