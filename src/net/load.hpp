// Background (cross-traffic) load on a wide-area path.
//
// The paper's predictors exist precisely because shared links carry
// competing traffic whose load varies "in unpredictable ways" (Section
// 2).  LoadProcess models the utilization a path experiences from that
// competing traffic as the sum of three components, evaluated on a
// fixed grid:
//
//   1. a diurnal sinusoid peaking in the local business afternoon — the
//      reason the paper's controlled transfers ran 6 pm to 8 am;
//   2. a mean-reverting AR(1) component for short-term fluctuation;
//   3. sporadic congestion episodes (Poisson arrivals, geometric
//      duration) adding a utilization step — the "one additional flow
//      is no longer insignificant" effect of Section 3.
//
// The process is a deterministic function of (seed, t): grid values are
// extended lazily but always in sequence, so any query order yields the
// same series.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace wadp::net {

struct LoadParams {
  double base = 0.35;            ///< long-run mean utilization
  double diurnal_amplitude = 0.25;  ///< peak-to-mean swing of the daily cycle
  double diurnal_peak_hour = 14.0;  ///< local hour of maximum load
  util::TimeZone zone = util::kUtc; ///< zone governing the diurnal phase
  double ar_phi = 0.97;          ///< AR(1) persistence per grid step
  double ar_sigma = 0.04;        ///< AR(1) innovation std-dev per step
  double episode_rate_per_hour = 0.12;  ///< congestion-episode arrivals
  double episode_mean_minutes = 25.0;   ///< mean episode duration
  double episode_utilization = 0.30;    ///< extra load during an episode
  double min_utilization = 0.0;  ///< clamp: shared links are never idle
  double max_utilization = 0.95; ///< clamp: links never fully starve
  Duration grid_step = 60.0;     ///< evaluation grid (seconds)
};

class LoadProcess {
 public:
  /// `origin` anchors grid index 0; queries before origin clamp to it.
  LoadProcess(LoadParams params, std::uint64_t seed, SimTime origin);

  /// Utilization in [0, max_utilization] at time t.
  double utilization(SimTime t) const;

  /// Convenience: fraction of capacity left for our transfers.
  double availability(SimTime t) const { return 1.0 - utilization(t); }

  /// Next instant strictly after t at which utilization may change
  /// (the next grid point).  The fluid engine re-evaluates rates there.
  SimTime next_change_after(SimTime t) const;

  const LoadParams& params() const { return params_; }

 private:
  void extend_to(std::size_t index) const;

  LoadParams params_;
  SimTime origin_;
  // Lazily extended grid state; mutable because utilization() is
  // logically const.  Extension is strictly sequential, so results do
  // not depend on query order.
  mutable util::Rng rng_;
  mutable std::vector<double> grid_;   // total utilization per step
  mutable double ar_state_ = 0.0;
  mutable std::size_t episode_steps_left_ = 0;
};

}  // namespace wadp::net
