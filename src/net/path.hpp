// Wide-area path model and site topology.
//
// A PathModel is one *direction* of a site pair (the paper's links are
// written source->sink: "LBL to ANL", "ISI to ANL").  It combines a
// bottleneck capacity, a round-trip time, TCP parameters, and a
// LoadProcess describing competing traffic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/load.hpp"
#include "net/provider.hpp"
#include "net/route.hpp"
#include "net/tcp.hpp"
#include "util/types.hpp"

namespace wadp::net {

struct PathParams {
  Bandwidth bottleneck = 12'500'000;  ///< bytes/s (~100 Mb/s, the paper's links)
  Duration rtt = 0.055;               ///< base (unloaded) round-trip time
  /// Queueing inflation: effective RTT = rtt * (1 + factor * utilization).
  /// Cross traffic fills router queues, stretching round trips — the
  /// dominant source of variability for slow-start-bound probes (the NWS
  /// series in Figs. 1-2) and a minor ramp effect for large transfers.
  double queueing_rtt_factor = 0.5;
  TcpParams tcp;
  LoadParams load;
};

class PathModel final : public CapacityProvider {
 public:
  PathModel(std::string source_site, std::string sink_site, PathParams params,
            std::uint64_t seed, SimTime origin);

  // CapacityProvider: bottleneck minus competing traffic.
  Bandwidth capacity_at(SimTime t) const override;
  SimTime next_change_after(SimTime t) const override;
  std::string_view resource_name() const override { return name_; }

  const std::string& source_site() const { return source_; }
  const std::string& sink_site() const { return sink_; }
  Duration rtt() const { return params_.rtt; }

  /// RTT including queueing delay from the instantaneous background
  /// load (see PathParams::queueing_rtt_factor).
  Duration effective_rtt(SimTime t) const;
  Bandwidth bottleneck() const { return params_.bottleneck; }
  /// Reconfigures the bottleneck capacity mid-run (a route change, a
  /// provisioning event — the drift scenarios the quality plane must
  /// catch).  Takes effect for capacity_at() calls from then on; call
  /// between transfers, not under one (in-flight progress integration
  /// assumes capacity changes only at load-process events).
  void set_bottleneck(Bandwidth bottleneck) { params_.bottleneck = bottleneck; }
  const TcpParams& tcp() const { return params_.tcp; }
  const LoadProcess& load() const { return load_; }

 private:
  std::string source_;
  std::string sink_;
  std::string name_;
  PathParams params_;
  LoadProcess load_;
};

/// Directed site-pair -> path registry.  Owns the paths.  Resolves each
/// registered pair to its single-segment route (the paper's testbed
/// shape: one PathModel is the whole wide-area route).
class Topology : public PathResolver {
 public:
  /// Registers the path for source->sink; at most one per ordered pair.
  PathModel& add_path(std::string source_site, std::string sink_site,
                      PathParams params, std::uint64_t seed, SimTime origin);

  /// nullptr when no such directed path exists.
  PathModel* find(std::string_view source_site, std::string_view sink_site);
  const PathModel* find(std::string_view source_site,
                        std::string_view sink_site) const;

  // PathResolver: the registered path, as a single-segment route.
  std::optional<ResolvedRoute> resolve(std::string_view source_site,
                                       std::string_view sink_site) override;

  std::vector<const PathModel*> paths() const;
  std::size_t size() const { return paths_.size(); }

 private:
  // Keyed by "source|sink"; '|' cannot appear in site names (checked on add).
  std::map<std::string, std::unique_ptr<PathModel>, std::less<>> paths_;
};

}  // namespace wadp::net
