// Abstract capacity provider: anything a data flow can be limited by.
//
// The fluid engine (fabric.hpp) allocates rates across a set of shared
// resources.  Network paths (net/path.hpp) and storage systems
// (storage/storage.hpp) both implement this interface, which is what
// lets the simulator reproduce the paper's premise that the *end-to-end*
// path — network AND storage AND server — governs transfer performance
// (Section 3).
#pragma once

#include <string_view>

#include "util/types.hpp"

namespace wadp::net {

class CapacityProvider {
 public:
  virtual ~CapacityProvider() = default;

  /// Instantaneous capacity available to wadp flows, bytes/sec.  Must be
  /// strictly positive (starved-but-alive is modelled by small values).
  virtual Bandwidth capacity_at(SimTime t) const = 0;

  /// Next instant strictly after `t` at which capacity_at may change,
  /// or kNeverTime for static resources.  The fluid engine re-evaluates
  /// allocations at these instants.
  virtual SimTime next_change_after(SimTime t) const = 0;

  /// Stable diagnostic name ("path:lbl->anl", "storage:anl/read").
  virtual std::string_view resource_name() const = 0;

  /// The fluid engine reports the total rate it allocated across this
  /// resource whenever the allocation changes.  Default no-op; links
  /// override it to record utilization series for the predictor plane.
  virtual void on_allocation(SimTime t, Bandwidth allocated) {
    (void)t;
    (void)allocated;
  }
};

}  // namespace wadp::net
