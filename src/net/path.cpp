#include "net/path.hpp"

#include "util/error.hpp"

namespace wadp::net {
namespace {

std::string pair_key(std::string_view source, std::string_view sink) {
  std::string key;
  key.reserve(source.size() + 1 + sink.size());
  key.append(source);
  key.push_back('|');
  key.append(sink);
  return key;
}

}  // namespace

PathModel::PathModel(std::string source_site, std::string sink_site,
                     PathParams params, std::uint64_t seed, SimTime origin)
    : source_(std::move(source_site)),
      sink_(std::move(sink_site)),
      name_("path:" + source_ + "->" + sink_),
      params_(params),
      load_(params.load, seed, origin) {
  WADP_CHECK(params_.bottleneck > 0.0);
  WADP_CHECK(params_.rtt > 0.0);
}

Bandwidth PathModel::capacity_at(SimTime t) const {
  return params_.bottleneck * load_.availability(t);
}

SimTime PathModel::next_change_after(SimTime t) const {
  return load_.next_change_after(t);
}

Duration PathModel::effective_rtt(SimTime t) const {
  return params_.rtt *
         (1.0 + params_.queueing_rtt_factor * load_.utilization(t));
}

PathModel& Topology::add_path(std::string source_site, std::string sink_site,
                              PathParams params, std::uint64_t seed,
                              SimTime origin) {
  WADP_CHECK_MSG(source_site.find('|') == std::string::npos &&
                     sink_site.find('|') == std::string::npos,
                 "site names must not contain '|'");
  auto key = pair_key(source_site, sink_site);
  auto path = std::make_unique<PathModel>(std::move(source_site),
                                          std::move(sink_site), params, seed,
                                          origin);
  auto [it, inserted] = paths_.emplace(std::move(key), std::move(path));
  WADP_CHECK_MSG(inserted, "duplicate path for site pair");
  return *it->second;
}

PathModel* Topology::find(std::string_view source_site,
                          std::string_view sink_site) {
  const auto it = paths_.find(pair_key(source_site, sink_site));
  return it == paths_.end() ? nullptr : it->second.get();
}

const PathModel* Topology::find(std::string_view source_site,
                                std::string_view sink_site) const {
  const auto it = paths_.find(pair_key(source_site, sink_site));
  return it == paths_.end() ? nullptr : it->second.get();
}

std::optional<ResolvedRoute> Topology::resolve(std::string_view source_site,
                                               std::string_view sink_site) {
  PathModel* path = find(source_site, sink_site);
  if (path == nullptr) return std::nullopt;
  ResolvedRoute route;
  route.path = path;
  route.rtt = path->rtt();
  route.bottleneck = path->bottleneck();
  route.tcp = path->tcp();
  return route;
}

std::vector<const PathModel*> Topology::paths() const {
  std::vector<const PathModel*> out;
  out.reserve(paths_.size());
  for (const auto& [key, path] : paths_) out.push_back(path.get());
  return out;
}

}  // namespace wadp::net
