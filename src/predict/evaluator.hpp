// Prediction-accuracy evaluation (Section 6.2).
//
// The Evaluator replays a measurement series the way the paper replays
// its log files: the first `training_count` observations are training
// prefix only; every later observation is predicted from the history
// before it, scored by absolute percentage error, and aggregated per
// predictor and per file-size class.  It also computes the paper's
// "relative performance" statistic (Figs. 14–21): for each transfer,
// which predictor was best and which was worst.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "predict/classifier.hpp"
#include "predict/observation.hpp"
#include "predict/predictors.hpp"
#include "util/stats.hpp"

namespace wadp::predict {

struct EvalConfig {
  /// Minimum log length before predictions start (Section 6.1 uses 15;
  /// note this does NOT guarantee 15 same-class values for classified
  /// predictors, exactly as the paper cautions).
  std::size_t training_count = 15;
  SizeClassifier classifier = SizeClassifier::paper_classes();
  bool keep_samples = true;  ///< retain the per-transfer prediction matrix
  /// Worker threads for the prediction phase.  Predictors are pure
  /// functions of the history, so the battery is embarrassingly
  /// parallel across its members; aggregation stays serial so results
  /// are bit-identical to the single-threaded run.  1 = serial.
  unsigned threads = 1;
  /// Prediction engine.  kStreaming replays the series once through the
  /// incremental battery (predict/incremental.hpp): O(N·P) total, with
  /// predictors lacking a streaming form transparently falling back to
  /// prefix recomputation.  kLegacy recomputes every prediction from
  /// the raw prefix — O(N²·P), kept for equivalence tests and as the
  /// reference for the throughput bench.  Aggregation is the same code
  /// either way.
  enum class Engine { kStreaming, kLegacy };
  Engine engine = Engine::kStreaming;
};

/// Streaming aggregate of percentage errors: one util::RunningStats
/// carries everything (exact running sum, Welford spread, min/max), so
/// this class is a thin view.  The mean keeps the exact sum/count
/// definition, bit-identical to the historical aggregation.
class ErrorStats {
 public:
  void add(double error) { acc_.add(error); }
  std::size_t count() const { return acc_.count(); }
  double sum() const { return acc_.sum(); }
  double mean() const {
    return count() ? sum() / static_cast<double>(count()) : 0.0;
  }
  double stddev() const { return acc_.stddev(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }

 private:
  util::RunningStats acc_;
};

/// Best/worst tallies for the relative-performance figures.
struct RelativeStats {
  std::size_t best = 0;           ///< transfers where this predictor won
  std::size_t worst = 0;          ///< transfers where it lost
  std::size_t opportunities = 0;  ///< transfers where it produced a prediction

  double best_pct() const {
    return opportunities ? 100.0 * static_cast<double>(best) /
                               static_cast<double>(opportunities)
                         : 0.0;
  }
  double worst_pct() const {
    return opportunities ? 100.0 * static_cast<double>(worst) /
                               static_cast<double>(opportunities)
                         : 0.0;
  }
};

/// One evaluated transfer: the measurement and every predictor's guess.
struct EvalSample {
  SimTime time = 0.0;
  Bytes file_size = 0;
  int size_class = 0;
  Bandwidth measured = 0.0;
  std::vector<std::optional<Bandwidth>> predictions;  // suite order
};

class EvaluationResult {
 public:
  EvaluationResult(std::vector<std::string> predictor_names, int num_classes);

  /// Error aggregate for `predictor` (input-order index) in `cls`, or
  /// across all classes when cls == kAllClasses.
  static constexpr int kAllClasses = -1;
  const ErrorStats& errors(std::size_t predictor, int cls = kAllClasses) const;
  const RelativeStats& relative(std::size_t predictor,
                                int cls = kAllClasses) const;

  const std::vector<std::string>& predictor_names() const { return names_; }
  int num_classes() const { return num_classes_; }
  std::size_t evaluated_transfers(int cls = kAllClasses) const;
  const std::vector<EvalSample>& samples() const { return samples_; }

  /// Index of `name` in the predictor list; nullopt when absent.
  /// O(1): backed by a name→index map built at construction.
  std::optional<std::size_t> index_of(std::string_view name) const;

 private:
  friend class Evaluator;
  std::size_t slot(std::size_t predictor, int cls) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> name_index_;
  int num_classes_;
  // Row-major [predictor][class+1] with class slot 0 = overall.
  std::vector<ErrorStats> errors_;
  std::vector<RelativeStats> relative_;
  std::vector<std::size_t> transfers_per_class_;  // slot 0 = overall
  std::vector<EvalSample> samples_;
};

/// Per-transfer percentage errors of one predictor in `cls`
/// (kAllClasses for everything), extracted from the result's stored
/// sample matrix — requires the evaluation ran with keep_samples.
/// The paper reports only means; distributions (via util::quantile)
/// show the tails the relative-performance figures hint at.
std::vector<double> error_values(const EvaluationResult& result,
                                 std::size_t predictor,
                                 int cls = EvaluationResult::kAllClasses);

class Evaluator {
 public:
  explicit Evaluator(EvalConfig config = {}) : config_(std::move(config)) {}

  const EvalConfig& config() const { return config_; }

  /// Replays `series` (time-ordered) against `predictors`.
  EvaluationResult run(std::span<const Observation> series,
                       const std::vector<const Predictor*>& predictors) const;

 private:
  EvalConfig config_;
};

}  // namespace wadp::predict
