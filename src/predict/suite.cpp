#include "predict/suite.hpp"

#include "util/error.hpp"
#include "util/time.hpp"

namespace wadp::predict {
namespace {

using util::kSecondsPerDay;
using util::kSecondsPerHour;

std::vector<std::shared_ptr<const Predictor>> build_base_fifteen() {
  std::vector<std::shared_ptr<const Predictor>> out;
  // Mean-based (Fig. 4 column 1).
  out.push_back(std::make_shared<MeanPredictor>("AVG", WindowSpec::all()));
  out.push_back(std::make_shared<LastValuePredictor>("LV"));
  out.push_back(std::make_shared<MeanPredictor>("AVG5", WindowSpec::last_n(5)));
  out.push_back(std::make_shared<MeanPredictor>("AVG15", WindowSpec::last_n(15)));
  out.push_back(std::make_shared<MeanPredictor>("AVG25", WindowSpec::last_n(25)));
  out.push_back(std::make_shared<MeanPredictor>(
      "AVG5hr", WindowSpec::last_duration(5 * kSecondsPerHour)));
  out.push_back(std::make_shared<MeanPredictor>(
      "AVG15hr", WindowSpec::last_duration(15 * kSecondsPerHour)));
  out.push_back(std::make_shared<MeanPredictor>(
      "AVG25hr", WindowSpec::last_duration(25 * kSecondsPerHour)));
  // Median-based (column 2).
  out.push_back(std::make_shared<MedianPredictor>("MED", WindowSpec::all()));
  out.push_back(std::make_shared<MedianPredictor>("MED5", WindowSpec::last_n(5)));
  out.push_back(std::make_shared<MedianPredictor>("MED15", WindowSpec::last_n(15)));
  out.push_back(std::make_shared<MedianPredictor>("MED25", WindowSpec::last_n(25)));
  // ARIMA model (column 3).
  out.push_back(std::make_shared<ArPredictor>("AR", WindowSpec::all()));
  out.push_back(std::make_shared<ArPredictor>(
      "AR5d", WindowSpec::last_duration(5 * kSecondsPerDay)));
  out.push_back(std::make_shared<ArPredictor>(
      "AR10d", WindowSpec::last_duration(10 * kSecondsPerDay)));
  return out;
}

}  // namespace

void PredictorSuite::add(std::shared_ptr<const Predictor> predictor) {
  WADP_CHECK(predictor != nullptr);
  WADP_CHECK_MSG(index_.find(predictor->name()) == index_.end(),
                 "duplicate predictor name in suite");
  index_.emplace(predictor->name(), predictors_.size());
  predictors_.push_back(std::move(predictor));
}

PredictorSuite PredictorSuite::context_insensitive() {
  PredictorSuite suite;
  for (auto& p : build_base_fifteen()) suite.add(std::move(p));
  return suite;
}

PredictorSuite PredictorSuite::context_sensitive(SizeClassifier classifier) {
  PredictorSuite suite;
  for (auto& p : build_base_fifteen()) {
    suite.add(std::make_shared<ClassifiedPredictor>(std::move(p), classifier));
  }
  return suite;
}

PredictorSuite PredictorSuite::paper_suite(SizeClassifier classifier) {
  PredictorSuite suite;
  for (auto& p : build_base_fifteen()) suite.add(std::move(p));
  for (auto& p : build_base_fifteen()) {
    suite.add(std::make_shared<ClassifiedPredictor>(std::move(p), classifier));
  }
  return suite;
}

const Predictor* PredictorSuite::find(std::string_view name) const {
  const auto index = index_of(name);
  return index ? predictors_[*index].get() : nullptr;
}

std::optional<std::size_t> PredictorSuite::index_of(
    std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<const Predictor*> PredictorSuite::pointers() const {
  std::vector<const Predictor*> out;
  out.reserve(predictors_.size());
  for (const auto& p : predictors_) out.push_back(p.get());
  return out;
}

const std::vector<std::string>& PredictorSuite::figure4_names() {
  static const std::vector<std::string> kNames = {
      "AVG",    "LV",      "AVG5",    "AVG15", "AVG25",
      "AVG5hr", "AVG15hr", "AVG25hr", "MED",   "MED5",
      "MED15",  "MED25",   "AR",      "AR5d",  "AR10d"};
  return kNames;
}

}  // namespace wadp::predict
