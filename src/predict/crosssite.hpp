// Cross-site extrapolation: predicting pairs never observed.
//
// Section 7 names as future work "techniques that will let us
// extrapolate data when there is no previous transfer data between two
// sites", citing Faerman et al.'s adaptive regression [13].  This
// module implements the natural first such technique: a multiplicative
// site-factor model.  Each site contributes a source capability and a
// sink capability, and
//
//     log bw(s -> d)  ~=  mu + a_s + b_d
//
// is fit by alternating least squares over every observed pair (with
// sum(a) = sum(b) = 0 for identifiability).  A pair nobody has ever
// transferred over can then be estimated from its endpoints' factors,
// provided each endpoint was seen in that role on some other pair.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace wadp::predict {

class CrossSiteEstimator {
 public:
  /// Records one measured transfer on source -> sink.
  void observe(const std::string& source_site, const std::string& sink_site,
               Bandwidth value);

  /// Estimated bandwidth for the (possibly unobserved) pair.  nullopt
  /// when the source was never seen sending or the sink never seen
  /// receiving anywhere.
  std::optional<Bandwidth> estimate(const std::string& source_site,
                                    const std::string& sink_site) const;

  /// Direct per-pair geometric-mean estimate; nullopt for unobserved
  /// pairs.  estimate() should agree with this on observed pairs up to
  /// model residual — tests rely on that.
  std::optional<Bandwidth> observed_mean(const std::string& source_site,
                                         const std::string& sink_site) const;

  std::size_t observed_pairs() const { return pairs_.size(); }
  std::size_t observations() const { return total_observations_; }

  /// Fitted factors (for diagnostics): multiplicative source / sink
  /// capability relative to the grid mean.  nullopt for unknown sites.
  std::optional<double> source_factor(const std::string& site) const;
  std::optional<double> sink_factor(const std::string& site) const;

 private:
  struct PairStats {
    double log_sum = 0.0;
    std::size_t count = 0;
    double mean_log() const { return log_sum / static_cast<double>(count); }
  };

  void fit() const;

  std::map<std::pair<std::string, std::string>, PairStats> pairs_;
  std::size_t total_observations_ = 0;

  // Lazily recomputed on estimate()/factor access after new data.
  mutable bool dirty_ = true;
  mutable double mu_ = 0.0;
  mutable std::map<std::string, double> source_effects_;
  mutable std::map<std::string, double> sink_effects_;
};

}  // namespace wadp::predict
