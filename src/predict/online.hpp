// Online prediction: stateful predictors fed one measurement at a time.
//
// Two uses: (1) live services (the MDS information provider, the
// replica broker) that keep a rolling history and answer queries as
// transfers arrive; (2) the paper's named future work — NWS-style
// *dynamic* predictor selection, where the forecaster that has been
// most accurate so far answers the next query (Wolski 1998, cited as
// [42]).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "predict/incremental.hpp"
#include "predict/observation.hpp"
#include "predict/predictors.hpp"

namespace wadp::predict {

/// An observation series owned elsewhere (a history store's series, a
/// battery-wide buffer) that online adapters borrow for their stateless
/// fallback instead of each keeping a private copy.  The owner appends;
/// adapters track how much of it they have been fed.  Elements already
/// fed must never be reordered or removed.
using SharedSeries = std::shared_ptr<const std::vector<Observation>>;

class OnlinePredictor {
 public:
  virtual ~OnlinePredictor() = default;
  const std::string& name() const { return name_; }

  /// Feeds one measurement (must be time-ordered across calls).
  virtual void observe(const Observation& observation) = 0;

  /// Predicts for `query` from everything observed so far.
  virtual std::optional<Bandwidth> predict(const Query& query) const = 0;

 protected:
  explicit OnlinePredictor(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// Adapts a stateless Predictor into an online one.  Queries are
/// answered from incremental per-family state (predict/incremental.hpp)
/// in O(1)/O(log W) instead of recomputing over the accumulated
/// history; the raw history is still recorded (append-only, never
/// scanned on the hot path) for diagnostics, for base predictors
/// without a streaming form, and for queries that travel back past a
/// temporal window's eviction frontier.
class HistoryPredictor final : public OnlinePredictor {
 public:
  explicit HistoryPredictor(std::shared_ptr<const Predictor> base);

  /// Borrowing form: the fallback reads `shared` (the prefix this
  /// adapter has been fed) instead of a private copy — one buffer
  /// serves a whole battery.  observe() must be called with exactly
  /// the elements of `shared`, in order; the owner appends them.
  HistoryPredictor(std::shared_ptr<const Predictor> base, SharedSeries shared);

  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) const override;

  /// The fallback history this adapter predicts from: the fed prefix
  /// of the shared series, or the private copy when not borrowing.
  std::span<const Observation> history() const;

 private:
  std::shared_ptr<const Predictor> base_;
  // unique_ptr indirection keeps predict() const: advancing the
  // eviction frontier never changes any answer the contract allows.
  std::unique_ptr<StreamingPredictor> streaming_;  // null = no streaming form
  SharedSeries shared_;                // non-null = borrowing
  std::size_t fed_ = 0;                // prefix of *shared_ observed so far
  std::vector<Observation> history_;   // owning mode only
};

/// NWS-style dynamic selection over a battery of stateless predictors:
/// before absorbing each measurement, every candidate is scored on it;
/// predict() delegates to the candidate with the lowest mean percentage
/// error so far (the first candidate until any has a track record).
class DynamicSelector final : public OnlinePredictor {
 public:
  DynamicSelector(std::string name,
                  std::vector<std::shared_ptr<const Predictor>> candidates);

  /// Borrowing form (see HistoryPredictor): fallback scans the fed
  /// prefix of `shared` instead of a selector-private copy.
  DynamicSelector(std::string name,
                  std::vector<std::shared_ptr<const Predictor>> candidates,
                  SharedSeries shared);

  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) const override;

  /// Name of the candidate predict() currently delegates to.
  const std::string& current_choice() const;

  /// Mean percentage error accumulated per candidate (test/diagnostics).
  std::vector<std::pair<std::string, double>> scores() const;

 private:
  std::size_t best_index() const;
  std::optional<Bandwidth> candidate_predict(std::size_t index,
                                             const Query& query) const;
  std::span<const Observation> fallback_history() const;

  std::vector<std::shared_ptr<const Predictor>> candidates_;
  // Parallel to candidates_: incremental state answering in O(1)
  // instead of rescanning the fallback history (null where no
  // streaming form).
  std::vector<std::unique_ptr<StreamingPredictor>> streams_;
  SharedSeries shared_;               // non-null = borrowing
  std::size_t fed_ = 0;               // prefix of *shared_ observed so far
  std::vector<Observation> history_;  // owning mode only
  std::vector<double> error_sum_;
  std::vector<std::size_t> error_count_;
};

}  // namespace wadp::predict
