#include "predict/regression.hpp"

#include <algorithm>
#include <cmath>

#include "predict/extended.hpp"
#include "util/error.hpp"

namespace wadp::predict {
namespace {

bool finite_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }
bool finite_pos(double x) { return std::isfinite(x) && x > 0.0; }

/// Simple linear fit from shifted sums; nullopt when the centered
/// second moment is non-positive (constant regressor).
std::optional<double> solve_single(std::size_t n, double sx, double sy,
                                   double sxx, double sxy, double at_x) {
  const double dn = static_cast<double>(n);
  const double mean_x = sx / dn;
  const double mean_y = sy / dn;
  const double cxx = sxx - sx * mean_x;
  if (cxx <= 0.0) return std::nullopt;
  const double cxy = sxy - sx * mean_y;
  const double slope = cxy / cxx;
  const double intercept = mean_y - slope * mean_x;
  return intercept + slope * at_x;
}

}  // namespace

const char* to_string(RegressionModel model) {
  switch (model) {
    case RegressionModel::kDisk: return "disk";
    case RegressionModel::kProbeDisk: return "probe+disk";
    case RegressionModel::kDiskQuad: return "disk+disk^2";
    case RegressionModel::kHybridRatio: return "hybrid-ratio";
  }
  return "?";
}

bool RegressionCore::qualifies(RegressionModel model, const Observation& o) {
  if (!finite_nonneg(o.value)) return false;
  switch (model) {
    case RegressionModel::kDisk:
    case RegressionModel::kDiskQuad:
      return finite_pos(o.disk);
    case RegressionModel::kProbeDisk:
      return finite_pos(o.disk) && finite_pos(o.probe);
    case RegressionModel::kHybridRatio:
      return finite_pos(o.probe);
  }
  return false;
}

void RegressionCore::add(const Observation& o) {
  WADP_CHECK_MSG(qualifies(model_, o), "non-qualifying regression sample");
  if (model_ == RegressionModel::kHybridRatio) {
    ratio_sum_ += o.value / o.probe;
    last_probe_ = o.probe;
    ++n_;
    return;
  }

  double u = 0.0, v = 0.0;
  switch (model_) {
    case RegressionModel::kDisk:
      u = o.disk;
      break;
    case RegressionModel::kProbeDisk:
      u = o.probe;
      v = o.disk;
      break;
    case RegressionModel::kDiskQuad:
      u = o.disk;
      v = o.disk * o.disk;
      break;
    case RegressionModel::kHybridRatio:
      break;  // handled above
  }
  if (!shift_set_) {
    shift_u_ = u;
    shift_v_ = v;
    shift_set_ = true;
  }
  u -= shift_u_;
  v -= shift_v_;
  const double y = o.value;
  su_ += u;
  sv_ += v;
  sy_ += y;
  suu_ += u * u;
  svv_ += v * v;
  suv_ += u * v;
  suy_ += u * y;
  svy_ += v * y;
  last_u_ = u;
  last_v_ = v;
  ++n_;
}

std::optional<Bandwidth> RegressionCore::predict() const {
  if (n_ == 0) return std::nullopt;
  const double dn = static_cast<double>(n_);

  if (model_ == RegressionModel::kHybridRatio) {
    return std::max(0.0, ratio_sum_ / dn * last_probe_);
  }

  if (model_ == RegressionModel::kDisk) {
    if (const auto y = solve_single(n_, su_, sy_, suu_, suy_, last_u_)) {
      return std::max(0.0, *y);
    }
    return std::max(0.0, sy_ / dn);  // constant disk: plain mean
  }

  // Two-regressor normal equations in centered (shifted) coordinates.
  const double mean_u = su_ / dn;
  const double mean_v = sv_ / dn;
  const double mean_y = sy_ / dn;
  const double cuu = suu_ - su_ * mean_u;
  const double cvv = svv_ - sv_ * mean_v;
  const double cuv = suv_ - su_ * mean_v;
  const double cuy = suy_ - su_ * mean_y;
  const double cvy = svy_ - sv_ * mean_y;
  const double det = cuu * cvv - cuv * cuv;
  if (det > 0.0) {
    const double b = (cuy * cvv - cvy * cuv) / det;
    const double c = (cvy * cuu - cuy * cuv) / det;
    const double a = mean_y - b * mean_u - c * mean_v;
    return std::max(0.0, a + b * last_u_ + c * last_v_);
  }
  // Degenerate (constant or collinear regressors): drop one regressor,
  // then the other, then fall back to the window mean.
  if (const auto y = solve_single(n_, su_, sy_, suu_, suy_, last_u_)) {
    return std::max(0.0, *y);
  }
  if (const auto y = solve_single(n_, sv_, sy_, svv_, svy_, last_v_)) {
    return std::max(0.0, *y);
  }
  return std::max(0.0, mean_y);
}

// ---------------------------------------------------------------------------
// RegressionPredictor (stateless)

RegressionPredictor::RegressionPredictor(std::string name,
                                         RegressionModel model,
                                         WindowSpec window,
                                         std::size_t min_samples)
    : Predictor(std::move(name)),
      model_(model),
      window_(window),
      min_samples_(min_samples) {
  WADP_CHECK(min_samples_ >= 2);
  WADP_CHECK_MSG(window_.kind() != WindowSpec::Kind::kLastDuration,
                 "regression predictors support all/last-N windows");
}

std::optional<Bandwidth> RegressionPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  RegressionCore core(model_);
  for (const auto& o : window) {
    if (RegressionCore::qualifies(model_, o)) core.add(o);
  }
  if (core.count() < min_samples_) return std::nullopt;
  return core.predict();
}

// ---------------------------------------------------------------------------
// StreamingRegression

StreamingRegression::StreamingRegression(std::string name,
                                         RegressionModel model,
                                         WindowSpec window,
                                         std::size_t min_samples)
    : StreamingPredictor(std::move(name)),
      model_(model),
      window_(window),
      min_samples_(min_samples),
      all_core_(model) {
  WADP_CHECK_MSG(window_.kind() != WindowSpec::Kind::kLastDuration,
                 "regression predictors support all/last-N windows");
}

void StreamingRegression::observe(const Observation& observation) {
  if (window_.kind() == WindowSpec::Kind::kAll) {
    if (RegressionCore::qualifies(model_, observation)) {
      all_core_.add(observation);
      ++all_qualifying_;
    }
    return;
  }
  last_n_.push_back(observation);
  if (last_n_.size() > window_.n()) last_n_.pop_front();
}

std::optional<Bandwidth> StreamingRegression::predict(const Query&) {
  if (window_.kind() == WindowSpec::Kind::kAll) {
    if (all_qualifying_ < min_samples_) return std::nullopt;
    return all_core_.predict();
  }
  // Replay the raw window through a fresh core: literally the batch
  // computation, so bit-identity needs no proof.
  RegressionCore core(model_);
  for (const auto& o : last_n_) {
    if (RegressionCore::qualifies(model_, o)) core.add(o);
  }
  if (core.count() < min_samples_) return std::nullopt;
  return core.predict();
}

// ---------------------------------------------------------------------------
// Battery

PredictorSuite regression_suite(SizeClassifier classifier) {
  PredictorSuite suite = extended_suite(classifier);
  const auto add_windows = [&](const std::string& base, RegressionModel model,
                               std::size_t min_samples) {
    suite.add(std::make_shared<RegressionPredictor>(
        base, model, WindowSpec::all(), min_samples));
    suite.add(std::make_shared<RegressionPredictor>(
        base + "25", model, WindowSpec::last_n(25), min_samples));
  };
  add_windows("DREG", RegressionModel::kDisk, 5);
  add_windows("MREG", RegressionModel::kProbeDisk, 5);
  add_windows("PREG", RegressionModel::kDiskQuad, 5);
  add_windows("HYB", RegressionModel::kHybridRatio, 3);
  return suite;
}

}  // namespace wadp::predict
