#include "predict/crosssite.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::predict {

void CrossSiteEstimator::observe(const std::string& source_site,
                                 const std::string& sink_site,
                                 Bandwidth value) {
  // A failed attempt reaches us with a zero (or, through a corrupt log,
  // negative/non-finite) rate.  log() is undefined there and aborting
  // on hostile input took the whole process down — skip and count
  // instead (the PR 4 bad-filter fix pattern).
  if (!std::isfinite(value) || value <= 0.0) {
    obs::Registry::global()
        .counter("wadp_predict_rejected_observations_total",
                 {{"reason", "nonpositive_bandwidth"}},
                 "Observations the prediction path skipped as unusable")
        .inc();
    return;
  }
  auto& stats = pairs_[{source_site, sink_site}];
  stats.log_sum += std::log(value);
  ++stats.count;
  ++total_observations_;
  dirty_ = true;
}

std::optional<Bandwidth> CrossSiteEstimator::observed_mean(
    const std::string& source_site, const std::string& sink_site) const {
  const auto it = pairs_.find({source_site, sink_site});
  if (it == pairs_.end()) return std::nullopt;
  return std::exp(it->second.mean_log());
}

void CrossSiteEstimator::fit() const {
  if (!dirty_) return;
  dirty_ = false;
  source_effects_.clear();
  sink_effects_.clear();
  if (pairs_.empty()) {
    mu_ = 0.0;
    return;
  }

  // Initialize factors at zero; mu at the grand weighted mean.
  double weighted_sum = 0.0;
  double weight = 0.0;
  for (const auto& [key, stats] : pairs_) {
    weighted_sum += stats.log_sum;
    weight += static_cast<double>(stats.count);
    source_effects_[key.first];  // default-insert 0.0
    sink_effects_[key.second];
  }
  mu_ = weighted_sum / weight;

  // Alternating least squares; each sweep solves one factor family
  // exactly given the others, so the objective is non-increasing and
  // converges in a handful of sweeps for these tiny systems.
  for (int sweep = 0; sweep < 50; ++sweep) {
    double max_delta = 0.0;
    for (auto& [site, effect] : source_effects_) {
      double num = 0.0, den = 0.0;
      for (const auto& [key, stats] : pairs_) {
        if (key.first != site) continue;
        const double w = static_cast<double>(stats.count);
        num += w * (stats.mean_log() - mu_ - sink_effects_[key.second]);
        den += w;
      }
      const double updated = den > 0.0 ? num / den : 0.0;
      max_delta = std::max(max_delta, std::abs(updated - effect));
      effect = updated;
    }
    for (auto& [site, effect] : sink_effects_) {
      double num = 0.0, den = 0.0;
      for (const auto& [key, stats] : pairs_) {
        if (key.second != site) continue;
        const double w = static_cast<double>(stats.count);
        num += w * (stats.mean_log() - mu_ - source_effects_[key.first]);
        den += w;
      }
      const double updated = den > 0.0 ? num / den : 0.0;
      max_delta = std::max(max_delta, std::abs(updated - effect));
      effect = updated;
    }
    if (max_delta < 1e-12) break;
  }

  // Re-center: move the factor means into mu (sum-to-zero constraints).
  const auto center = [](std::map<std::string, double>& effects) {
    double mean = 0.0;
    for (const auto& [site, e] : effects) mean += e;
    mean /= static_cast<double>(effects.size());
    for (auto& [site, e] : effects) e -= mean;
    return mean;
  };
  mu_ += center(source_effects_);
  mu_ += center(sink_effects_);
}

std::optional<Bandwidth> CrossSiteEstimator::estimate(
    const std::string& source_site, const std::string& sink_site) const {
  fit();
  const auto src = source_effects_.find(source_site);
  const auto dst = sink_effects_.find(sink_site);
  if (src == source_effects_.end() || dst == sink_effects_.end()) {
    return std::nullopt;
  }
  return std::exp(mu_ + src->second + dst->second);
}

std::optional<double> CrossSiteEstimator::source_factor(
    const std::string& site) const {
  fit();
  const auto it = source_effects_.find(site);
  if (it == source_effects_.end()) return std::nullopt;
  return std::exp(it->second);
}

std::optional<double> CrossSiteEstimator::sink_factor(
    const std::string& site) const {
  fit();
  const auto it = sink_effects_.find(site);
  if (it == sink_effects_.end()) return std::nullopt;
  return std::exp(it->second);
}

}  // namespace wadp::predict
