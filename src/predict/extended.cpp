#include "predict/extended.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {

EwmaPredictor::EwmaPredictor(std::string name, double alpha, WindowSpec window)
    : Predictor(std::move(name)), alpha_(alpha), window_(window) {
  WADP_CHECK(alpha_ > 0.0 && alpha_ <= 1.0);
}

std::optional<Bandwidth> EwmaPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  if (window.empty()) return std::nullopt;
  double smoothed = window.front().value;
  for (std::size_t i = 1; i < window.size(); ++i) {
    smoothed = alpha_ * window[i].value + (1.0 - alpha_) * smoothed;
  }
  return smoothed;
}

SizeRegressionPredictor::SizeRegressionPredictor(std::string name,
                                                 WindowSpec window,
                                                 std::size_t min_samples)
    : Predictor(std::move(name)), window_(window), min_samples_(min_samples) {
  WADP_CHECK(min_samples_ >= 2);
}

std::optional<Bandwidth> SizeRegressionPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  if (window.size() < min_samples_) return std::nullopt;

  std::vector<double> log_sizes, values;
  log_sizes.reserve(window.size());
  values.reserve(window.size());
  for (const auto& o : window) {
    if (o.file_size == 0) continue;
    log_sizes.push_back(std::log10(static_cast<double>(o.file_size)));
    values.push_back(o.value);
  }
  if (log_sizes.size() < min_samples_) return std::nullopt;

  if (const auto fit = util::linear_fit(log_sizes, values)) {
    const double x = std::log10(static_cast<double>(std::max<Bytes>(query.file_size, 1)));
    return std::max(0.0, fit->intercept + fit->slope * x);
  }
  // Constant regressor (all files the same size): plain mean.
  return util::mean(values);
}

AdaptiveWindowPredictor::AdaptiveWindowPredictor(
    std::string name, std::vector<std::size_t> candidate_windows,
    std::size_t holdout)
    : Predictor(std::move(name)),
      candidates_(std::move(candidate_windows)),
      holdout_(holdout) {
  WADP_CHECK(!candidates_.empty());
  WADP_CHECK(holdout_ >= 1);
  for (const auto n : candidates_) WADP_CHECK(n >= 1);
}

std::optional<std::size_t> AdaptiveWindowPredictor::chosen_window(
    std::span<const Observation> history) const {
  // Score each candidate on the last `holdout` observations: predict
  // history[i] from history[0..i) with a last-N mean.
  if (history.size() < 2) return std::nullopt;
  const std::size_t first =
      history.size() > holdout_ ? history.size() - holdout_ : 1;

  std::size_t best = candidates_.front();
  double best_error = std::numeric_limits<double>::infinity();
  for (const std::size_t n : candidates_) {
    double error_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = first; i < history.size(); ++i) {
      const auto prior = history.first(i);
      const std::size_t take = std::min(n, prior.size());
      double sum = 0.0;
      for (std::size_t j = prior.size() - take; j < prior.size(); ++j) {
        sum += prior[j].value;
      }
      const double predicted = sum / static_cast<double>(take);
      if (history[i].value > 0.0) {
        error_sum += util::percent_error(history[i].value, predicted);
        ++count;
      }
    }
    if (count == 0) continue;
    const double mean_error = error_sum / static_cast<double>(count);
    if (mean_error < best_error) {
      best_error = mean_error;
      best = n;
    }
  }
  if (!std::isfinite(best_error)) return std::nullopt;
  return best;
}

std::optional<Bandwidth> AdaptiveWindowPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  if (history.empty()) return std::nullopt;
  const auto window = chosen_window(history);
  const std::size_t n = window.value_or(candidates_.front());
  return MeanPredictor("tmp", WindowSpec::last_n(n)).predict(history, query);
}

PredictorSuite extended_suite(SizeClassifier classifier) {
  PredictorSuite suite = PredictorSuite::paper_suite(classifier);
  const auto add_both = [&](std::shared_ptr<const Predictor> p) {
    suite.add(std::make_shared<ClassifiedPredictor>(p, classifier));
    suite.add(std::move(p));
  };
  add_both(std::make_shared<EwmaPredictor>("EWMA0.2", 0.2));
  add_both(std::make_shared<EwmaPredictor>("EWMA0.5", 0.5));
  suite.add(std::make_shared<SizeRegressionPredictor>("SREG"));
  suite.add(std::make_shared<SizeRegressionPredictor>(
      "SREG25", WindowSpec::last_n(25)));
  add_both(std::make_shared<AdaptiveWindowPredictor>("ADAPT"));
  return suite;
}

}  // namespace wadp::predict
