// File-size classification (the paper's context-sensitive factor).
//
// Section 4.3: transfer rates correlate strongly with file size (TCP
// startup overhead penalizes small transfers), so filtering the history
// to transfers of similar size improves predictions by 5–10%.  The
// paper's testbed classes are 0–50 MB, 50–250 MB, 250–750 MB, >750 MB;
// its figures label them by representative sizes 10 MB, 100 MB, 500 MB,
// 1 GB.  Boundaries are configurable because the paper itself notes the
// classes "apply to the set of hosts for our testbed only".
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace wadp::predict {

class SizeClassifier {
 public:
  /// `boundaries` are ascending upper bounds; class i holds sizes in
  /// (boundaries[i-1], boundaries[i]], and the last class is open-ended.
  /// Class count = boundaries.size() + 1.
  explicit SizeClassifier(std::vector<Bytes> boundaries);

  /// The paper's testbed classes (Section 4.3).
  static SizeClassifier paper_classes();

  int num_classes() const { return static_cast<int>(boundaries_.size()) + 1; }

  /// Class index in [0, num_classes) for a file size.
  int classify(Bytes file_size) const;

  /// True when both sizes fall in the same class.
  bool same_class(Bytes a, Bytes b) const {
    return classify(a) == classify(b);
  }

  /// Range label, e.g. "0-50MB", "50-250MB", ">750MB".
  std::string class_name(int cls) const;

  /// The paper's figure label for the class ("10MB", "100MB", "500MB",
  /// "1GB" for the default classes; midpoint-based otherwise).
  std::string class_label(int cls) const;

  /// Some file size guaranteed to classify into `cls` (class midpoint;
  /// 4/3 of the top boundary for the open-ended class).  Used when a
  /// caller needs to query "a transfer of this class" generically.
  Bytes representative_size(int cls) const;

  const std::vector<Bytes>& boundaries() const { return boundaries_; }

 private:
  std::vector<Bytes> boundaries_;
};

}  // namespace wadp::predict
