// The data a predictor consumes and the question it answers.
//
// Observations are past transfer measurements (from the instrumented
// GridFTP log) reduced to what prediction needs: when, how fast, and —
// for the paper's context-sensitive filtering — how large the file was.
// A Query describes the upcoming transfer being predicted.
#pragma once

#include "util/types.hpp"

namespace wadp::predict {

struct Observation {
  SimTime time = 0.0;      ///< completion time of the measured transfer
  Bandwidth value = 0.0;   ///< achieved end-to-end bandwidth, bytes/s
  Bytes file_size = 0;     ///< size of the transferred file
  /// False for an outcome-tagged failed attempt (value is then the
  /// achieved partial rate, often 0).  Predictors consume value as-is —
  /// failure observations drag the estimate down through an outage
  /// window; publication-side summary stats skip them instead.
  bool ok = true;
  /// Disk-I/O throughput sampled at the serving host when the transfer
  /// completed (bytes/s).  0 when the log line carried no DISK= key —
  /// regression predictors skip such observations.
  Bandwidth disk = 0.0;
  /// Network probe bandwidth (NWS-style) along the route at transfer
  /// start (bytes/s).  0 when absent, same contract as disk.
  Bandwidth probe = 0.0;

  bool operator==(const Observation&) const = default;
};

struct Query {
  SimTime time = 0.0;   ///< "now": the instant the prediction is made
  Bytes file_size = 0;  ///< size of the transfer being predicted
};

}  // namespace wadp::predict
