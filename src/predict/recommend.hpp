// Predictor recommendation: which battery member to deploy for a
// series.
//
// This is the operational question behind the paper's evaluation — a
// site publishing predictions must pick a technique.  recommend() does
// what Section 6 does by hand: replay the series against the battery
// and rank by mean percentage error.  (The NWS alternative, dynamic
// selection at query time, lives in predict/online.hpp.)
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "predict/evaluator.hpp"
#include "predict/suite.hpp"

namespace wadp::predict {

struct Recommendation {
  std::string predictor;  ///< lowest mean % error
  double mean_error = 0.0;
  /// Every answering predictor, ascending by mean error.
  std::vector<std::pair<std::string, double>> ranking;
};

/// nullopt when the series is too short for any predictor to answer
/// after the training prefix.
std::optional<Recommendation> recommend(std::span<const Observation> series,
                                        const PredictorSuite& suite,
                                        const EvalConfig& config = {});

}  // namespace wadp::predict
