#include "predict/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {

void ErrorStats::add(double error) {
  if (count == 0) {
    min = max = error;
  } else {
    min = std::min(min, error);
    max = std::max(max, error);
  }
  ++count;
  sum += error;
  sum_sq += error * error;
}

double ErrorStats::stddev() const {
  if (count < 2) return 0.0;
  const double m = mean();
  const double var = sum_sq / static_cast<double>(count) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

EvaluationResult::EvaluationResult(std::vector<std::string> predictor_names,
                                   int num_classes)
    : names_(std::move(predictor_names)), num_classes_(num_classes) {
  WADP_CHECK(num_classes_ >= 1);
  const std::size_t slots =
      names_.size() * (static_cast<std::size_t>(num_classes_) + 1);
  errors_.resize(slots);
  relative_.resize(slots);
  transfers_per_class_.assign(static_cast<std::size_t>(num_classes_) + 1, 0);
}

std::size_t EvaluationResult::slot(std::size_t predictor, int cls) const {
  WADP_CHECK(predictor < names_.size());
  WADP_CHECK(cls >= kAllClasses && cls < num_classes_);
  const std::size_t class_slot = static_cast<std::size_t>(cls + 1);  // -1 -> 0
  return predictor * (static_cast<std::size_t>(num_classes_) + 1) + class_slot;
}

const ErrorStats& EvaluationResult::errors(std::size_t predictor,
                                           int cls) const {
  return errors_[slot(predictor, cls)];
}

const RelativeStats& EvaluationResult::relative(std::size_t predictor,
                                                int cls) const {
  return relative_[slot(predictor, cls)];
}

std::size_t EvaluationResult::evaluated_transfers(int cls) const {
  WADP_CHECK(cls >= kAllClasses && cls < num_classes_);
  return transfers_per_class_[static_cast<std::size_t>(cls + 1)];
}

std::optional<std::size_t> EvaluationResult::index_of(
    std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<double> error_values(const EvaluationResult& result,
                                 std::size_t predictor, int cls) {
  WADP_CHECK(predictor < result.predictor_names().size());
  std::vector<double> out;
  for (const auto& sample : result.samples()) {
    if (cls != EvaluationResult::kAllClasses && sample.size_class != cls) {
      continue;
    }
    const auto& prediction = sample.predictions[predictor];
    if (!prediction) continue;
    out.push_back(util::percent_error(sample.measured, *prediction));
  }
  return out;
}

EvaluationResult Evaluator::run(
    std::span<const Observation> series,
    const std::vector<const Predictor*>& predictors) const {
  std::vector<std::string> names;
  names.reserve(predictors.size());
  for (const auto* p : predictors) {
    WADP_CHECK(p != nullptr);
    names.push_back(p->name());
  }
  EvaluationResult result(std::move(names), config_.classifier.num_classes());

  // Phase 1: the prediction matrix.  Each predictor's column depends
  // only on the (shared, read-only) series, so columns compute in
  // parallel; aggregation below stays serial and order-deterministic,
  // making the parallel run bit-identical to the serial one.
  const std::size_t evaluated =
      series.size() > config_.training_count
          ? series.size() - config_.training_count
          : 0;
  std::vector<std::vector<std::optional<Bandwidth>>> matrix(predictors.size());
  const auto compute_column = [&](std::size_t p) {
    auto& column = matrix[p];
    column.resize(evaluated);
    for (std::size_t i = config_.training_count; i < series.size(); ++i) {
      const Observation& actual = series[i];
      column[i - config_.training_count] = predictors[p]->predict(
          series.first(i),
          Query{.time = actual.time, .file_size = actual.file_size});
    }
  };
  const unsigned workers =
      std::min<unsigned>(config_.threads,
                         static_cast<unsigned>(predictors.size()));
  if (workers <= 1) {
    for (std::size_t p = 0; p < predictors.size(); ++p) compute_column(p);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t p = next.fetch_add(1); p < matrix.size();
             p = next.fetch_add(1)) {
          compute_column(p);
        }
      });
    }
    for (auto& worker : pool) worker.join();
  }

  // Ties within this relative tolerance share best/worst credit.
  constexpr double kTieEpsilon = 1e-9;

  for (std::size_t i = config_.training_count; i < series.size(); ++i) {
    const Observation& actual = series[i];
    WADP_CHECK_MSG(actual.value > 0.0, "non-positive measured bandwidth");
    const int cls = config_.classifier.classify(actual.file_size);

    ++result.transfers_per_class_[0];
    ++result.transfers_per_class_[static_cast<std::size_t>(cls) + 1];

    EvalSample sample;
    if (config_.keep_samples) {
      sample.time = actual.time;
      sample.file_size = actual.file_size;
      sample.size_class = cls;
      sample.measured = actual.value;
      sample.predictions.resize(predictors.size());
    }

    std::vector<double> errors(predictors.size(),
                               std::numeric_limits<double>::quiet_NaN());
    double best = std::numeric_limits<double>::infinity();
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < predictors.size(); ++p) {
      const auto prediction = matrix[p][i - config_.training_count];
      if (config_.keep_samples) sample.predictions[p] = prediction;
      if (!prediction) continue;
      const double err = util::percent_error(actual.value, *prediction);
      errors[p] = err;
      best = std::min(best, err);
      worst = std::max(worst, err);
      result.errors_[result.slot(p, EvaluationResult::kAllClasses)].add(err);
      result.errors_[result.slot(p, cls)].add(err);
    }

    for (std::size_t p = 0; p < predictors.size(); ++p) {
      if (std::isnan(errors[p])) continue;
      auto& overall = result.relative_[result.slot(p, EvaluationResult::kAllClasses)];
      auto& in_class = result.relative_[result.slot(p, cls)];
      ++overall.opportunities;
      ++in_class.opportunities;
      if (errors[p] <= best + kTieEpsilon) {
        ++overall.best;
        ++in_class.best;
      }
      if (errors[p] >= worst - kTieEpsilon) {
        ++overall.worst;
        ++in_class.worst;
      }
    }

    if (config_.keep_samples) result.samples_.push_back(std::move(sample));
  }

  return result;
}

}  // namespace wadp::predict
