#include "predict/evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "obs/metrics.hpp"
#include "predict/incremental.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {
namespace {

/// Per-run aggregates only — nothing on the per-observation path, so
/// the streaming-throughput bench stays within its budget.
struct EvalMetrics {
  obs::Counter& streaming_runs = obs::Registry::global().counter(
      "wadp_eval_runs_total", {{"engine", "streaming"}},
      "Evaluator runs by prediction engine");
  obs::Counter& legacy_runs = obs::Registry::global().counter(
      "wadp_eval_runs_total", {{"engine", "legacy"}},
      "Evaluator runs by prediction engine");
  obs::Counter& transfers = obs::Registry::global().counter(
      "wadp_eval_transfers_total", {},
      "Transfers scored across all evaluator runs");
  obs::Counter& fallback_columns = obs::Registry::global().counter(
      "wadp_eval_streaming_fallback_columns_total", {},
      "Predictor columns that fell back to prefix recomputation because "
      "no streaming form exists");

  static EvalMetrics& get() {
    static EvalMetrics metrics;
    return metrics;
  }
};

}  // namespace

EvaluationResult::EvaluationResult(std::vector<std::string> predictor_names,
                                   int num_classes)
    : names_(std::move(predictor_names)), num_classes_(num_classes) {
  WADP_CHECK(num_classes_ >= 1);
  const std::size_t slots =
      names_.size() * (static_cast<std::size_t>(num_classes_) + 1);
  errors_.resize(slots);
  relative_.resize(slots);
  transfers_per_class_.assign(static_cast<std::size_t>(num_classes_) + 1, 0);
  name_index_.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) name_index_[names_[i]] = i;
}

std::size_t EvaluationResult::slot(std::size_t predictor, int cls) const {
  WADP_CHECK(predictor < names_.size());
  WADP_CHECK(cls >= kAllClasses && cls < num_classes_);
  const std::size_t class_slot = static_cast<std::size_t>(cls + 1);  // -1 -> 0
  return predictor * (static_cast<std::size_t>(num_classes_) + 1) + class_slot;
}

const ErrorStats& EvaluationResult::errors(std::size_t predictor,
                                           int cls) const {
  return errors_[slot(predictor, cls)];
}

const RelativeStats& EvaluationResult::relative(std::size_t predictor,
                                                int cls) const {
  return relative_[slot(predictor, cls)];
}

std::size_t EvaluationResult::evaluated_transfers(int cls) const {
  WADP_CHECK(cls >= kAllClasses && cls < num_classes_);
  return transfers_per_class_[static_cast<std::size_t>(cls + 1)];
}

std::optional<std::size_t> EvaluationResult::index_of(
    std::string_view name) const {
  const auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> error_values(const EvaluationResult& result,
                                 std::size_t predictor, int cls) {
  WADP_CHECK(predictor < result.predictor_names().size());
  std::vector<double> out;
  for (const auto& sample : result.samples()) {
    if (cls != EvaluationResult::kAllClasses && sample.size_class != cls) {
      continue;
    }
    const auto& prediction = sample.predictions[predictor];
    if (!prediction) continue;
    out.push_back(util::percent_error(sample.measured, *prediction));
  }
  return out;
}

EvaluationResult Evaluator::run(
    std::span<const Observation> series,
    const std::vector<const Predictor*>& predictors) const {
  std::vector<std::string> names;
  names.reserve(predictors.size());
  for (const auto* p : predictors) {
    WADP_CHECK(p != nullptr);
    names.push_back(p->name());
  }
  EvaluationResult result(std::move(names), config_.classifier.num_classes());

  const std::size_t training = config_.training_count;
  const std::size_t count = predictors.size();
  const bool streaming = config_.engine == EvalConfig::Engine::kStreaming;

  (streaming ? EvalMetrics::get().streaming_runs
             : EvalMetrics::get().legacy_runs)
      .inc();
  EvalMetrics::get().transfers.inc(
      series.size() > training ? series.size() - training : 0);

  // Ties within this relative tolerance share best/worst credit.
  constexpr double kTieEpsilon = 1e-9;

  // Serial, order-deterministic aggregation of one transfer, shared by
  // every engine/thread configuration so results are bit-identical
  // across all of them given identical predictions.
  std::vector<double> errors_scratch(count);
  const auto score_transfer =
      [&](const Observation& actual,
          std::span<const std::optional<Bandwidth>> predictions) {
        WADP_CHECK_MSG(actual.value > 0.0, "non-positive measured bandwidth");
        const int cls = config_.classifier.classify(actual.file_size);

        ++result.transfers_per_class_[0];
        ++result.transfers_per_class_[static_cast<std::size_t>(cls) + 1];

        EvalSample sample;
        if (config_.keep_samples) {
          sample.time = actual.time;
          sample.file_size = actual.file_size;
          sample.size_class = cls;
          sample.measured = actual.value;
          sample.predictions.assign(predictions.begin(), predictions.end());
        }

        auto& errors = errors_scratch;
        errors.assign(count, std::numeric_limits<double>::quiet_NaN());
        double best = std::numeric_limits<double>::infinity();
        double worst = -std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < count; ++p) {
          const auto& prediction = predictions[p];
          if (!prediction) continue;
          const double err = util::percent_error(actual.value, *prediction);
          errors[p] = err;
          best = std::min(best, err);
          worst = std::max(worst, err);
          result.errors_[result.slot(p, EvaluationResult::kAllClasses)].add(err);
          result.errors_[result.slot(p, cls)].add(err);
        }

        for (std::size_t p = 0; p < count; ++p) {
          if (std::isnan(errors[p])) continue;
          auto& overall =
              result.relative_[result.slot(p, EvaluationResult::kAllClasses)];
          auto& in_class = result.relative_[result.slot(p, cls)];
          ++overall.opportunities;
          ++in_class.opportunities;
          if (errors[p] <= best + kTieEpsilon) {
            ++overall.best;
            ++in_class.best;
          }
          if (errors[p] >= worst - kTieEpsilon) {
            ++overall.worst;
            ++in_class.worst;
          }
        }

        if (config_.keep_samples) result.samples_.push_back(std::move(sample));
      };

  const unsigned workers =
      std::min<unsigned>(config_.threads, static_cast<unsigned>(count));

  if (streaming && workers <= 1) {
    // Single streaming pass: every state absorbs each observation once,
    // predictions come from O(1)/O(log W) state instead of prefix
    // recomputation, and no O(N·P) prediction matrix is materialized.
    std::vector<std::unique_ptr<StreamingPredictor>> states;
    states.reserve(count);
    for (const auto* p : predictors) states.push_back(make_streaming(*p));
    for (const auto& state : states) {
      if (!state) EvalMetrics::get().fallback_columns.inc();
    }
    std::vector<std::optional<Bandwidth>> row(count);
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Observation& actual = series[i];
      if (i >= training) {
        const Query query{.time = actual.time, .file_size = actual.file_size};
        for (std::size_t p = 0; p < count; ++p) {
          row[p] = states[p] ? states[p]->predict(query)
                             : predictors[p]->predict(series.first(i), query);
        }
        score_transfer(actual, row);
      }
      for (std::size_t p = 0; p < count; ++p) {
        if (states[p]) states[p]->observe(actual);
      }
    }
    return result;
  }

  // Column phase: each predictor's column depends only on the (shared,
  // read-only) series, so columns compute in parallel — via a private
  // streaming replay per column, or legacy prefix recomputation.
  const std::size_t evaluated =
      series.size() > training ? series.size() - training : 0;
  std::vector<std::vector<std::optional<Bandwidth>>> matrix(count);
  const auto compute_column = [&](std::size_t p) {
    auto& column = matrix[p];
    column.resize(evaluated);
    if (streaming) {
      if (auto state = make_streaming(*predictors[p])) {
        for (std::size_t i = 0; i < series.size(); ++i) {
          const Observation& actual = series[i];
          if (i >= training) {
            column[i - training] = state->predict(
                Query{.time = actual.time, .file_size = actual.file_size});
          }
          state->observe(actual);
        }
        return;
      }
      // No streaming form: this column replays by prefix recomputation.
      EvalMetrics::get().fallback_columns.inc();
    }
    for (std::size_t i = training; i < series.size(); ++i) {
      const Observation& actual = series[i];
      column[i - training] = predictors[p]->predict(
          series.first(i),
          Query{.time = actual.time, .file_size = actual.file_size});
    }
  };
  if (workers <= 1) {
    for (std::size_t p = 0; p < count; ++p) compute_column(p);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t p = next.fetch_add(1); p < matrix.size();
             p = next.fetch_add(1)) {
          compute_column(p);
        }
      });
    }
    for (auto& worker : pool) worker.join();
  }

  std::vector<std::optional<Bandwidth>> row(count);
  for (std::size_t i = training; i < series.size(); ++i) {
    for (std::size_t p = 0; p < count; ++p) {
      row[p] = matrix[p][i - training];
    }
    score_transfer(series[i], row);
  }

  return result;
}

}  // namespace wadp::predict
