#include "predict/window.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace wadp::predict {

WindowSpec WindowSpec::all() { return WindowSpec(Kind::kAll, 0, 0.0); }

WindowSpec WindowSpec::last_n(std::size_t n) {
  WADP_CHECK(n >= 1);
  return WindowSpec(Kind::kLastN, n, 0.0);
}

WindowSpec WindowSpec::last_duration(Duration d) {
  WADP_CHECK(d > 0.0);
  return WindowSpec(Kind::kLastDuration, 0, d);
}

std::span<const Observation> WindowSpec::apply(
    std::span<const Observation> history, SimTime now) const {
  switch (kind_) {
    case Kind::kAll:
      return history;
    case Kind::kLastN: {
      const std::size_t keep = std::min(n_, history.size());
      return history.subspan(history.size() - keep);
    }
    case Kind::kLastDuration: {
      const SimTime cutoff = now - duration_;
      // History is time-ordered: binary-search the first kept element.
      const auto first =
          std::lower_bound(history.begin(), history.end(), cutoff,
                           [](const Observation& o, SimTime t) { return o.time < t; });
      return history.subspan(static_cast<std::size_t>(first - history.begin()));
    }
  }
  return history;  // unreachable
}

std::string WindowSpec::describe() const {
  switch (kind_) {
    case Kind::kAll:
      return "all";
    case Kind::kLastN:
      return util::format("last %zu", n_);
    case Kind::kLastDuration:
      if (duration_ >= util::kSecondsPerDay &&
          duration_ == std::floor(duration_ / util::kSecondsPerDay) *
                           util::kSecondsPerDay) {
        return util::format("last %.0fd", duration_ / util::kSecondsPerDay);
      }
      if (duration_ >= util::kSecondsPerHour &&
          duration_ == std::floor(duration_ / util::kSecondsPerHour) *
                           util::kSecondsPerHour) {
        return util::format("last %.0fhr", duration_ / util::kSecondsPerHour);
      }
      return util::format("last %.0fs", duration_);
  }
  return "?";
}

}  // namespace wadp::predict
