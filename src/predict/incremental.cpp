#include "predict/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "predict/regression.hpp"
#include "util/error.hpp"

namespace wadp::predict {
namespace {

/// Neumaier-compensated add: keeps rolling temporal-window sums within
/// a few ulps of an exact re-sum between rebuilds.
void compensated_add(double& sum, double& comp, double x) {
  const double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    comp += (sum - t) + x;
  } else {
    comp += (x - t) + sum;
  }
  sum = t;
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingMean

StreamingMean::StreamingMean(std::string name, WindowSpec window)
    : StreamingPredictor(std::move(name)), window_(window) {}

void StreamingMean::observe(const Observation& observation) {
  switch (window_.kind()) {
    case WindowSpec::Kind::kAll:
      // Same left-to-right accumulation order as util::mean over the
      // full history: bit-identical to the batch predictor.
      all_sum_ += observation.value;
      ++all_count_;
      break;
    case WindowSpec::Kind::kLastN:
      last_n_.push_back(observation.value);
      if (last_n_.size() > window_.n()) last_n_.pop_front();
      break;
    case WindowSpec::Kind::kLastDuration:
      timed_.push_back(observation);
      compensated_add(rolling_sum_, rolling_comp_, observation.value);
      ++ops_since_rebuild_;
      break;
  }
}

void StreamingMean::evict_before(SimTime cutoff) {
  if (cutoff <= evicted_through_) return;
  while (!timed_.empty() && timed_.front().time < cutoff) {
    compensated_add(rolling_sum_, rolling_comp_, -timed_.front().value);
    timed_.pop_front();
    ++ops_since_rebuild_;
  }
  evicted_through_ = cutoff;
}

void StreamingMean::rebuild_sum() {
  rolling_sum_ = 0.0;
  rolling_comp_ = 0.0;
  for (const auto& o : timed_) rolling_sum_ += o.value;
  ops_since_rebuild_ = 0;
}

std::optional<Bandwidth> StreamingMean::predict(const Query& query) {
  switch (window_.kind()) {
    case WindowSpec::Kind::kAll:
      if (all_count_ == 0) return std::nullopt;
      return all_sum_ / static_cast<double>(all_count_);
    case WindowSpec::Kind::kLastN: {
      if (last_n_.empty()) return std::nullopt;
      // Re-sum the (spec-constant-sized) window left to right: exactly
      // the batch computation, so the result is bit-identical.
      double sum = 0.0;
      for (double v : last_n_) sum += v;
      return sum / static_cast<double>(last_n_.size());
    }
    case WindowSpec::Kind::kLastDuration: {
      evict_before(query.time - window_.duration());
      if (timed_.empty()) return std::nullopt;
      // Amortized-O(1) exact rebuild caps rounding drift at O(|window|)
      // ulps regardless of how long the stream runs.
      if (ops_since_rebuild_ > timed_.size()) rebuild_sum();
      return (rolling_sum_ + rolling_comp_) /
             static_cast<double>(timed_.size());
    }
  }
  return std::nullopt;  // unreachable
}

SimTime StreamingMean::safe_query_time() const {
  if (window_.kind() != WindowSpec::Kind::kLastDuration) {
    return -std::numeric_limits<SimTime>::infinity();
  }
  return evicted_through_ + window_.duration();
}

// ---------------------------------------------------------------------------
// StreamingMedian

StreamingMedian::StreamingMedian(std::string name, WindowSpec window)
    : StreamingPredictor(std::move(name)), window_(window) {}

void StreamingMedian::insert_value(double value) {
  if (lo_.empty() || value <= *lo_.rbegin()) {
    lo_.insert(value);
  } else {
    hi_.insert(value);
  }
  rebalance();
}

void StreamingMedian::erase_value(double value) {
  // Invariant: max(lo) <= min(hi).  A value below max(lo) must live in
  // lo; a value equal to max(lo) has at least one copy there.
  if (!lo_.empty() && value <= *lo_.rbegin()) {
    lo_.erase(lo_.find(value));
  } else {
    hi_.erase(hi_.find(value));
  }
  rebalance();
}

void StreamingMedian::rebalance() {
  // Keep |lo| = |hi| or |lo| = |hi| + 1, so the batch order statistics
  // sorted[(t-1)/2] and sorted[t/2] are max(lo) / min(hi).
  while (lo_.size() > hi_.size() + 1) {
    const auto it = std::prev(lo_.end());
    hi_.insert(*it);
    lo_.erase(it);
  }
  while (hi_.size() > lo_.size()) {
    const auto it = hi_.begin();
    lo_.insert(*it);
    hi_.erase(it);
  }
}

void StreamingMedian::evict_before(SimTime cutoff) {
  if (cutoff <= evicted_through_) return;
  while (!order_.empty() && order_.front().time < cutoff) {
    erase_value(order_.front().value);
    order_.pop_front();
  }
  evicted_through_ = cutoff;
}

void StreamingMedian::observe(const Observation& observation) {
  if (window_.kind() == WindowSpec::Kind::kAll) {
    insert_value(observation.value);
    return;
  }
  order_.push_back(observation);
  insert_value(observation.value);
  if (window_.kind() == WindowSpec::Kind::kLastN &&
      order_.size() > window_.n()) {
    erase_value(order_.front().value);
    order_.pop_front();
  }
}

std::optional<Bandwidth> StreamingMedian::predict(const Query& query) {
  if (window_.kind() == WindowSpec::Kind::kLastDuration) {
    evict_before(query.time - window_.duration());
  }
  const std::size_t t = lo_.size() + hi_.size();
  if (t == 0) return std::nullopt;
  if (t % 2 == 1) return *lo_.rbegin();
  // Same expression order as util::median: 0.5 * (lower + upper).
  return 0.5 * (*lo_.rbegin() + *hi_.begin());
}

SimTime StreamingMedian::safe_query_time() const {
  if (window_.kind() != WindowSpec::Kind::kLastDuration) {
    return -std::numeric_limits<SimTime>::infinity();
  }
  return evicted_through_ + window_.duration();
}

// ---------------------------------------------------------------------------
// StreamingLastValue

StreamingLastValue::StreamingLastValue(std::string name)
    : StreamingPredictor(std::move(name)) {}

void StreamingLastValue::observe(const Observation& observation) {
  last_ = observation.value;
}

std::optional<Bandwidth> StreamingLastValue::predict(const Query& /*query*/) {
  return last_;
}

// ---------------------------------------------------------------------------
// StreamingAr

StreamingAr::StreamingAr(std::string name, WindowSpec window,
                         std::size_t min_samples)
    : StreamingPredictor(std::move(name)),
      window_(window),
      min_samples_(min_samples) {
  WADP_CHECK(min_samples_ >= 3);
}

void StreamingAr::add_pair(double prev, double value) {
  if (!shift_set_) {
    shift_ = prev;
    shift_set_ = true;
  }
  const double u = prev - shift_;
  const double w = value - shift_;
  su_ += u;
  sw_ += w;
  suu_ += u * u;
  suw_ += u * w;
  ++pairs_;
  const std::uint64_t seq = next_pair_seq_++;
  while (!min_deque_.empty() && min_deque_.back().value >= prev) {
    min_deque_.pop_back();
  }
  min_deque_.push_back({seq, prev});
  while (!max_deque_.empty() && max_deque_.back().value <= prev) {
    max_deque_.pop_back();
  }
  max_deque_.push_back({seq, prev});
}

void StreamingAr::remove_front_pair() {
  WADP_CHECK(pairs_ > 0 && obs_.size() >= 2);
  const double prev = obs_[0].value;
  const double value = obs_[1].value;
  const double u = prev - shift_;
  const double w = value - shift_;
  su_ -= u;
  sw_ -= w;
  suu_ -= u * u;
  suw_ -= u * w;
  --pairs_;
  const std::uint64_t seq = front_pair_seq_++;
  if (!min_deque_.empty() && min_deque_.front().seq == seq) {
    min_deque_.pop_front();
  }
  if (!max_deque_.empty() && max_deque_.front().seq == seq) {
    max_deque_.pop_front();
  }
  ++ops_since_rebuild_;
}

void StreamingAr::evict_front_observation() {
  if (obs_.size() >= 2) remove_front_pair();
  obs_.pop_front();
  --count_;
}

void StreamingAr::evict_before(SimTime cutoff) {
  if (cutoff <= evicted_through_) return;
  while (!obs_.empty() && obs_.front().time < cutoff) {
    evict_front_observation();
  }
  evicted_through_ = cutoff;
}

void StreamingAr::maybe_rebuild() {
  if (window_.kind() == WindowSpec::Kind::kAll) return;  // never evicts
  if (ops_since_rebuild_ > obs_.size()) rebuild_from_window();
}

void StreamingAr::rebuild_from_window() {
  su_ = sw_ = suu_ = suw_ = 0.0;
  pairs_ = 0;
  min_deque_.clear();
  max_deque_.clear();
  next_pair_seq_ = 0;
  front_pair_seq_ = 0;
  shift_set_ = false;
  for (std::size_t i = 1; i < obs_.size(); ++i) {
    add_pair(obs_[i - 1].value, obs_[i].value);
  }
  ops_since_rebuild_ = 0;
}

void StreamingAr::observe(const Observation& observation) {
  if (count_ > 0) add_pair(last_value_, observation.value);
  last_value_ = observation.value;
  ++count_;
  if (window_.kind() != WindowSpec::Kind::kAll) {
    obs_.push_back(observation);
    ++ops_since_rebuild_;
    if (window_.kind() == WindowSpec::Kind::kLastN &&
        obs_.size() > window_.n()) {
      evict_front_observation();
    }
  }
}

double StreamingAr::fit_and_predict() const {
  // Mirrors util::ar1_fit + ArPredictor::predict: OLS of Y_t on
  // Y_{t-1}, degenerate constant-lagged windows predict the last
  // value, and the extrapolation is clamped at zero.
  const double last =
      window_.kind() == WindowSpec::Kind::kAll ? last_value_
                                               : obs_.back().value;
  WADP_CHECK(pairs_ >= 2);
  const bool constant_lagged =
      min_deque_.front().value == max_deque_.front().value;
  if (!constant_lagged) {
    const double n = static_cast<double>(pairs_);
    const double sxx = suu_ - su_ * su_ / n;
    const double sxy = suw_ - su_ * sw_ / n;
    if (sxx > 0.0) {
      const double slope = sxy / sxx;
      const double mean_x = shift_ + su_ / n;
      const double mean_y = shift_ + sw_ / n;
      const double intercept = mean_y - slope * mean_x;
      return std::max(0.0, intercept + slope * last);
    }
  }
  return std::max(0.0, last);
}

std::optional<Bandwidth> StreamingAr::predict(const Query& query) {
  if (window_.kind() == WindowSpec::Kind::kLastDuration) {
    evict_before(query.time - window_.duration());
  }
  const std::size_t in_window =
      window_.kind() == WindowSpec::Kind::kAll ? count_ : obs_.size();
  if (in_window < min_samples_) return std::nullopt;
  maybe_rebuild();
  return fit_and_predict();
}

SimTime StreamingAr::safe_query_time() const {
  if (window_.kind() != WindowSpec::Kind::kLastDuration) {
    return -std::numeric_limits<SimTime>::infinity();
  }
  return evicted_through_ + window_.duration();
}

// ---------------------------------------------------------------------------
// StreamingClassified

StreamingClassified::StreamingClassified(
    std::string name, SizeClassifier classifier,
    const std::function<std::unique_ptr<StreamingPredictor>()>& make_base)
    : StreamingPredictor(std::move(name)), classifier_(std::move(classifier)) {
  per_class_.reserve(static_cast<std::size_t>(classifier_.num_classes()));
  for (int cls = 0; cls < classifier_.num_classes(); ++cls) {
    auto state = make_base();
    WADP_CHECK(state != nullptr);
    per_class_.push_back(std::move(state));
  }
}

void StreamingClassified::observe(const Observation& observation) {
  const auto cls =
      static_cast<std::size_t>(classifier_.classify(observation.file_size));
  per_class_[cls]->observe(observation);
}

std::optional<Bandwidth> StreamingClassified::predict(const Query& query) {
  const auto cls =
      static_cast<std::size_t>(classifier_.classify(query.file_size));
  return per_class_[cls]->predict(query);
}

SimTime StreamingClassified::safe_query_time() const {
  SimTime latest = -std::numeric_limits<SimTime>::infinity();
  for (const auto& state : per_class_) {
    latest = std::max(latest, state->safe_query_time());
  }
  return latest;
}

// ---------------------------------------------------------------------------
// Adapter + suite

std::unique_ptr<StreamingPredictor> make_streaming(const Predictor& predictor) {
  if (const auto* mean = dynamic_cast<const MeanPredictor*>(&predictor)) {
    return std::make_unique<StreamingMean>(mean->name(), mean->window());
  }
  if (const auto* median = dynamic_cast<const MedianPredictor*>(&predictor)) {
    return std::make_unique<StreamingMedian>(median->name(), median->window());
  }
  if (dynamic_cast<const LastValuePredictor*>(&predictor) != nullptr) {
    return std::make_unique<StreamingLastValue>(predictor.name());
  }
  if (const auto* ar = dynamic_cast<const ArPredictor*>(&predictor)) {
    return std::make_unique<StreamingAr>(ar->name(), ar->window(),
                                         ar->min_samples());
  }
  if (const auto* reg = dynamic_cast<const RegressionPredictor*>(&predictor)) {
    return std::make_unique<StreamingRegression>(
        reg->name(), reg->model(), reg->window(), reg->min_samples());
  }
  if (const auto* classified =
          dynamic_cast<const ClassifiedPredictor*>(&predictor)) {
    const std::shared_ptr<const Predictor> base = classified->base_ptr();
    if (make_streaming(*base) == nullptr) return nullptr;  // unsupported base
    return std::make_unique<StreamingClassified>(
        classified->name(), classified->classifier(),
        [&base] { return make_streaming(*base); });
  }
  return nullptr;
}

StreamingSuite StreamingSuite::paper_suite(SizeClassifier classifier) {
  return from(PredictorSuite::paper_suite(std::move(classifier)));
}

StreamingSuite StreamingSuite::from(const PredictorSuite& suite) {
  StreamingSuite out;
  for (const auto& predictor : suite.predictors()) {
    out.add_slot(predictor->name(), make_streaming(*predictor));
  }
  return out;
}

void StreamingSuite::add(std::unique_ptr<StreamingPredictor> predictor) {
  WADP_CHECK(predictor != nullptr);
  std::string name = predictor->name();
  add_slot(std::move(name), std::move(predictor));
}

void StreamingSuite::add_slot(std::string name,
                              std::unique_ptr<StreamingPredictor> predictor) {
  WADP_CHECK_MSG(index_.find(name) == index_.end(),
                 "duplicate predictor name in streaming suite");
  index_.emplace(name, predictors_.size());
  names_.push_back(std::move(name));
  predictors_.push_back(std::move(predictor));
}

void StreamingSuite::observe(const Observation& observation) {
  for (const auto& predictor : predictors_) {
    if (predictor) predictor->observe(observation);
  }
}

StreamingPredictor* StreamingSuite::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : predictors_[it->second].get();
}

std::vector<std::pair<std::string, std::optional<Bandwidth>>>
StreamingSuite::predict_all(const Query& query) {
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> out;
  out.reserve(predictors_.size());
  for (std::size_t i = 0; i < predictors_.size(); ++i) {
    out.emplace_back(names_[i], predictors_[i]
                                    ? predictors_[i]->predict(query)
                                    : std::nullopt);
  }
  return out;
}

}  // namespace wadp::predict
