#include "predict/classifier.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::predict {

SizeClassifier::SizeClassifier(std::vector<Bytes> boundaries)
    : boundaries_(std::move(boundaries)) {
  WADP_CHECK_MSG(std::is_sorted(boundaries_.begin(), boundaries_.end()),
                 "class boundaries must ascend");
  WADP_CHECK_MSG(std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                     boundaries_.end(),
                 "class boundaries must be distinct");
}

SizeClassifier SizeClassifier::paper_classes() {
  return SizeClassifier({50 * kMB, 250 * kMB, 750 * kMB});
}

int SizeClassifier::classify(Bytes file_size) const {
  // Upper bounds are inclusive: a 50 MB file belongs to the 0-50 MB class.
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), file_size);
  return static_cast<int>(it - boundaries_.begin());
}

std::string SizeClassifier::class_name(int cls) const {
  WADP_CHECK(cls >= 0 && cls < num_classes());
  const auto mb = [](Bytes b) {
    return util::format("%llu", static_cast<unsigned long long>(b / kMB));
  };
  if (cls == static_cast<int>(boundaries_.size())) {
    return util::format(
        ">%lluMB", static_cast<unsigned long long>(boundaries_.back() / kMB));
  }
  const Bytes lo = cls == 0 ? 0 : boundaries_[static_cast<std::size_t>(cls) - 1];
  return mb(lo) + "-" + mb(boundaries_[static_cast<std::size_t>(cls)]) + "MB";
}

std::string SizeClassifier::class_label(int cls) const {
  WADP_CHECK(cls >= 0 && cls < num_classes());
  // The paper labels its four classes by the representative transfer
  // sizes inside them (Figs. 8-21); other boundary sets fall back to
  // the range name.
  if (boundaries_ == std::vector<Bytes>{50 * kMB, 250 * kMB, 750 * kMB}) {
    static const char* kLabels[] = {"10MB", "100MB", "500MB", "1GB"};
    return kLabels[cls];
  }
  return class_name(cls);
}

Bytes SizeClassifier::representative_size(int cls) const {
  WADP_CHECK(cls >= 0 && cls < num_classes());
  if (cls == static_cast<int>(boundaries_.size())) {
    // 4/3 of the top boundary, saturating: `top + top / 3` would wrap
    // for boundaries in the top quarter of the Bytes range.
    const Bytes top = boundaries_.back();
    const Bytes headroom = std::numeric_limits<Bytes>::max() - top;
    return top + std::min(headroom, top / 3);
  }
  const Bytes lo = cls == 0 ? 0 : boundaries_[static_cast<std::size_t>(cls) - 1];
  const Bytes hi = boundaries_[static_cast<std::size_t>(cls)];
  // Upward midpoint without the `hi - lo + 1` wrap when the class spans
  // the whole range.
  const Bytes d = hi - lo;
  return lo + d / 2 + d % 2;
}

}  // namespace wadp::predict
