// Regression and hybrid predictors: the Vazhkudai & Schopf sequel.
//
// "Using Regression Techniques to Predict Large Data Transfers" shows
// that regressing achieved GridFTP bandwidth on end-system disk-I/O
// throughput — and on disk plus a network probe — beats the univariate
// mean/median battery of the source paper; the source paper itself
// speculates about NWS-probe+GridFTP hybrids.  These predictors consume
// the disk/probe fields the instrumented log now carries (DISK=/PROBE=
// keys; see gridftp/record.hpp):
//
//  * kDisk        (DREG) — bw = a + b*disk, simple linear regression.
//  * kProbeDisk   (MREG) — bw = a + b*probe + c*disk, the paper's
//                          multivariate fit via 2-regressor normal
//                          equations.
//  * kDiskQuad    (PREG) — bw = a + b*disk + c*disk^2, the polynomial
//                          variant (same solver, x2 = disk^2).
//  * kHybridRatio (HYB)  — mean of observed bw/probe ratios scaled by
//                          the latest probe: the NWS-correction hybrid.
//
// Every model evaluates its fit at the *latest* qualifying regressor
// values (a nowcast), so the Query contract of the rest of the battery
// is unchanged.  Observations whose regressors are missing (0), negative
// or non-finite are skipped — a disk-field-free log yields no
// qualifying samples and the predictors answer nullopt, leaving the
// univariate battery's behavior bit-identical to pre-regression runs.
//
// Identity contract: RegressionCore is the *single* accumulator used by
// the stateless batch path and the streaming engine, so the streaming
// fits are EXPECT_DOUBLE_EQ-identical to an offline batch fit by
// construction (same adds in the same order, same solve).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "predict/classifier.hpp"
#include "predict/incremental.hpp"
#include "predict/predictors.hpp"
#include "predict/suite.hpp"
#include "predict/window.hpp"
#include "util/types.hpp"

namespace wadp::predict {

enum class RegressionModel {
  kDisk,         ///< bw = a + b*disk
  kProbeDisk,    ///< bw = a + b*probe + c*disk
  kDiskQuad,     ///< bw = a + b*disk + c*disk^2
  kHybridRatio,  ///< bw = mean(bw_i/probe_i) * latest probe
};

const char* to_string(RegressionModel model);

/// Incremental least-squares accumulator shared by the batch and
/// streaming paths.  O(1) add, O(1) predict.  Regressors are shifted by
/// their first qualifying value (the StreamingAr trick) so a constant
/// regressor produces exactly-zero centered moments and the degenerate
/// fallback (drop the regressor; ultimately the plain mean) is
/// deterministic rather than at the mercy of rounding.
class RegressionCore {
 public:
  explicit RegressionCore(RegressionModel model) : model_(model) {}

  /// True when `o` carries finite values for everything `model` regresses
  /// on (positive disk/probe as required, finite bandwidth).
  static bool qualifies(RegressionModel model, const Observation& o);

  /// Absorbs one *qualifying* observation; call in history order.
  void add(const Observation& o);

  std::size_t count() const { return n_; }

  /// The model evaluated at the latest added regressor values, clamped
  /// non-negative.  nullopt before the first add.  Callers enforce their
  /// own min-sample floors on count().
  std::optional<Bandwidth> predict() const;

 private:
  RegressionModel model_;
  std::size_t n_ = 0;
  bool shift_set_ = false;
  double shift_u_ = 0.0, shift_v_ = 0.0;  // first regressor values
  // Shifted sums: u/v are the (shifted) regressors, y the bandwidth.
  double su_ = 0.0, sv_ = 0.0, sy_ = 0.0;
  double suu_ = 0.0, svv_ = 0.0, suv_ = 0.0;
  double suy_ = 0.0, svy_ = 0.0;
  double last_u_ = 0.0, last_v_ = 0.0;
  // kHybridRatio state.
  double ratio_sum_ = 0.0;
  double last_probe_ = 0.0;
};

/// Stateless battery member: applies the window, filters qualifying
/// observations through a fresh RegressionCore, and nowcasts.  Only
/// all-data and last-N windows are supported.
class RegressionPredictor final : public Predictor {
 public:
  RegressionPredictor(std::string name, RegressionModel model,
                      WindowSpec window = WindowSpec::all(),
                      std::size_t min_samples = 5);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  RegressionModel model() const { return model_; }
  const WindowSpec& window() const { return window_; }
  std::size_t min_samples() const { return min_samples_; }

 private:
  RegressionModel model_;
  WindowSpec window_;
  std::size_t min_samples_;
};

/// Streaming counterpart.  All-data windows keep one persistent
/// RegressionCore (O(1) observe/predict); last-N windows keep the raw
/// window and replay it through a fresh core per predict (O(N), N <= 25
/// in the battery), which is the batch computation verbatim — identity
/// by construction either way.
class StreamingRegression final : public StreamingPredictor {
 public:
  StreamingRegression(std::string name, RegressionModel model,
                      WindowSpec window, std::size_t min_samples);
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;

 private:
  RegressionModel model_;
  WindowSpec window_;
  std::size_t min_samples_;
  RegressionCore all_core_;        // kAll: persistent accumulator
  std::size_t all_qualifying_ = 0;
  std::deque<Observation> last_n_;  // kLastN: raw window contents
};

/// The full battery for the regression era: the extended suite plus the
/// regression/hybrid members over all-data and last-25 windows (DREG,
/// DREG25, MREG, MREG25, PREG, PREG25, HYB, HYB25).
PredictorSuite regression_suite(
    SizeClassifier classifier = SizeClassifier::paper_classes());

}  // namespace wadp::predict
