// Incremental prediction engine: streaming counterparts to the
// stateless Section 4 battery.
//
// A stateless Predictor recomputes from the full history prefix on
// every call — O(window) per query, O(N^2) when replayed over a log.
// A StreamingPredictor instead absorbs one observation at a time and
// keeps just enough per-family state to answer the next query in O(1)
// (means, AR fits) or O(log W) (medians) amortized:
//
//   * mean families    — a running sum for the all-data window, an
//     evicting deque for last-N / last-duration windows (bounded
//     windows are re-summed left-to-right, which keeps them
//     bit-identical to the batch path; unbounded temporal windows use
//     a compensated rolling sum with amortized exact rebuilds);
//   * median families  — a dual-multiset sliding median: two balanced
//     halves (max-half / min-half) whose boundary elements are the
//     paper's order statistics, O(log W) insert/evict;
//   * AR families      — running shifted moments (n, Σu, Σw, Σu²,
//     Σu·w over consecutive (Y_{t-1}, Y_t) pairs) plus monotonic
//     min/max deques that detect constant lagged series exactly, so
//     the degenerate-fit fallback matches util::ar1_fit bit-for-bit;
//   * classified (/fs) — per-size-class partitioned sub-states
//     replacing ClassifiedPredictor's per-query filter-copy.
//
// Contract: observations must arrive in non-decreasing time order, and
// query times must be non-decreasing as well (interleaved with
// observes) — temporal windows evict history older than `query.time -
// duration` and cannot resurrect it.  Every state reports
// safe_query_time(); wrappers that cannot guarantee monotone queries
// (the online adapters, the prediction service) check it and fall back
// to the stateless path for time-travelling queries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "predict/classifier.hpp"
#include "predict/observation.hpp"
#include "predict/predictors.hpp"
#include "predict/suite.hpp"
#include "predict/window.hpp"
#include "util/types.hpp"

namespace wadp::predict {

class StreamingPredictor {
 public:
  virtual ~StreamingPredictor() = default;

  /// Same stable name as the stateless counterpart ("AVG25", "MED5/fs").
  const std::string& name() const { return name_; }

  /// Absorbs one measurement; times must be non-decreasing across calls.
  virtual void observe(const Observation& observation) = 0;

  /// Prediction from everything observed so far, equivalent to the
  /// stateless predictor applied to the full accumulated history.
  /// Non-const: temporal windows advance their eviction frontier.
  virtual std::optional<Bandwidth> predict(const Query& query) = 0;

  /// Earliest query time this state can still answer exactly.  Queries
  /// at `time >= safe_query_time()` are always exact; earlier ones may
  /// need history a temporal window has already evicted.  -infinity
  /// for states that never discard data.
  virtual SimTime safe_query_time() const {
    return -std::numeric_limits<SimTime>::infinity();
  }

 protected:
  explicit StreamingPredictor(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// Streaming MeanPredictor: O(1) observe; predict is O(1) for all-data
/// and temporal windows, O(N) for a last-N window (N is the spec
/// constant, <= 25 in the paper battery) to stay bit-identical with the
/// batch left-to-right sum.
class StreamingMean final : public StreamingPredictor {
 public:
  StreamingMean(std::string name, WindowSpec window);
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;
  SimTime safe_query_time() const override;
  const WindowSpec& window() const { return window_; }

 private:
  void evict_before(SimTime cutoff);
  void rebuild_sum();

  WindowSpec window_;
  // kAll: running left-to-right sum (bit-identical to util::mean).
  double all_sum_ = 0.0;
  std::size_t all_count_ = 0;
  // kLastN: the window itself; re-summed per predict.
  std::deque<double> last_n_;
  // kLastDuration: the window plus a Neumaier-compensated rolling sum,
  // exactly rebuilt every |window| updates so drift stays a few ulps.
  std::deque<Observation> timed_;
  double rolling_sum_ = 0.0;
  double rolling_comp_ = 0.0;
  std::size_t ops_since_rebuild_ = 0;
  SimTime evicted_through_ = -std::numeric_limits<SimTime>::infinity();
};

/// Streaming MedianPredictor: dual-multiset sliding median, O(log W)
/// observe/evict, O(1) median read-off.  Bit-identical to sorting the
/// window: the halves' boundary elements are the batch order statistics.
class StreamingMedian final : public StreamingPredictor {
 public:
  StreamingMedian(std::string name, WindowSpec window);
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;
  SimTime safe_query_time() const override;
  const WindowSpec& window() const { return window_; }

 private:
  void insert_value(double value);
  void erase_value(double value);
  void rebalance();
  void evict_before(SimTime cutoff);

  WindowSpec window_;
  std::deque<Observation> order_;    // window contents in arrival order
  std::multiset<double> lo_;         // smaller half; |lo| = |hi| or |hi|+1
  std::multiset<double> hi_;         // larger half
  SimTime evicted_through_ = -std::numeric_limits<SimTime>::infinity();
};

/// Streaming LastValuePredictor: O(1) everything.
class StreamingLastValue final : public StreamingPredictor {
 public:
  explicit StreamingLastValue(std::string name = "LV");
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;

 private:
  std::optional<double> last_;
};

/// Streaming ArPredictor: running shifted moments over consecutive
/// (Y_{t-1}, Y_t) pairs give the OLS fit in O(1); monotonic min/max
/// deques over the lagged values detect constant windows exactly, so
/// the degenerate fallback (predict the last value) matches
/// util::ar1_fit.  Windowed variants evict pairs as observations leave
/// the window and rebuild moments exactly every |window| updates.
class StreamingAr final : public StreamingPredictor {
 public:
  StreamingAr(std::string name, WindowSpec window, std::size_t min_samples = 3);
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;
  SimTime safe_query_time() const override;
  const WindowSpec& window() const { return window_; }

 private:
  struct MinMaxEntry {
    std::uint64_t seq;
    double value;
  };

  void add_pair(double prev, double value);
  void remove_front_pair();
  void evict_front_observation();
  void evict_before(SimTime cutoff);
  void maybe_rebuild();
  void rebuild_from_window();
  double fit_and_predict() const;

  WindowSpec window_;
  std::size_t min_samples_;
  // Window contents (empty for the all-data window, which never evicts).
  std::deque<Observation> obs_;
  std::size_t count_ = 0;      // observations currently in the window
  double last_value_ = 0.0;    // newest value in the window
  // Shifted pair moments: u = Y_{t-1} - shift, w = Y_t - shift.
  double shift_ = 0.0;
  bool shift_set_ = false;
  std::size_t pairs_ = 0;
  double su_ = 0.0, sw_ = 0.0, suu_ = 0.0, suw_ = 0.0;
  // Monotonic deques over lagged values for exact min/max under eviction.
  std::deque<MinMaxEntry> min_deque_, max_deque_;
  std::uint64_t next_pair_seq_ = 0;
  std::uint64_t front_pair_seq_ = 0;
  std::size_t ops_since_rebuild_ = 0;
  SimTime evicted_through_ = -std::numeric_limits<SimTime>::infinity();
};

/// Streaming ClassifiedPredictor: one sub-state per size class; each
/// observation/query is routed to its class, so nothing is ever
/// filtered or copied.  Matches the batch filter-then-predict exactly
/// because filtering preserves arrival order.
class StreamingClassified final : public StreamingPredictor {
 public:
  /// `make_base` is called once per size class during construction (it
  /// is not retained) and must return a fresh base-family state.
  StreamingClassified(
      std::string name, SizeClassifier classifier,
      const std::function<std::unique_ptr<StreamingPredictor>()>& make_base);
  void observe(const Observation& observation) override;
  std::optional<Bandwidth> predict(const Query& query) override;
  SimTime safe_query_time() const override;

 private:
  SizeClassifier classifier_;
  std::vector<std::unique_ptr<StreamingPredictor>> per_class_;
};

/// Builds the streaming counterpart of a stateless predictor, or
/// nullptr when the concrete type has no incremental form (extended
/// battery members fall back to the stateless path).
std::unique_ptr<StreamingPredictor> make_streaming(const Predictor& predictor);

/// The streaming battery: mirrors PredictorSuite name-for-name and
/// fans observations out to every member.
class StreamingSuite {
 public:
  /// Streaming counterpart of PredictorSuite::paper_suite() — same
  /// thirty predictors, same names, same order.
  static StreamingSuite paper_suite(
      SizeClassifier classifier = SizeClassifier::paper_classes());

  /// Streaming counterparts of every adaptable member of `suite`, in
  /// suite order.  Members without an incremental form get a null slot
  /// (visible via predictor(i) == nullptr) so callers can fall back.
  static StreamingSuite from(const PredictorSuite& suite);

  StreamingSuite() = default;

  void add(std::unique_ptr<StreamingPredictor> predictor);

  /// Feeds one measurement to every member.
  void observe(const Observation& observation);

  std::size_t size() const { return predictors_.size(); }
  StreamingPredictor* predictor(std::size_t index) const {
    return predictors_[index].get();
  }
  const std::vector<std::string>& names() const { return names_; }

  /// Lookup by name; nullptr when absent or not adaptable.
  StreamingPredictor* find(std::string_view name) const;

  /// Every member's answer, in suite order (null slots answer nullopt).
  std::vector<std::pair<std::string, std::optional<Bandwidth>>> predict_all(
      const Query& query);

 private:
  void add_slot(std::string name, std::unique_ptr<StreamingPredictor> predictor);

  std::vector<std::unique_ptr<StreamingPredictor>> predictors_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace wadp::predict
