// The predictor battery (Section 4).
//
// A Predictor is a pure function of the (time-ordered) measurement
// history and a query: it returns the expected bandwidth of the next
// transfer, or nullopt when the history it is allowed to see is too
// thin.  Three mathematical families (Section 4.1) — mean-based,
// median-based, and the degenerate ARIMA regression Y_t = a + b*Y_{t-1}
// — are each combined with a history window (Section 4.2), and any
// predictor can be wrapped in file-size classification (Section 4.3).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "predict/classifier.hpp"
#include "predict/observation.hpp"
#include "predict/window.hpp"
#include "util/types.hpp"

namespace wadp::predict {

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Short stable name ("AVG25", "MED5", "AR10d"), as in Fig. 4.
  const std::string& name() const { return name_; }

  /// Predicted bandwidth (bytes/s) for `query` given `history`, which
  /// must be ordered by Observation::time.  nullopt when the usable
  /// subset of the history is insufficient for this technique.
  virtual std::optional<Bandwidth> predict(
      std::span<const Observation> history, const Query& query) const = 0;

 protected:
  explicit Predictor(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// Arithmetic mean over a window (AVG, AVG5/15/25, AVG5hr/15hr/25hr).
class MeanPredictor final : public Predictor {
 public:
  MeanPredictor(std::string name, WindowSpec window);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  const WindowSpec& window() const { return window_; }

 private:
  WindowSpec window_;
};

/// Median over a window (MED, MED5/15/25).  Robust to asymmetric
/// outliers, jittery on smooth data (Section 4.1).
class MedianPredictor final : public Predictor {
 public:
  MedianPredictor(std::string name, WindowSpec window);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  const WindowSpec& window() const { return window_; }

 private:
  WindowSpec window_;
};

/// The degenerate sliding-window case: the last measurement (LV).
class LastValuePredictor final : public Predictor {
 public:
  explicit LastValuePredictor(std::string name = "LV");
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
};

/// The paper's ARIMA-model technique: ordinary least squares on
/// (Y_{t-1}, Y_t) pairs in the window, predicting a + b*Y_last.
/// Needs min_samples history points (the paper notes the technique
/// really wants >= 50 equally spaced samples; we enforce only a small
/// floor and let the evaluation show the consequences, as the paper's
/// does).  Predictions are clamped to be non-negative.
class ArPredictor final : public Predictor {
 public:
  ArPredictor(std::string name, WindowSpec window, std::size_t min_samples = 3);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  const WindowSpec& window() const { return window_; }
  std::size_t min_samples() const { return min_samples_; }

 private:
  WindowSpec window_;
  std::size_t min_samples_;
};

/// Context-sensitive wrapper: filters the history to observations in
/// the same size class as the query, then delegates.  This is the
/// "file-size classification" of Section 4.3 applied to any base
/// technique.
class ClassifiedPredictor final : public Predictor {
 public:
  /// Named "<base>/fs" by default ("fs" = filtered by file size).
  ClassifiedPredictor(std::shared_ptr<const Predictor> base,
                      SizeClassifier classifier);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  const Predictor& base() const { return *base_; }
  /// Shared ownership of the base, for adapters that may outlive this
  /// wrapper (predict::make_streaming).
  const std::shared_ptr<const Predictor>& base_ptr() const { return base_; }
  const SizeClassifier& classifier() const { return classifier_; }

 private:
  std::shared_ptr<const Predictor> base_;
  SizeClassifier classifier_;
};

}  // namespace wadp::predict
