#include "predict/online.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {

HistoryPredictor::HistoryPredictor(std::shared_ptr<const Predictor> base)
    : OnlinePredictor(base->name()), base_(std::move(base)) {}

void HistoryPredictor::observe(const Observation& observation) {
  WADP_CHECK_MSG(history_.empty() || observation.time >= history_.back().time,
                 "observations must arrive in time order");
  history_.push_back(observation);
}

std::optional<Bandwidth> HistoryPredictor::predict(const Query& query) const {
  return base_->predict(history_, query);
}

DynamicSelector::DynamicSelector(
    std::string name, std::vector<std::shared_ptr<const Predictor>> candidates)
    : OnlinePredictor(std::move(name)), candidates_(std::move(candidates)) {
  WADP_CHECK_MSG(!candidates_.empty(), "selector needs candidates");
  for (const auto& c : candidates_) WADP_CHECK(c != nullptr);
  error_sum_.assign(candidates_.size(), 0.0);
  error_count_.assign(candidates_.size(), 0);
}

void DynamicSelector::observe(const Observation& observation) {
  WADP_CHECK_MSG(history_.empty() || observation.time >= history_.back().time,
                 "observations must arrive in time order");
  // Score every candidate on this measurement *before* absorbing it —
  // exactly the postmortem NWS runs on each new sensor reading.
  if (observation.value > 0.0) {
    const Query query{.time = observation.time,
                      .file_size = observation.file_size};
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (const auto p = candidates_[i]->predict(history_, query)) {
        error_sum_[i] += util::percent_error(observation.value, *p);
        ++error_count_[i];
      }
    }
  }
  history_.push_back(observation);
}

std::size_t DynamicSelector::best_index() const {
  std::size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (error_count_[i] == 0) continue;
    const double mean = error_sum_[i] / static_cast<double>(error_count_[i]);
    if (mean < best_mean) {
      best_mean = mean;
      best = i;
    }
  }
  return best;  // index 0 until anyone has a track record
}

std::optional<Bandwidth> DynamicSelector::predict(const Query& query) const {
  return candidates_[best_index()]->predict(history_, query);
}

const std::string& DynamicSelector::current_choice() const {
  return candidates_[best_index()]->name();
}

std::vector<std::pair<std::string, double>> DynamicSelector::scores() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const double mean =
        error_count_[i] ? error_sum_[i] / static_cast<double>(error_count_[i])
                        : std::numeric_limits<double>::quiet_NaN();
    out.emplace_back(candidates_[i]->name(), mean);
  }
  return out;
}

}  // namespace wadp::predict
