#include "predict/online.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {

HistoryPredictor::HistoryPredictor(std::shared_ptr<const Predictor> base)
    : OnlinePredictor(base->name()),
      base_(std::move(base)),
      streaming_(make_streaming(*base_)) {}

HistoryPredictor::HistoryPredictor(std::shared_ptr<const Predictor> base,
                                   SharedSeries shared)
    : OnlinePredictor(base->name()),
      base_(std::move(base)),
      streaming_(make_streaming(*base_)),
      shared_(std::move(shared)) {
  WADP_CHECK_MSG(shared_ != nullptr, "borrowed series must not be null");
}

std::span<const Observation> HistoryPredictor::history() const {
  if (shared_) return std::span(*shared_).first(fed_);
  return history_;
}

void HistoryPredictor::observe(const Observation& observation) {
  const auto fed = history();
  WADP_CHECK_MSG(fed.empty() || observation.time >= fed.back().time,
                 "observations must arrive in time order");
  if (shared_) {
    WADP_CHECK_MSG(fed_ < shared_->size(),
                   "observe() past the end of the borrowed series");
    ++fed_;
  } else {
    history_.push_back(observation);
  }
  if (streaming_) streaming_->observe(observation);
}

std::optional<Bandwidth> HistoryPredictor::predict(const Query& query) const {
  // Streaming state answers any query at or past its eviction frontier;
  // a query older than data a temporal window already dropped falls
  // back to the stateless recomputation over the recorded history.
  if (streaming_ && query.time >= streaming_->safe_query_time()) {
    return streaming_->predict(query);
  }
  return base_->predict(history(), query);
}

DynamicSelector::DynamicSelector(
    std::string name, std::vector<std::shared_ptr<const Predictor>> candidates)
    : OnlinePredictor(std::move(name)), candidates_(std::move(candidates)) {
  WADP_CHECK_MSG(!candidates_.empty(), "selector needs candidates");
  streams_.reserve(candidates_.size());
  for (const auto& c : candidates_) {
    WADP_CHECK(c != nullptr);
    streams_.push_back(make_streaming(*c));
  }
  error_sum_.assign(candidates_.size(), 0.0);
  error_count_.assign(candidates_.size(), 0);
}

DynamicSelector::DynamicSelector(
    std::string name, std::vector<std::shared_ptr<const Predictor>> candidates,
    SharedSeries shared)
    : DynamicSelector(std::move(name), std::move(candidates)) {
  WADP_CHECK_MSG(shared != nullptr, "borrowed series must not be null");
  shared_ = std::move(shared);
}

std::span<const Observation> DynamicSelector::fallback_history() const {
  if (shared_) return std::span(*shared_).first(fed_);
  return history_;
}

std::optional<Bandwidth> DynamicSelector::candidate_predict(
    std::size_t index, const Query& query) const {
  const auto& stream = streams_[index];
  if (stream && query.time >= stream->safe_query_time()) {
    return stream->predict(query);
  }
  return candidates_[index]->predict(fallback_history(), query);
}

void DynamicSelector::observe(const Observation& observation) {
  const auto fed = fallback_history();
  WADP_CHECK_MSG(fed.empty() || observation.time >= fed.back().time,
                 "observations must arrive in time order");
  // Score every candidate on this measurement *before* absorbing it —
  // exactly the postmortem NWS runs on each new sensor reading.  Each
  // score is one O(1) streaming query instead of a history rescan.
  if (observation.value > 0.0) {
    const Query query{.time = observation.time,
                      .file_size = observation.file_size};
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (const auto p = candidate_predict(i, query)) {
        error_sum_[i] += util::percent_error(observation.value, *p);
        ++error_count_[i];
      }
    }
  }
  if (shared_) {
    WADP_CHECK_MSG(fed_ < shared_->size(),
                   "observe() past the end of the borrowed series");
    ++fed_;
  } else {
    history_.push_back(observation);
  }
  for (const auto& stream : streams_) {
    if (stream) stream->observe(observation);
  }
}

std::size_t DynamicSelector::best_index() const {
  std::size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (error_count_[i] == 0) continue;
    const double mean = error_sum_[i] / static_cast<double>(error_count_[i]);
    if (mean < best_mean) {
      best_mean = mean;
      best = i;
    }
  }
  return best;  // index 0 until anyone has a track record
}

std::optional<Bandwidth> DynamicSelector::predict(const Query& query) const {
  return candidate_predict(best_index(), query);
}

const std::string& DynamicSelector::current_choice() const {
  return candidates_[best_index()]->name();
}

std::vector<std::pair<std::string, double>> DynamicSelector::scores() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const double mean =
        error_count_[i] ? error_sum_[i] / static_cast<double>(error_count_[i])
                        : std::numeric_limits<double>::quiet_NaN();
    out.emplace_back(candidates_[i]->name(), mean);
  }
  return out;
}

}  // namespace wadp::predict
