#include "predict/recommend.hpp"

#include <algorithm>

namespace wadp::predict {

std::optional<Recommendation> recommend(std::span<const Observation> series,
                                        const PredictorSuite& suite,
                                        const EvalConfig& config) {
  EvalConfig eval_config = config;
  eval_config.keep_samples = false;  // ranking only needs aggregates
  const Evaluator evaluator(eval_config);
  const auto result = evaluator.run(series, suite.pointers());

  Recommendation recommendation;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    const auto& errors = result.errors(p);
    if (errors.count() == 0) continue;
    recommendation.ranking.emplace_back(result.predictor_names()[p],
                                        errors.mean());
  }
  if (recommendation.ranking.empty()) return std::nullopt;
  std::sort(recommendation.ranking.begin(), recommendation.ranking.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  recommendation.predictor = recommendation.ranking.front().first;
  recommendation.mean_error = recommendation.ranking.front().second;
  return recommendation;
}

}  // namespace wadp::predict
