#include "predict/predictors.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::predict {
namespace {

std::vector<double> values_of(std::span<const Observation> window) {
  std::vector<double> out;
  out.reserve(window.size());
  for (const auto& o : window) out.push_back(o.value);
  return out;
}

}  // namespace

MeanPredictor::MeanPredictor(std::string name, WindowSpec window)
    : Predictor(std::move(name)), window_(window) {}

std::optional<Bandwidth> MeanPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  if (window.empty()) return std::nullopt;
  return util::mean(values_of(window));
}

MedianPredictor::MedianPredictor(std::string name, WindowSpec window)
    : Predictor(std::move(name)), window_(window) {}

std::optional<Bandwidth> MedianPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  if (window.empty()) return std::nullopt;
  return util::median(values_of(window));
}

LastValuePredictor::LastValuePredictor(std::string name)
    : Predictor(std::move(name)) {}

std::optional<Bandwidth> LastValuePredictor::predict(
    std::span<const Observation> history, const Query& /*query*/) const {
  if (history.empty()) return std::nullopt;
  return history.back().value;
}

ArPredictor::ArPredictor(std::string name, WindowSpec window,
                         std::size_t min_samples)
    : Predictor(std::move(name)), window_(window), min_samples_(min_samples) {
  WADP_CHECK(min_samples_ >= 3);
}

std::optional<Bandwidth> ArPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const auto window = window_.apply(history, query.time);
  if (window.size() < min_samples_) return std::nullopt;
  const auto series = values_of(window);
  const auto fit = util::ar1_fit(series);
  if (!fit) return std::nullopt;
  const double predicted = fit->intercept + fit->slope * series.back();
  // Bandwidth cannot be negative; an extrapolation below zero is
  // reported as zero (and scored accordingly) rather than hidden.
  return std::max(0.0, predicted);
}

ClassifiedPredictor::ClassifiedPredictor(std::shared_ptr<const Predictor> base,
                                         SizeClassifier classifier)
    : Predictor(base->name() + "/fs"),
      base_(std::move(base)),
      classifier_(std::move(classifier)) {
  WADP_CHECK(base_ != nullptr);
}

std::optional<Bandwidth> ClassifiedPredictor::predict(
    std::span<const Observation> history, const Query& query) const {
  const int wanted = classifier_.classify(query.file_size);
  std::vector<Observation> filtered;
  filtered.reserve(history.size());
  for (const auto& o : history) {
    if (classifier_.classify(o.file_size) == wanted) filtered.push_back(o);
  }
  return base_->predict(filtered, query);
}

}  // namespace wadp::predict
