// History-selection windows (the paper's context-insensitive factors).
//
// Section 4.2 distinguishes fixed-length (sliding) windows — the last N
// measurements — from temporal windows — measurements within the last T
// time units, which suit irregularly spaced data because they track
// recent fluctuation regardless of sampling density.  WindowSpec
// captures both, plus the trivial "all data" window.
#pragma once

#include <span>
#include <string>

#include "predict/observation.hpp"
#include "util/types.hpp"

namespace wadp::predict {

class WindowSpec {
 public:
  enum class Kind { kAll, kLastN, kLastDuration };

  static WindowSpec all();
  static WindowSpec last_n(std::size_t n);
  static WindowSpec last_duration(Duration d);

  Kind kind() const { return kind_; }
  std::size_t n() const { return n_; }
  Duration duration() const { return duration_; }

  /// The suffix of `history` (assumed time-ordered) selected by this
  /// window at query time `now`.  Temporal windows keep observations
  /// with time >= now - duration.
  std::span<const Observation> apply(std::span<const Observation> history,
                                     SimTime now) const;

  /// "all", "last 5", "last 15hr", "last 10d" — used to build Fig. 4
  /// predictor names.
  std::string describe() const;

  bool operator==(const WindowSpec&) const = default;

 private:
  WindowSpec(Kind kind, std::size_t n, Duration d)
      : kind_(kind), n_(n), duration_(d) {}

  Kind kind_;
  std::size_t n_;
  Duration duration_;
};

}  // namespace wadp::predict
