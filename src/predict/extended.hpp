// Extended predictors beyond the paper's Fig. 4 battery.
//
// Section 4.1 notes that mean-based predictors vary in "the amount of
// weight put on each value"; Section 4.2 that window sizes "can be
// decided dynamically"; Section 4.3 that bandwidth correlates with
// file size.  The paper evaluates only the static battery and names the
// rest as variants/future work — these are those variants:
//
//  * EwmaPredictor         — exponentially weighted moving average,
//                            the classic "more weight on recent" mean.
//  * SizeRegressionPredictor — fits bandwidth = a + b*log(size) on the
//                            history and evaluates at the query size:
//                            classification's continuous cousin.
//  * AdaptiveWindowPredictor — picks the best last-N window per query
//                            by scoring each candidate window on the
//                            recent history it did not see (a small
//                            online cross-validation), per the
//                            dynamic-window discussion in Section 4.2.
#pragma once

#include <vector>

#include "predict/predictors.hpp"
#include "predict/suite.hpp"

namespace wadp::predict {

/// EWMA over the (optionally windowed) history:
///   s_0 = x_0;  s_i = alpha * x_i + (1 - alpha) * s_{i-1}.
/// alpha in (0, 1]; alpha -> 1 degenerates to last-value, alpha -> 0 to
/// a long-memory mean.
class EwmaPredictor final : public Predictor {
 public:
  EwmaPredictor(std::string name, double alpha,
                WindowSpec window = WindowSpec::all());
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  WindowSpec window_;
};

/// Ordinary least squares of bandwidth on log10(file size) over the
/// window; the prediction evaluates the fitted line at the query size.
/// Unlike ClassifiedPredictor it uses *all* sizes as signal, so it can
/// answer for a class that has never been transferred.  Falls back to
/// the window mean when sizes are (nearly) constant; clamps at zero.
class SizeRegressionPredictor final : public Predictor {
 public:
  SizeRegressionPredictor(std::string name,
                          WindowSpec window = WindowSpec::all(),
                          std::size_t min_samples = 5);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;

 private:
  WindowSpec window_;
  std::size_t min_samples_;
};

/// Chooses, per query, among candidate last-N windows by replaying each
/// candidate over the most recent `holdout` observations (predicting
/// each from the history before it) and using the lowest-error window
/// for the real prediction.
class AdaptiveWindowPredictor final : public Predictor {
 public:
  AdaptiveWindowPredictor(std::string name,
                          std::vector<std::size_t> candidate_windows = {1, 5,
                                                                        15, 25},
                          std::size_t holdout = 10);
  std::optional<Bandwidth> predict(std::span<const Observation> history,
                                   const Query& query) const override;

  /// The window predict() would use right now (for tests/diagnostics).
  std::optional<std::size_t> chosen_window(
      std::span<const Observation> history) const;

 private:
  std::vector<std::size_t> candidates_;
  std::size_t holdout_;
};

/// The extended battery: the paper's 30 plus classified variants of the
/// predictors above — used by the extended-battery ablation bench.
PredictorSuite extended_suite(
    SizeClassifier classifier = SizeClassifier::paper_classes());

}  // namespace wadp::predict
