// The paper's predictor set (Fig. 4 / Section 4.4): fifteen
// context-insensitive predictors, and the same fifteen applied to
// history partitioned by file size — thirty in total.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "predict/classifier.hpp"
#include "predict/predictors.hpp"

namespace wadp::predict {

class PredictorSuite {
 public:
  /// Builds the thirty predictors of Section 4.4 using `classifier` for
  /// the context-sensitive half.
  static PredictorSuite paper_suite(
      SizeClassifier classifier = SizeClassifier::paper_classes());

  /// Only the fifteen context-insensitive predictors of Fig. 4.
  static PredictorSuite context_insensitive();

  /// The context-sensitive fifteen ("<name>/fs").
  static PredictorSuite context_sensitive(
      SizeClassifier classifier = SizeClassifier::paper_classes());

  /// An empty suite to assemble custom batteries.
  PredictorSuite() = default;

  void add(std::shared_ptr<const Predictor> predictor);

  const std::vector<std::shared_ptr<const Predictor>>& predictors() const {
    return predictors_;
  }
  std::size_t size() const { return predictors_.size(); }

  /// Lookup by Fig. 4 name ("AVG15", "MED5/fs"); nullptr when absent.
  /// O(1): backed by a name→index map maintained by add().
  const Predictor* find(std::string_view name) const;

  /// Input-order index of `name`; nullopt when absent.
  std::optional<std::size_t> index_of(std::string_view name) const;

  /// Raw pointers in suite order, for the evaluator API.
  std::vector<const Predictor*> pointers() const;

  /// The fifteen Fig. 4 names in figure order.
  static const std::vector<std::string>& figure4_names();

 private:
  std::vector<std::shared_ptr<const Predictor>> predictors_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace wadp::predict
