#include "mds/gridftp_provider.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "history/adapter.hpp"
#include "predict/incremental.hpp"
#include "predict/observation.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace wadp::mds {
namespace {

using gridftp::Operation;
using predict::Observation;

/// Per-(remote, direction) accumulation, built in one streaming pass
/// over a series snapshot.  No raw observations are retained: summary
/// attributes come from Welford accumulators and per-class predictions
/// from incremental last-N means (routing each record to its size
/// class is exactly ClassifiedPredictor's filter, done once instead of
/// per query).
struct EndpointStats {
  util::RunningStats bandwidth;  // bytes/s, all classes
  std::vector<util::RunningStats> class_bandwidth;
  std::vector<predict::StreamingMean> class_mean;
  std::uint64_t failures = 0;  // outcome-tagged failed attempts
  std::uint64_t history_epoch = 0;  // freshest source-series epoch

  void add(const Observation& obs, const predict::SizeClassifier& classifier,
           std::size_t window) {
    // Failed attempts are counted but kept out of the bandwidth
    // summary: min/avg/max describe what *completed* transfers
    // achieved (the Fig. 6 semantics), while the failure count tells a
    // broker the endpoint has been flaky.
    if (!obs.ok) {
      ++failures;
      return;
    }
    if (class_bandwidth.empty()) {
      const int classes = classifier.num_classes();
      class_bandwidth.resize(static_cast<std::size_t>(classes));
      class_mean.reserve(static_cast<std::size_t>(classes));
      for (int cls = 0; cls < classes; ++cls) {
        class_mean.emplace_back(
            "AVG" + std::to_string(window),
            predict::WindowSpec::last_n(window));
      }
    }
    bandwidth.add(obs.value);
    const auto cls = static_cast<std::size_t>(classifier.classify(obs.file_size));
    class_bandwidth[cls].add(obs.value);
    class_mean[cls].observe(obs);
  }
};

std::string kb_value(double bytes_per_sec) {
  return util::format("%.0f", to_kb_per_sec(bytes_per_sec));
}

}  // namespace

GridFtpInfoProvider::GridFtpInfoProvider(const gridftp::GridFtpServer& server,
                                         GridFtpProviderConfig config)
    : server_(server), config_(std::move(config)) {}

std::string GridFtpInfoProvider::provider_name() const {
  return "gridftp-perf:" + server_.config().host;
}

std::string GridFtpInfoProvider::range_fragment(
    const predict::SizeClassifier& classifier, int cls) {
  if (classifier.boundaries() ==
      std::vector<Bytes>{50 * kMB, 250 * kMB, 750 * kMB}) {
    static const char* kNames[] = {"tenmbrange", "hundredmbrange",
                                   "fivehundredmbrange", "onegbrange"};
    return kNames[cls];
  }
  return util::format("class%drange", cls);
}

Schema GridFtpInfoProvider::schema() {
  Schema schema;
  schema.define(ObjectClassDef{
      .name = "GridFTPPerfInfo",
      .required = {"cn", "hostname", "gridftpurl"},
      .optional = {"numrdtransfers",  "minrdbandwidth", "maxrdbandwidth",
                   "avgrdbandwidth",  "numwrtransfers", "minwrbandwidth",
                   "maxwrbandwidth",  "avgwrbandwidth", "lastupdate",
                   "numrdfailures",   "numwrfailures",  "historyepoch"},
  });
  schema.define(ObjectClassDef{
      .name = "GridFTPServerInfo",
      .required = {"hostname", "gridftpurl", "numtransfers"},
      .optional = {"port", "volumes", "lastupdate"},
  });
  return schema;
}

std::vector<Entry> GridFtpInfoProvider::provide(SimTime now) {
  // The history plane already holds this server's transfers grouped by
  // (remote endpoint, direction) — the filtering the paper's provider
  // scripts performed over the raw log on every request.  Snapshots are
  // immutable, so a provider refresh racing live ingest reads one
  // consistent epoch per series.  Without a shared store (standalone
  // `wadp provider` over a raw log), build an ephemeral, uninstrumented
  // one so there is exactly one stats path.
  std::unique_ptr<history::HistoryStore> local;
  const history::HistoryStore* store = config_.history;
  if (store == nullptr) {
    local = std::make_unique<history::HistoryStore>(
        history::StoreConfig{.shard_count = 1, .instrumented = false});
    local->ingest_log(server_.log());
    store = local.get();
  }

  std::map<std::string, EndpointStats> reads;
  std::map<std::string, EndpointStats> writes;
  for (const auto& key : store->keys_for_host(server_.config().host)) {
    const auto snapshot = store->snapshot(key);
    auto& bucket =
        (key.op == Operation::kRead ? reads : writes)[key.remote_ip];
    bucket.history_epoch = std::max(bucket.history_epoch, snapshot.epoch());
    for (const Observation& obs : snapshot.observations()) {
      bucket.add(obs, config_.classifier, config_.prediction_window);
    }
  }

  std::vector<Entry> entries;

  // Server summary entry at the suffix itself.
  {
    Entry server_entry(config_.base);
    server_entry.add("objectclass", "GridFTPServerInfo");
    server_entry.set("hostname", server_.config().host);
    server_entry.set("gridftpurl", server_.url());
    server_entry.set("port", std::to_string(server_.config().port));
    server_entry.set("numtransfers",
                     std::to_string(server_.transfers_logged()));
    for (const auto& volume : server_.fs().volumes()) {
      server_entry.add("volumes", volume);
    }
    server_entry.set("lastupdate", util::format("%.0f", now));
    entries.push_back(std::move(server_entry));
  }

  // One entry per remote endpoint, read and write stats combined.
  std::map<std::string, Entry> per_remote;
  const auto endpoint_entry = [&](const std::string& remote) -> Entry& {
    auto it = per_remote.find(remote);
    if (it == per_remote.end()) {
      Entry entry(config_.base.child(Rdn{"cn", remote}));
      entry.add("objectclass", "GridFTPPerfInfo");
      entry.set("cn", remote);
      entry.set("hostname", server_.config().host);
      entry.set("gridftpurl", server_.url());
      entry.set("lastupdate", util::format("%.0f", now));
      it = per_remote.emplace(remote, std::move(entry)).first;
    }
    return it->second;
  };

  const auto publish_direction = [&](const std::string& prefix,
                                     const std::string& remote,
                                     EndpointStats& stats) {
    Entry& entry = endpoint_entry(remote);
    entry.set("num" + prefix + "transfers",
              std::to_string(stats.bandwidth.count()));
    if (stats.failures > 0) {
      entry.set("num" + prefix + "failures", std::to_string(stats.failures));
    }
    if (stats.history_epoch > 0) {
      // Freshness marker: the newest source-series epoch behind this
      // entry.  Brokers comparing entries from several GIIS paths
      // prefer the highest (see ReplicaBroker::predicted_for).
      const auto prior = entry.get_double("historyepoch");
      if (!prior || *prior < static_cast<double>(stats.history_epoch)) {
        entry.set("historyepoch", std::to_string(stats.history_epoch));
      }
    }
    if (stats.bandwidth.count() == 0) return;  // failures only: no stats
    entry.set("min" + prefix + "bandwidth", kb_value(stats.bandwidth.min()));
    entry.set("max" + prefix + "bandwidth", kb_value(stats.bandwidth.max()));
    entry.set("avg" + prefix + "bandwidth", kb_value(stats.bandwidth.mean()));

    // Per-class averages and predictions (Fig. 6's
    // "avgrdbandwidthtenmbrange" style attributes), read off the
    // streaming state built during the grouping pass.
    const auto& classifier = config_.classifier;
    for (int cls = 0; cls < classifier.num_classes(); ++cls) {
      const auto slot = static_cast<std::size_t>(cls);
      const std::string fragment = range_fragment(classifier, cls);
      if (stats.class_bandwidth[slot].count() > 0) {
        entry.set("avg" + prefix + "bandwidth" + fragment,
                  kb_value(stats.class_bandwidth[slot].mean()));
      }
      const predict::Query query{
          .time = now, .file_size = classifier.representative_size(cls)};
      if (const auto predicted = stats.class_mean[slot].predict(query)) {
        entry.set("predicted" + prefix + "bandwidth" + fragment,
                  kb_value(*predicted));
      }
    }
  };

  for (auto& [remote, stats] : reads) {
    publish_direction("rd", remote, stats);
  }
  for (auto& [remote, stats] : writes) {
    publish_direction("wr", remote, stats);
  }
  for (auto& [remote, entry] : per_remote) {
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace wadp::mds
