#include "mds/gridftp_provider.hpp"

#include <algorithm>
#include <map>

#include "predict/observation.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace wadp::mds {
namespace {

using gridftp::Operation;
using gridftp::TransferRecord;
using predict::Observation;

/// Per-(remote, direction) accumulation extracted from the log.
struct EndpointStats {
  std::vector<Observation> observations;  // time-ordered (log order)
  util::RunningStats bandwidth;           // bytes/s
};

std::string kb_value(double bytes_per_sec) {
  return util::format("%.0f", to_kb_per_sec(bytes_per_sec));
}

}  // namespace

GridFtpInfoProvider::GridFtpInfoProvider(const gridftp::GridFtpServer& server,
                                         GridFtpProviderConfig config)
    : server_(server), config_(std::move(config)) {}

std::string GridFtpInfoProvider::provider_name() const {
  return "gridftp-perf:" + server_.config().host;
}

std::string GridFtpInfoProvider::range_fragment(
    const predict::SizeClassifier& classifier, int cls) {
  if (classifier.boundaries() ==
      std::vector<Bytes>{50 * kMB, 250 * kMB, 750 * kMB}) {
    static const char* kNames[] = {"tenmbrange", "hundredmbrange",
                                   "fivehundredmbrange", "onegbrange"};
    return kNames[cls];
  }
  return util::format("class%drange", cls);
}

Schema GridFtpInfoProvider::schema() {
  Schema schema;
  schema.define(ObjectClassDef{
      .name = "GridFTPPerfInfo",
      .required = {"cn", "hostname", "gridftpurl"},
      .optional = {"numrdtransfers",  "minrdbandwidth", "maxrdbandwidth",
                   "avgrdbandwidth",  "numwrtransfers", "minwrbandwidth",
                   "maxwrbandwidth",  "avgwrbandwidth", "lastupdate"},
  });
  schema.define(ObjectClassDef{
      .name = "GridFTPServerInfo",
      .required = {"hostname", "gridftpurl", "numtransfers"},
      .optional = {"port", "volumes", "lastupdate"},
  });
  return schema;
}

std::vector<Entry> GridFtpInfoProvider::provide(SimTime now) {
  // Group the live log by (remote endpoint, direction).  This is the
  // log filtering the paper's provider scripts performed on request.
  std::map<std::string, EndpointStats> reads;
  std::map<std::string, EndpointStats> writes;
  for (const TransferRecord& r : server_.log().records()) {
    auto& bucket =
        (r.op == Operation::kRead ? reads : writes)[r.source_ip];
    bucket.observations.push_back(Observation{
        .time = r.end_time, .value = r.bandwidth(), .file_size = r.file_size});
    bucket.bandwidth.add(r.bandwidth());
  }

  std::vector<Entry> entries;

  // Server summary entry at the suffix itself.
  {
    Entry server_entry(config_.base);
    server_entry.add("objectclass", "GridFTPServerInfo");
    server_entry.set("hostname", server_.config().host);
    server_entry.set("gridftpurl", server_.url());
    server_entry.set("port", std::to_string(server_.config().port));
    server_entry.set("numtransfers",
                     std::to_string(server_.transfers_logged()));
    for (const auto& volume : server_.fs().volumes()) {
      server_entry.add("volumes", volume);
    }
    server_entry.set("lastupdate", util::format("%.0f", now));
    entries.push_back(std::move(server_entry));
  }

  // One entry per remote endpoint, read and write stats combined.
  std::map<std::string, Entry> per_remote;
  const auto endpoint_entry = [&](const std::string& remote) -> Entry& {
    auto it = per_remote.find(remote);
    if (it == per_remote.end()) {
      Entry entry(config_.base.child(Rdn{"cn", remote}));
      entry.add("objectclass", "GridFTPPerfInfo");
      entry.set("cn", remote);
      entry.set("hostname", server_.config().host);
      entry.set("gridftpurl", server_.url());
      entry.set("lastupdate", util::format("%.0f", now));
      it = per_remote.emplace(remote, std::move(entry)).first;
    }
    return it->second;
  };

  const auto publish_direction = [&](const std::string& prefix,
                                     const std::string& remote,
                                     const EndpointStats& stats) {
    Entry& entry = endpoint_entry(remote);
    entry.set("num" + prefix + "transfers",
              std::to_string(stats.bandwidth.count()));
    entry.set("min" + prefix + "bandwidth", kb_value(stats.bandwidth.min()));
    entry.set("max" + prefix + "bandwidth", kb_value(stats.bandwidth.max()));
    entry.set("avg" + prefix + "bandwidth", kb_value(stats.bandwidth.mean()));

    // Per-class averages and predictions (Fig. 6's
    // "avgrdbandwidthtenmbrange" style attributes).
    const auto& classifier = config_.classifier;
    const predict::ClassifiedPredictor predictor(
        std::make_shared<predict::MeanPredictor>(
            "AVG" + std::to_string(config_.prediction_window),
            predict::WindowSpec::last_n(config_.prediction_window)),
        classifier);
    for (int cls = 0; cls < classifier.num_classes(); ++cls) {
      std::vector<double> in_class;
      for (const auto& o : stats.observations) {
        if (classifier.classify(o.file_size) == cls) in_class.push_back(o.value);
      }
      const std::string fragment = range_fragment(classifier, cls);
      if (const auto avg = util::mean(in_class)) {
        entry.set("avg" + prefix + "bandwidth" + fragment, kb_value(*avg));
      }
      const predict::Query query{
          .time = now, .file_size = classifier.representative_size(cls)};
      if (const auto predicted = predictor.predict(stats.observations, query)) {
        entry.set("predicted" + prefix + "bandwidth" + fragment,
                  kb_value(*predicted));
      }
    }
  };

  for (const auto& [remote, stats] : reads) {
    publish_direction("rd", remote, stats);
  }
  for (const auto& [remote, stats] : writes) {
    publish_direction("wr", remote, stats);
  }
  for (auto& [remote, entry] : per_remote) {
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace wadp::mds
