#include "mds/filter.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace wadp::mds {

struct Filter::Node {
  enum class Kind { kAnd, kOr, kNot, kEquality, kPresence, kGreaterEq, kLessEq };
  Kind kind;
  std::vector<std::shared_ptr<const Node>> children;  // composites
  std::string attr;                                   // items
  std::string value;                                  // items (may hold '*')
};

// --- matching ---------------------------------------------------------------

namespace {

/// Case-insensitive wildcard match: '*' matches any run of characters.
bool wildcard_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with backtracking on the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  const auto eq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (p < pattern.size() && eq(pattern[p], text[t])) {
      ++p;
      ++t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

/// Numeric when both sides parse; lexicographic otherwise.
int compare_values(std::string_view a, std::string_view b) {
  const auto na = util::parse_double(a);
  const auto nb = util::parse_double(b);
  if (na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

bool node_matches(const Filter::Node& node, const Entry& entry);

bool item_matches(const Filter::Node& node, const Entry& entry) {
  const auto values = entry.get_all(node.attr);
  switch (node.kind) {
    case Filter::Node::Kind::kPresence:
      return !values.empty();
    case Filter::Node::Kind::kEquality:
      for (const auto v : values) {
        if (wildcard_match(node.value, v)) return true;
      }
      return false;
    case Filter::Node::Kind::kGreaterEq:
      for (const auto v : values) {
        if (compare_values(v, node.value) >= 0) return true;
      }
      return false;
    case Filter::Node::Kind::kLessEq:
      for (const auto v : values) {
        if (compare_values(v, node.value) <= 0) return true;
      }
      return false;
    default:
      return false;
  }
}

bool node_matches(const Filter::Node& node, const Entry& entry) {
  switch (node.kind) {
    case Filter::Node::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!node_matches(*child, entry)) return false;
      }
      return true;
    case Filter::Node::Kind::kOr:
      for (const auto& child : node.children) {
        if (node_matches(*child, entry)) return true;
      }
      return false;
    case Filter::Node::Kind::kNot:
      return !node_matches(*node.children.front(), entry);
    default:
      return item_matches(node, entry);
  }
}

// --- parsing ---------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::shared_ptr<const Filter::Node> parse() {
    skip_ws();
    auto node = parse_filter();
    skip_ws();
    if (node == nullptr || pos_ != text_.size()) return nullptr;
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::shared_ptr<const Filter::Node> parse_filter() {
    skip_ws();
    if (!consume('(')) return nullptr;
    std::shared_ptr<const Filter::Node> node;
    skip_ws();
    if (peek() == '&' || peek() == '|') {
      const bool is_and = peek() == '&';
      ++pos_;
      auto composite = std::make_shared<Filter::Node>();
      composite->kind = is_and ? Filter::Node::Kind::kAnd
                               : Filter::Node::Kind::kOr;
      skip_ws();
      while (peek() == '(') {
        auto child = parse_filter();
        if (child == nullptr) return nullptr;
        composite->children.push_back(std::move(child));
        skip_ws();
      }
      if (composite->children.empty()) return nullptr;
      node = composite;
    } else if (peek() == '!') {
      ++pos_;
      auto child = parse_filter();
      if (child == nullptr) return nullptr;
      auto negation = std::make_shared<Filter::Node>();
      negation->kind = Filter::Node::Kind::kNot;
      negation->children.push_back(std::move(child));
      node = negation;
    } else {
      node = parse_item();
      if (node == nullptr) return nullptr;
    }
    skip_ws();
    if (!consume(')')) return nullptr;
    return node;
  }

  std::shared_ptr<const Filter::Node> parse_item() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != ')' && text_[pos_] != '(') {
      ++pos_;
    }
    std::string attr(util::trim(text_.substr(start, pos_ - start)));
    if (attr.empty()) return nullptr;

    auto node = std::make_shared<Filter::Node>();
    node->attr = std::move(attr);
    if (consume('>')) {
      if (!consume('=')) return nullptr;
      node->kind = Filter::Node::Kind::kGreaterEq;
    } else if (consume('<')) {
      if (!consume('=')) return nullptr;
      node->kind = Filter::Node::Kind::kLessEq;
    } else if (consume('=')) {
      node->kind = Filter::Node::Kind::kEquality;
    } else {
      return nullptr;
    }

    const std::size_t vstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')' && text_[pos_] != '(') {
      ++pos_;
    }
    node->value = std::string(util::trim(text_.substr(vstart, pos_ - vstart)));
    if (node->kind == Filter::Node::Kind::kEquality && node->value == "*") {
      node->kind = Filter::Node::Kind::kPresence;
      node->value.clear();
    }
    if (node->kind != Filter::Node::Kind::kPresence && node->value.empty()) {
      return nullptr;
    }
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string node_to_string(const Filter::Node& node) {
  using Kind = Filter::Node::Kind;
  switch (node.kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      out += node.kind == Kind::kAnd ? '&' : '|';
      for (const auto& child : node.children) out += node_to_string(*child);
      out += ')';
      return out;
    }
    case Kind::kNot:
      return "(!" + node_to_string(*node.children.front()) + ")";
    case Kind::kPresence:
      return "(" + node.attr + "=*)";
    case Kind::kEquality:
      return "(" + node.attr + "=" + node.value + ")";
    case Kind::kGreaterEq:
      return "(" + node.attr + ">=" + node.value + ")";
    case Kind::kLessEq:
      return "(" + node.attr + "<=" + node.value + ")";
  }
  return "";
}

}  // namespace

std::optional<Filter> Filter::parse(std::string_view text) {
  Parser parser(text);
  auto root = parser.parse();
  if (root == nullptr) return std::nullopt;
  return Filter(std::move(root));
}

Filter Filter::match_all() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPresence;
  node->attr = "objectclass";
  return Filter(std::move(node));
}

bool Filter::matches(const Entry& entry) const {
  return node_matches(*root_, entry);
}

std::string Filter::to_string() const { return node_to_string(*root_); }

}  // namespace wadp::mds
