#include "mds/filter.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace wadp::mds {

struct Filter::Node {
  enum class Kind { kAnd, kOr, kNot, kEquality, kPresence, kGreaterEq, kLessEq };
  Kind kind;
  std::vector<std::shared_ptr<const Node>> children;  // composites
  std::string attr;                                   // items
  /// Decoded literal value (ordering items; escapes already resolved).
  std::string value;
  /// Equality items: literal runs between unescaped '*' wildcards.
  /// ["abc"] is an exact match; ["", "lbl.gov"] is "*lbl.gov"; an
  /// escaped \2a lands *inside* a segment and matches a literal '*'.
  std::vector<std::string> segments;
};

// --- matching ---------------------------------------------------------------

namespace {

bool ci_eq(char a, char b) {
  return std::tolower(static_cast<unsigned char>(a)) ==
         std::tolower(static_cast<unsigned char>(b));
}

bool ci_equals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ci_eq(a[i], b[i])) return false;
  }
  return true;
}

/// First case-insensitive occurrence of `pat` in `text` at or after
/// `from`; npos when absent.
std::size_t ci_find(std::string_view text, std::string_view pat,
                    std::size_t from) {
  if (pat.empty()) return from <= text.size() ? from : std::string_view::npos;
  if (pat.size() > text.size()) return std::string_view::npos;
  for (std::size_t i = from; i + pat.size() <= text.size(); ++i) {
    if (ci_equals(text.substr(i, pat.size()), pat)) return i;
  }
  return std::string_view::npos;
}

/// Case-insensitive wildcard match over decoded segments: segments are
/// the literal runs, wildcards sit between them (and at the ends when
/// the first/last segment is empty).  Escaped metacharacters were
/// decoded into the segments, so they match literally.
bool segments_match(const std::vector<std::string>& segments,
                    std::string_view text) {
  if (segments.size() == 1) return ci_equals(segments.front(), text);
  const std::string& first = segments.front();
  const std::string& last = segments.back();
  if (first.size() + last.size() > text.size()) return false;
  if (!ci_equals(text.substr(0, first.size()), first)) return false;
  const std::size_t tail_start = text.size() - last.size();
  if (!ci_equals(text.substr(tail_start), last)) return false;
  std::size_t pos = first.size();
  for (std::size_t i = 1; i + 1 < segments.size(); ++i) {
    const std::size_t hit = ci_find(text, segments[i], pos);
    if (hit == std::string_view::npos || hit + segments[i].size() > tail_start) {
      return false;
    }
    pos = hit + segments[i].size();
  }
  return true;
}

/// Numeric when both sides parse; lexicographic otherwise.
int compare_values(std::string_view a, std::string_view b) {
  const auto na = util::parse_double(a);
  const auto nb = util::parse_double(b);
  if (na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

bool node_matches(const Filter::Node& node, const Entry& entry);

bool item_matches(const Filter::Node& node, const Entry& entry) {
  const auto values = entry.get_all(node.attr);
  switch (node.kind) {
    case Filter::Node::Kind::kPresence:
      return !values.empty();
    case Filter::Node::Kind::kEquality:
      for (const auto v : values) {
        if (segments_match(node.segments, v)) return true;
      }
      return false;
    case Filter::Node::Kind::kGreaterEq:
      for (const auto v : values) {
        if (compare_values(v, node.value) >= 0) return true;
      }
      return false;
    case Filter::Node::Kind::kLessEq:
      for (const auto v : values) {
        if (compare_values(v, node.value) <= 0) return true;
      }
      return false;
    default:
      return false;
  }
}

bool node_matches(const Filter::Node& node, const Entry& entry) {
  switch (node.kind) {
    case Filter::Node::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!node_matches(*child, entry)) return false;
      }
      return true;
    case Filter::Node::Kind::kOr:
      for (const auto& child : node.children) {
        if (node_matches(*child, entry)) return true;
      }
      return false;
    case Filter::Node::Kind::kNot:
      return !node_matches(*node.children.front(), entry);
    default:
      return item_matches(node, entry);
  }
}

// --- parsing ---------------------------------------------------------------

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Decodes a raw (already-trimmed) item value: backslash-hex escapes
/// become literal characters, unescaped '*' split wildcard segments.
/// nullopt on a malformed escape (lone backslash, non-hex digits).
std::optional<std::vector<std::string>> decode_value(std::string_view raw) {
  std::vector<std::string> segments(1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '\\') {
      if (i + 2 >= raw.size()) return std::nullopt;
      const int hi = hex_digit(raw[i + 1]);
      const int lo = hex_digit(raw[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      segments.back().push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '*') {
      segments.emplace_back();
    } else {
      segments.back().push_back(c);
    }
  }
  return segments;
}

/// Joins decoded segments back into a literal string (ordering items,
/// where '*' carries no wildcard meaning).
std::string join_segments(const std::vector<std::string>& segments) {
  std::string out = segments.front();
  for (std::size_t i = 1; i < segments.size(); ++i) {
    out += '*';
    out += segments[i];
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::shared_ptr<const Filter::Node> parse() {
    skip_ws();
    auto node = parse_filter();
    skip_ws();
    if (node == nullptr || pos_ != text_.size()) return nullptr;
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::shared_ptr<const Filter::Node> parse_filter() {
    skip_ws();
    if (!consume('(')) return nullptr;
    std::shared_ptr<const Filter::Node> node;
    skip_ws();
    if (peek() == '&' || peek() == '|') {
      const bool is_and = peek() == '&';
      ++pos_;
      auto composite = std::make_shared<Filter::Node>();
      composite->kind = is_and ? Filter::Node::Kind::kAnd
                               : Filter::Node::Kind::kOr;
      skip_ws();
      while (peek() == '(') {
        auto child = parse_filter();
        if (child == nullptr) return nullptr;
        composite->children.push_back(std::move(child));
        skip_ws();
      }
      if (composite->children.empty()) return nullptr;
      node = composite;
    } else if (peek() == '!') {
      ++pos_;
      auto child = parse_filter();
      if (child == nullptr) return nullptr;
      auto negation = std::make_shared<Filter::Node>();
      negation->kind = Filter::Node::Kind::kNot;
      negation->children.push_back(std::move(child));
      node = negation;
    } else {
      node = parse_item();
      if (node == nullptr) return nullptr;
    }
    skip_ws();
    if (!consume(')')) return nullptr;
    return node;
  }

  std::shared_ptr<const Filter::Node> parse_item() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != ')' && text_[pos_] != '(') {
      ++pos_;
    }
    std::string attr(util::trim(text_.substr(start, pos_ - start)));
    if (attr.empty()) return nullptr;

    auto node = std::make_shared<Filter::Node>();
    node->attr = std::move(attr);
    if (consume('>')) {
      if (!consume('=')) return nullptr;
      node->kind = Filter::Node::Kind::kGreaterEq;
    } else if (consume('<')) {
      if (!consume('=')) return nullptr;
      node->kind = Filter::Node::Kind::kLessEq;
    } else if (consume('=')) {
      node->kind = Filter::Node::Kind::kEquality;
    } else {
      return nullptr;
    }

    const std::size_t vstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')' && text_[pos_] != '(') {
      ++pos_;
    }
    const std::string_view raw =
        util::trim(text_.substr(vstart, pos_ - vstart));
    if (node->kind == Filter::Node::Kind::kEquality && raw == "*") {
      node->kind = Filter::Node::Kind::kPresence;
      return node;
    }
    if (raw.empty()) return nullptr;
    auto segments = decode_value(raw);
    if (!segments) return nullptr;  // malformed escape
    if (node->kind == Filter::Node::Kind::kEquality) {
      node->segments = std::move(*segments);
    } else {
      // Ordering comparison: '*' has no wildcard meaning; the decoded
      // text is one literal.
      node->value = join_segments(*segments);
    }
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Re-encodes one literal segment for textual form: metacharacters and
/// NUL as backslash-hex, plus edge whitespace (which an unescaped
/// reparse would trim away).
std::string escape_literal(std::string_view literal) {
  std::string out;
  out.reserve(literal.size());
  for (std::size_t i = 0; i < literal.size(); ++i) {
    const char c = literal[i];
    const bool edge = i == 0 || i + 1 == literal.size();
    const bool is_ws = std::isspace(static_cast<unsigned char>(c)) != 0;
    if (c == '\\' || c == '(' || c == ')' || c == '*' || c == '\0' ||
        (edge && is_ws)) {
      static const char* kHex = "0123456789abcdef";
      out += '\\';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHex[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string segments_to_string(const std::vector<std::string>& segments) {
  std::string out = escape_literal(segments.front());
  for (std::size_t i = 1; i < segments.size(); ++i) {
    out += '*';
    out += escape_literal(segments[i]);
  }
  return out;
}

std::string node_to_string(const Filter::Node& node) {
  using Kind = Filter::Node::Kind;
  switch (node.kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      out += node.kind == Kind::kAnd ? '&' : '|';
      for (const auto& child : node.children) out += node_to_string(*child);
      out += ')';
      return out;
    }
    case Kind::kNot:
      return "(!" + node_to_string(*node.children.front()) + ")";
    case Kind::kPresence:
      return "(" + node.attr + "=*)";
    case Kind::kEquality:
      return "(" + node.attr + "=" + segments_to_string(node.segments) + ")";
    case Kind::kGreaterEq:
      return "(" + node.attr + ">=" + escape_literal(node.value) + ")";
    case Kind::kLessEq:
      return "(" + node.attr + "<=" + escape_literal(node.value) + ")";
  }
  return "";
}

}  // namespace

std::optional<Filter> Filter::parse(std::string_view text) {
  Parser parser(text);
  auto root = parser.parse();
  if (root == nullptr) return std::nullopt;
  return Filter(std::move(root));
}

Filter Filter::match_all() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPresence;
  node->attr = "objectclass";
  return Filter(std::move(node));
}

Filter Filter::equals(std::string attr, std::string_view value) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kEquality;
  node->attr = std::move(attr);
  // One segment, no wildcards: the whole value is a single literal run,
  // which is precisely what escape()-then-parse would have produced.
  node->segments.emplace_back(value);
  return Filter(std::move(node));
}

Filter Filter::all_of(std::vector<Filter> filters) {
  if (filters.empty()) return match_all();
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->children.reserve(filters.size());
  for (auto& filter : filters) node->children.push_back(std::move(filter.root_));
  return Filter(std::move(node));
}

std::string Filter::escape(std::string_view value) {
  return escape_literal(value);
}

bool Filter::matches(const Entry& entry) const {
  return node_matches(*root_, entry);
}

std::string Filter::to_string() const { return node_to_string(*root_); }

}  // namespace wadp::mds
