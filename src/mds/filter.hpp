// LDAP search-filter subset (RFC 2254 style) used by the inquiry
// protocol: and/or/not composites, equality with '*' wildcards,
// presence, and ordering comparisons.
//
//   (objectclass=GridFTPPerfInfo)
//   (&(hostname=*.lbl.gov)(avgrdbandwidth>=5000))
//   (|(cn=140.221.65.69)(!(op=write)))
//
// Ordering comparisons are numeric when both operands parse as numbers,
// lexicographic otherwise; equality is case-insensitive.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "mds/ldap.hpp"

namespace wadp::mds {

class Filter {
 public:
  /// AST node; public so the implementation's free parsing/matching
  /// helpers can traverse it, but only Filter constructs them.
  struct Node;

  /// Parses the textual form.  nullopt on syntax errors (unbalanced
  /// parentheses, empty composites, missing operators).
  static std::optional<Filter> parse(std::string_view text);

  /// A filter matching every entry: "(objectclass=*)" equivalent.
  static Filter match_all();

  bool matches(const Entry& entry) const;

  std::string to_string() const;

 private:
  explicit Filter(std::shared_ptr<const Node> root) : root_(std::move(root)) {}
  std::shared_ptr<const Node> root_;
};

}  // namespace wadp::mds
