// LDAP search-filter subset (RFC 2254 style) used by the inquiry
// protocol: and/or/not composites, equality with '*' wildcards,
// presence, and ordering comparisons.
//
//   (objectclass=GridFTPPerfInfo)
//   (&(hostname=*.lbl.gov)(avgrdbandwidth>=5000))
//   (|(cn=140.221.65.69)(!(op=write)))
//
// Ordering comparisons are numeric when both operands parse as numbers,
// lexicographic otherwise; equality is case-insensitive.
//
// Values may carry RFC 4515 backslash-hex escapes (\28 \29 \2a \5c
// \00 ...): an escaped character is matched literally, so a value
// containing the filter metacharacters ( ) * \ can be queried by
// escaping it with Filter::escape().  Malformed escapes are parse
// errors.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mds/ldap.hpp"

namespace wadp::mds {

class Filter {
 public:
  /// AST node; public so the implementation's free parsing/matching
  /// helpers can traverse it, but only Filter constructs them.
  struct Node;

  /// Parses the textual form.  nullopt on syntax errors (unbalanced
  /// parentheses, empty composites, missing operators).
  static std::optional<Filter> parse(std::string_view text);

  /// A filter matching every entry: "(objectclass=*)" equivalent.
  static Filter match_all();

  /// Builds the equality item `(attr=value)` directly as AST — the
  /// allocation-lean alternative to formatting, escaping, and
  /// re-parsing filter text on a hot path.  `value` is matched
  /// literally: metacharacters carry no wildcard meaning, exactly as if
  /// the value had been escape()d into text first (broker inquiry
  /// filters interpolate client addresses and hostnames).  Cannot fail:
  /// there is no parse step to reject anything.
  static Filter equals(std::string attr, std::string_view value);

  /// Builds the conjunction `(&(f1)(f2)...)`; match_all() when empty.
  static Filter all_of(std::vector<Filter> filters);

  /// Escapes a literal value for interpolation into filter text (RFC
  /// 4515 style): the metacharacters ( ) * \ and NUL become \xx
  /// backslash-hex pairs, as do leading/trailing whitespace characters
  /// (the parser trims unescaped value edges).  Every string built
  /// from external input — hostnames, client addresses — must pass
  /// through here before being formatted into a filter.
  static std::string escape(std::string_view value);

  bool matches(const Entry& entry) const;

  std::string to_string() const;

 private:
  explicit Filter(std::shared_ptr<const Node> root) : root_(std::move(root)) {}
  std::shared_ptr<const Node> root_;
};

}  // namespace wadp::mds
