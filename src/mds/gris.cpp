#include "mds/gris.hpp"

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::mds {
namespace {

/// Process-wide GRIS instruments, resolved once.  Labeled by service
/// kind only — GRIS names are unbounded (one per site per scenario), so
/// they stay out of the label set per docs/OBSERVABILITY.md.
struct GrisMetrics {
  obs::Counter& searches = obs::Registry::global().counter(
      "wadp_mds_searches_total", {{"service", "gris"}},
      "LDAP-style searches served by MDS services");
  obs::Counter& refreshes = obs::Registry::global().counter(
      "wadp_mds_provider_refresh_total", {},
      "Information-provider cache refreshes performed by GRIS servers");

  static GrisMetrics& get() {
    static GrisMetrics metrics;
    return metrics;
  }
};

}  // namespace

Gris::Gris(std::string name, Dn suffix)
    : name_(std::move(name)), suffix_(std::move(suffix)) {}

void Gris::register_provider(InformationProvider* provider,
                             Duration cache_ttl) {
  WADP_CHECK(provider != nullptr);
  WADP_CHECK(cache_ttl >= 0.0);
  providers_.push_back(Registered{
      .provider = provider,
      .ttl = cache_ttl,
      .last_refresh = -kNeverTime,  // never: refresh on first search
      .cached_dns = {},
  });
}

void Gris::refresh_stale(SimTime now) {
  for (auto& reg : providers_) {
    if (now - reg.last_refresh < reg.ttl) continue;
    // Replace this provider's previous entries wholesale: providers own
    // disjoint DN sets by convention, and stale DNs must not linger.
    for (const auto& dn : reg.cached_dns) directory_.remove(dn);
    reg.cached_dns.clear();
    for (auto& entry : reg.provider->provide(now)) {
      reg.cached_dns.push_back(entry.dn());
      directory_.upsert(std::move(entry));
    }
    reg.last_refresh = now;
    ++refresh_count_;
    GrisMetrics::get().refreshes.inc();
  }
}

std::vector<Entry> Gris::search(SimTime now, const Dn& base,
                                Directory::Scope scope, const Filter& filter) {
  GrisMetrics::get().searches.inc();
  obs::SimSpanScope span("mds.search", now, {{"SERVICE", "gris"}});
  refresh_stale(now);
  auto results = directory_.search(base, scope, filter);
  span.set_attr("RESULTS", static_cast<std::int64_t>(results.size()));
  return results;
}

std::vector<Entry> Gris::search(SimTime now, const Filter& filter) {
  return search(now, suffix_, Directory::Scope::kSubtree, filter);
}

bool Gris::covers(const Dn& base) const {
  return base.under(suffix_) || suffix_.under(base);
}

std::vector<Entry> Gris::inquire(SimTime now, const Dn& base,
                                 Directory::Scope scope,
                                 const Filter& filter) {
  return search(now, base, scope, filter);
}

std::vector<Entry> Gris::inquire_all(SimTime now, const Filter& filter) {
  return search(now, filter);
}

}  // namespace wadp::mds
