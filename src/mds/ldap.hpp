// LDAP-flavoured data model for the MDS-2 style information service.
//
// MDS-2 (Section 5) publishes information as LDAP entries: each entry
// has a distinguished name (DN) — an ordered list of attr=value RDNs,
// most specific first — and a set of attributes categorized by object
// classes defined in a schema.  We implement the data model in-memory;
// attribute names are case-insensitive, values are strings (numeric
// comparisons are attempted when both sides parse as numbers, matching
// LDAP integer syntax behaviour).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace wadp::mds {

/// One relative distinguished name component, e.g. {"hostname",
/// "dpsslx04.lbl.gov"}.
struct Rdn {
  std::string attr;
  std::string value;
  bool operator==(const Rdn& other) const;
};

/// Distinguished name: RDNs ordered most-specific-first, as in
/// "cn=x, hostname=h, dc=lbl, dc=gov, o=grid".
class Dn {
 public:
  Dn() = default;
  explicit Dn(std::vector<Rdn> rdns) : rdns_(std::move(rdns)) {}

  /// Parses "attr=value,attr=value,..." (whitespace around commas is
  /// ignored).  nullopt on empty components or missing '='.
  static std::optional<Dn> parse(std::string_view text);

  const std::vector<Rdn>& rdns() const { return rdns_; }
  bool empty() const { return rdns_.empty(); }
  std::size_t depth() const { return rdns_.size(); }

  /// DN with the most-specific RDN removed; empty DN at the root.
  Dn parent() const;

  /// New DN with `rdn` prepended as the most-specific component.
  Dn child(Rdn rdn) const;

  /// True when `this` equals or lies under `ancestor` (suffix match,
  /// case-insensitive attrs, case-sensitive values like OpenLDAP default
  /// for directoryString would be case-insensitive — we match values
  /// case-insensitively, LDAP's common configuration).
  bool under(const Dn& ancestor) const;

  bool operator==(const Dn& other) const;

  std::string to_string() const;

 private:
  std::vector<Rdn> rdns_;
};

/// Attribute: name plus one or more values (LDAP attributes are
/// multi-valued).
struct Attribute {
  std::string name;
  std::vector<std::string> values;
};

/// Directory entry.
class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  void set_dn(Dn dn) { dn_ = std::move(dn); }

  /// Appends a value (creates the attribute if needed).
  void add(std::string_view name, std::string value);
  /// Replaces all values of the attribute.
  void set(std::string_view name, std::string value);

  bool has(std::string_view name) const;
  /// First value, or nullopt.  Lookup is case-insensitive.
  std::optional<std::string_view> get(std::string_view name) const;
  std::vector<std::string_view> get_all(std::string_view name) const;
  std::optional<double> get_double(std::string_view name) const;

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Convention: the "objectclass" attribute values.
  std::vector<std::string_view> object_classes() const {
    return get_all("objectclass");
  }

  /// LDIF-ish rendering ("dn: ...\nattr: value\n..."), used by the
  /// Fig. 6 bench and for debugging.
  std::string to_ldif() const;

  /// Parses one LDIF block (the inverse of to_ldif): first non-blank
  /// line must be "dn: <dn>", each following line "attr: value".
  /// nullopt on a missing/invalid dn or a malformed attribute line.
  static std::optional<Entry> from_ldif(std::string_view block);

 private:
  Attribute* find(std::string_view name);
  const Attribute* find(std::string_view name) const;

  Dn dn_;
  std::vector<Attribute> attributes_;
};

/// Parses a multi-entry LDIF body; entries are separated by blank
/// lines.  Malformed blocks are skipped and counted.
struct LdifParseResult {
  std::vector<Entry> entries;
  std::size_t skipped_blocks = 0;
};
LdifParseResult parse_ldif(std::string_view text);

/// Schema: object classes with required/optional attributes; entries
/// can be validated against it (the paper built schemas for the
/// GridFTP provider data [16]).
struct ObjectClassDef {
  std::string name;
  std::vector<std::string> required;
  std::vector<std::string> optional;
};

class Schema {
 public:
  void define(ObjectClassDef object_class);
  const ObjectClassDef* find(std::string_view name) const;

  /// Empty string when valid; otherwise a diagnostic: unknown object
  /// class, or a missing required attribute.
  std::string validate(const Entry& entry) const;

  std::size_t size() const { return classes_.size(); }

 private:
  std::vector<ObjectClassDef> classes_;
};

}  // namespace wadp::mds
