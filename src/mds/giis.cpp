#include "mds/giis.hpp"

#include <algorithm>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::mds {
namespace {

/// Process-wide GIIS instruments; soft-state registration churn is the
/// interesting signal (Fig. 5's registration protocol).
struct GiisMetrics {
  obs::Counter& searches = obs::Registry::global().counter(
      "wadp_mds_searches_total", {{"service", "giis"}},
      "LDAP-style searches served by MDS services");
  obs::Counter& registered = obs::Registry::global().counter(
      "wadp_mds_registrations_total", {{"kind", "new"}},
      "Soft-state registrations accepted by GIIS servers");
  obs::Counter& renewed = obs::Registry::global().counter(
      "wadp_mds_registrations_total", {{"kind", "renew"}},
      "Soft-state registrations accepted by GIIS servers");
  obs::Counter& deregistered = obs::Registry::global().counter(
      "wadp_mds_deregistrations_total", {},
      "Explicit deregistrations honored by GIIS servers");
  obs::Counter& pruned = obs::Registry::global().counter(
      "wadp_mds_registrations_pruned_total", {},
      "Registrations that lapsed (TTL expired without renewal)");

  static GiisMetrics& get() {
    static GiisMetrics metrics;
    return metrics;
  }
};

/// RAII re-entrancy flag for the cycle guard.
class InquiryScope {
 public:
  explicit InquiryScope(bool& flag) : flag_(flag) { flag_ = true; }
  ~InquiryScope() { flag_ = false; }

 private:
  bool& flag_;
};

}  // namespace

Giis::Giis(std::string name, Duration default_registration_ttl)
    : name_(std::move(name)), default_ttl_(default_registration_ttl) {
  WADP_CHECK(default_ttl_ > 0.0);
}

void Giis::register_service(Registrant& service, SimTime now, Duration ttl) {
  WADP_CHECK_MSG(&service != this, "a GIIS cannot register with itself");
  if (ttl <= 0.0) ttl = default_ttl_;
  for (auto& reg : registrations_) {
    if (reg.service == &service) {
      reg.expires = now + ttl;  // renewal refreshes the soft state
      GiisMetrics::get().renewed.inc();
      return;
    }
  }
  registrations_.push_back(
      Registration{.service = &service, .expires = now + ttl});
  GiisMetrics::get().registered.inc();
}

bool Giis::deregister(const Registrant& service) {
  const auto it = std::find_if(
      registrations_.begin(), registrations_.end(),
      [&service](const Registration& reg) { return reg.service == &service; });
  if (it == registrations_.end()) return false;
  registrations_.erase(it);
  GiisMetrics::get().deregistered.inc();
  return true;
}

void Giis::prune(SimTime now) {
  const std::size_t lapsed = std::erase_if(
      registrations_,
      [now](const Registration& reg) { return reg.expires <= now; });
  if (lapsed > 0) GiisMetrics::get().pruned.inc(lapsed);
}

std::size_t Giis::live_registrations(SimTime now) const {
  return static_cast<std::size_t>(std::count_if(
      registrations_.begin(), registrations_.end(),
      [now](const Registration& reg) { return reg.expires > now; }));
}

std::vector<Entry> Giis::search(SimTime now, const Filter& filter) {
  if (inquiring_) return {};  // registration cycle: stop here
  const InquiryScope scope(inquiring_);
  GiisMetrics::get().searches.inc();
  // When the caller carries a trace, nested GRIS searches parent here.
  obs::SimSpanScope span("mds.search", now, {{"SERVICE", "giis"}});
  prune(now);
  std::vector<Entry> merged;
  for (auto& reg : registrations_) {
    auto results = reg.service->inquire_all(now, filter);
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  span.set_attr("RESULTS", static_cast<std::int64_t>(merged.size()));
  return merged;
}

std::vector<Entry> Giis::search(SimTime now, const Dn& base,
                                Directory::Scope scope, const Filter& filter) {
  if (inquiring_) return {};
  const InquiryScope guard(inquiring_);
  GiisMetrics::get().searches.inc();
  obs::SimSpanScope span("mds.search", now, {{"SERVICE", "giis"}});
  prune(now);
  std::vector<Entry> merged;
  for (auto& reg : registrations_) {
    if (!reg.service->covers(base)) continue;
    auto results = reg.service->inquire(now, base, scope, filter);
    merged.insert(merged.end(), std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
  }
  span.set_attr("RESULTS", static_cast<std::int64_t>(merged.size()));
  return merged;
}

bool Giis::covers(const Dn& base) const {
  if (inquiring_) return false;  // registration cycle: claim nothing
  const InquiryScope guard(inquiring_);
  return std::any_of(registrations_.begin(), registrations_.end(),
                     [&base](const Registration& reg) {
                       return reg.service->covers(base);
                     });
}

std::vector<Entry> Giis::inquire(SimTime now, const Dn& base,
                                 Directory::Scope scope,
                                 const Filter& filter) {
  return search(now, base, scope, filter);
}

std::vector<Entry> Giis::inquire_all(SimTime now, const Filter& filter) {
  return search(now, filter);
}

}  // namespace wadp::mds
