// Grid Index Information Service (GIIS).
//
// Section 5 / Fig. 5: GRIS servers announce themselves to a GIIS via a
// *soft-state* registration protocol — a registration carries a TTL and
// lapses unless renewed — and the GIIS answers inquiries by merging
// what it obtains from its currently live registrants.  A GIIS is
// itself a Registrant, so index servers stack into the hierarchy the
// figure sketches: site GRIS -> regional GIIS -> top-level GIIS.
#pragma once

#include <string>
#include <vector>

#include "mds/gris.hpp"
#include "mds/registrant.hpp"
#include "util/types.hpp"

namespace wadp::mds {

class Giis final : public Registrant {
 public:
  explicit Giis(std::string name, Duration default_registration_ttl = 600.0);

  /// Registers (or renews) any registrant — a GRIS or a child GIIS.
  /// `ttl` of 0 uses the default.  The service must outlive its
  /// registration.
  void register_service(Registrant& service, SimTime now, Duration ttl = 0.0);

  /// Convenience aliases matching the protocol's usual phrasing.
  void register_gris(Gris& gris, SimTime now, Duration ttl = 0.0) {
    register_service(gris, now, ttl);
  }
  void register_giis(Giis& child, SimTime now, Duration ttl = 0.0) {
    register_service(child, now, ttl);
  }

  /// Explicit deregistration (the protocol also allows this).
  bool deregister(const Registrant& service);
  bool deregister_gris(const Gris& gris) { return deregister(gris); }

  /// Registrations that have not lapsed by `now`.
  std::size_t live_registrations(SimTime now) const;

  /// Inquiry: merged search across live registrants; lapsed
  /// registrations are pruned.
  std::vector<Entry> search(SimTime now, const Filter& filter);

  /// Inquiry restricted to one subtree; only registrants covering the
  /// base are consulted.
  std::vector<Entry> search(SimTime now, const Dn& base,
                            Directory::Scope scope, const Filter& filter);

  // Registrant: a GIIS can register into a parent GIIS.  A re-entrancy
  // guard makes accidental registration cycles terminate (returning no
  // extra results) instead of recursing forever.
  const std::string& registrant_name() const override { return name_; }
  bool covers(const Dn& base) const override;
  std::vector<Entry> inquire(SimTime now, const Dn& base,
                             Directory::Scope scope,
                             const Filter& filter) override;
  std::vector<Entry> inquire_all(SimTime now, const Filter& filter) override;

  const std::string& name() const { return name_; }

 private:
  void prune(SimTime now);

  struct Registration {
    Registrant* service;
    SimTime expires;
  };

  std::string name_;
  Duration default_ttl_;
  std::vector<Registration> registrations_;
  mutable bool inquiring_ = false;  // cycle guard (also used by covers)
};

}  // namespace wadp::mds
