// The soft-state registration protocol's participant interface.
//
// Fig. 5's architecture is hierarchical: a GRIS registers with a GIIS,
// and a GIIS can itself register with a higher-level GIIS ("index
// servers ... with registered resources"), forming the tiered index of
// a Data Grid.  Anything registrable must answer inquiries and say
// which directory subtrees it can speak for — that is this interface,
// implemented by both Gris and Giis.
#pragma once

#include <string>
#include <vector>

#include "mds/directory.hpp"
#include "util/types.hpp"

namespace wadp::mds {

class Registrant {
 public:
  virtual ~Registrant() = default;

  /// Stable name for diagnostics.
  virtual const std::string& registrant_name() const = 0;

  /// True when an inquiry with this base could find entries here (used
  /// by scoped searches to skip irrelevant registrants).
  virtual bool covers(const Dn& base) const = 0;

  /// Scoped, filtered inquiry.
  virtual std::vector<Entry> inquire(SimTime now, const Dn& base,
                                     Directory::Scope scope,
                                     const Filter& filter) = 0;

  /// Whole-view inquiry (everything this service can serve).
  virtual std::vector<Entry> inquire_all(SimTime now, const Filter& filter) = 0;
};

}  // namespace wadp::mds
