// GridFTP performance information provider (Section 5.1, Fig. 6).
//
// The provider is the bridge between the instrumented server's log and
// the information service: when the GRIS asks, it filters the log,
// groups transfers by remote endpoint, computes summary statistics
// (min/max/avg bandwidth, per size class) and current predictions, and
// publishes the result as entries of the GridFTPPerfInfo object class —
// the role the paper's "LDAP shell-backend scripts" played.
#pragma once

#include <string>
#include <vector>

#include "gridftp/server.hpp"
#include "history/store.hpp"
#include "mds/gris.hpp"
#include "mds/ldap.hpp"
#include "predict/classifier.hpp"
#include "predict/predictors.hpp"

namespace wadp::mds {

struct GridFtpProviderConfig {
  /// Directory suffix under which entries are published, e.g.
  /// "hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid".
  Dn base;
  predict::SizeClassifier classifier = predict::SizeClassifier::paper_classes();
  /// Prediction published per class: mean over this many most recent
  /// same-class transfers (AVG15-with-classification, one of the
  /// paper's stronger simple predictors).
  std::size_t prediction_window = 15;
  /// Shared history plane to publish from (the testbed's store when
  /// wired by core::InformationFabric).  Snapshot-isolated reads: the
  /// provider never blocks — and is never torn by — concurrent ingest.
  /// When null, the provider rebuilds an ephemeral view from the
  /// server's raw log on each provide() (the standalone `wadp
  /// provider` path).  Must outlive the provider when set.
  const history::HistoryStore* history = nullptr;
};

class GridFtpInfoProvider final : public InformationProvider {
 public:
  GridFtpInfoProvider(const gridftp::GridFtpServer& server,
                      GridFtpProviderConfig config);

  std::string provider_name() const override;

  /// One entry per distinct remote endpoint seen in the log, plus one
  /// summary entry for the server itself.
  std::vector<Entry> provide(SimTime now) override;

  /// Schema the published entries conform to (the paper's [16]).
  static Schema schema();

  /// Attribute-name fragment for a size class with the paper's
  /// Fig. 6 vocabulary: "tenmbrange", "hundredmbrange",
  /// "fivehundredmbrange", "onegbrange" (generic "classNrange"
  /// otherwise).
  static std::string range_fragment(const predict::SizeClassifier& classifier,
                                    int cls);

 private:
  const gridftp::GridFtpServer& server_;
  GridFtpProviderConfig config_;
};

}  // namespace wadp::mds
