// In-memory LDAP-style directory: DN-keyed entries with scoped,
// filtered search — the storage inside a GRIS or GIIS.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mds/filter.hpp"
#include "mds/ldap.hpp"

namespace wadp::mds {

class Directory {
 public:
  enum class Scope {
    kBase,      ///< the base entry only
    kOneLevel,  ///< direct children of the base
    kSubtree,   ///< base and all descendants
  };

  /// Inserts or replaces the entry at its DN.
  void upsert(Entry entry);

  /// Removes one entry; false when absent.
  bool remove(const Dn& dn);

  /// Removes every entry at or under `root`; returns how many.
  std::size_t remove_subtree(const Dn& root);

  /// nullptr when absent.  The pointer is invalidated by any mutation.
  const Entry* lookup(const Dn& dn) const;

  /// Entries in `scope` of `base` matching `filter`, in DN order.
  /// Results are copies: a GRIS may refresh the underlying entries at
  /// any time, so handing out references would be a lifetime trap.
  std::vector<Entry> search(const Dn& base, Scope scope,
                            const Filter& filter) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  static std::string key_of(const Dn& dn);

  std::map<std::string, Entry> entries_;  // key: normalized DN
};

}  // namespace wadp::mds
