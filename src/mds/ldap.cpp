#include "mds/ldap.hpp"

#include "util/strings.hpp"

namespace wadp::mds {

bool Rdn::operator==(const Rdn& other) const {
  return util::iequals(attr, other.attr) && util::iequals(value, other.value);
}

std::optional<Dn> Dn::parse(std::string_view text) {
  std::vector<Rdn> rdns;
  for (const auto& part : util::split(text, ',')) {
    const auto component = util::trim(part);
    if (component.empty()) return std::nullopt;
    const auto eq = component.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    Rdn rdn;
    rdn.attr = std::string(util::trim(component.substr(0, eq)));
    rdn.value = std::string(util::trim(component.substr(eq + 1)));
    if (rdn.value.empty()) return std::nullopt;
    rdns.push_back(std::move(rdn));
  }
  if (rdns.empty()) return std::nullopt;
  return Dn(std::move(rdns));
}

Dn Dn::parent() const {
  if (rdns_.empty()) return {};
  return Dn(std::vector<Rdn>(rdns_.begin() + 1, rdns_.end()));
}

Dn Dn::child(Rdn rdn) const {
  std::vector<Rdn> rdns;
  rdns.reserve(rdns_.size() + 1);
  rdns.push_back(std::move(rdn));
  rdns.insert(rdns.end(), rdns_.begin(), rdns_.end());
  return Dn(std::move(rdns));
}

bool Dn::under(const Dn& ancestor) const {
  if (ancestor.rdns_.size() > rdns_.size()) return false;
  const std::size_t offset = rdns_.size() - ancestor.rdns_.size();
  for (std::size_t i = 0; i < ancestor.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == ancestor.rdns_[i])) return false;
  }
  return true;
}

bool Dn::operator==(const Dn& other) const {
  return rdns_.size() == other.rdns_.size() && under(other);
}

std::string Dn::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i) out += ", ";
    out += rdns_[i].attr;
    out += '=';
    out += rdns_[i].value;
  }
  return out;
}

Attribute* Entry::find(std::string_view name) {
  for (auto& a : attributes_) {
    if (util::iequals(a.name, name)) return &a;
  }
  return nullptr;
}

const Attribute* Entry::find(std::string_view name) const {
  for (const auto& a : attributes_) {
    if (util::iequals(a.name, name)) return &a;
  }
  return nullptr;
}

void Entry::add(std::string_view name, std::string value) {
  if (auto* a = find(name)) {
    a->values.push_back(std::move(value));
    return;
  }
  attributes_.push_back(Attribute{std::string(name), {std::move(value)}});
}

void Entry::set(std::string_view name, std::string value) {
  if (auto* a = find(name)) {
    a->values.clear();
    a->values.push_back(std::move(value));
    return;
  }
  attributes_.push_back(Attribute{std::string(name), {std::move(value)}});
}

bool Entry::has(std::string_view name) const { return find(name) != nullptr; }

std::optional<std::string_view> Entry::get(std::string_view name) const {
  const auto* a = find(name);
  if (a == nullptr || a->values.empty()) return std::nullopt;
  return a->values.front();
}

std::vector<std::string_view> Entry::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  if (const auto* a = find(name)) {
    out.assign(a->values.begin(), a->values.end());
  }
  return out;
}

std::optional<double> Entry::get_double(std::string_view name) const {
  const auto v = get(name);
  if (!v) return std::nullopt;
  return util::parse_double(*v);
}

std::string Entry::to_ldif() const {
  std::string out = "dn: " + dn_.to_string() + '\n';
  for (const auto& a : attributes_) {
    for (const auto& v : a.values) {
      out += a.name;
      out += ": ";
      out += v;
      out += '\n';
    }
  }
  return out;
}

std::optional<Entry> Entry::from_ldif(std::string_view block) {
  Entry entry;
  bool saw_dn = false;
  for (const auto& raw_line : util::split(block, '\n')) {
    const auto line = util::trim(raw_line);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    const auto name = util::trim(line.substr(0, colon));
    const auto value = util::trim(line.substr(colon + 1));
    if (!saw_dn) {
      if (!util::iequals(name, "dn")) return std::nullopt;
      const auto dn = Dn::parse(value);
      if (!dn) return std::nullopt;
      entry.set_dn(*dn);
      saw_dn = true;
      continue;
    }
    if (util::iequals(name, "dn")) return std::nullopt;  // duplicate dn
    entry.add(name, std::string(value));
  }
  if (!saw_dn) return std::nullopt;
  return entry;
}

LdifParseResult parse_ldif(std::string_view text) {
  LdifParseResult result;
  std::string block;
  const auto flush = [&] {
    if (util::trim(block).empty()) {
      block.clear();
      return;
    }
    if (auto entry = Entry::from_ldif(block)) {
      result.entries.push_back(std::move(*entry));
    } else {
      ++result.skipped_blocks;
    }
    block.clear();
  };
  for (const auto& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) {
      flush();
    } else {
      block += line;
      block += '\n';
    }
  }
  flush();
  return result;
}

void Schema::define(ObjectClassDef object_class) {
  WADP_CHECK_MSG(find(object_class.name) == nullptr,
                 "duplicate object class in schema");
  classes_.push_back(std::move(object_class));
}

const ObjectClassDef* Schema::find(std::string_view name) const {
  for (const auto& c : classes_) {
    if (util::iequals(c.name, name)) return &c;
  }
  return nullptr;
}

std::string Schema::validate(const Entry& entry) const {
  const auto object_classes = entry.object_classes();
  if (object_classes.empty()) return "entry has no objectclass attribute";
  for (const auto oc_name : object_classes) {
    const auto* oc = find(oc_name);
    if (oc == nullptr) {
      return "unknown object class: " + std::string(oc_name);
    }
    for (const auto& required : oc->required) {
      if (!entry.has(required)) {
        return "missing required attribute '" + required + "' for class " +
               oc->name;
      }
    }
  }
  return "";
}

}  // namespace wadp::mds
