// Grid Resource Information Service (GRIS).
//
// Section 5 / Fig. 5: a GRIS is the configurable information-provider
// component running at each resource (each replica site runs one next
// to its GridFTP server).  Providers plug in through a well-defined
// API; the GRIS caches each provider's entries for a TTL and serves
// LDAP-style searches against the merged view.
#pragma once

#include <string>
#include <vector>

#include "mds/directory.hpp"
#include "mds/registrant.hpp"
#include "util/types.hpp"

namespace wadp::mds {

/// The well-defined API a sensor implements to feed a GRIS.
class InformationProvider {
 public:
  virtual ~InformationProvider() = default;

  /// Stable name for diagnostics and cache bookkeeping.
  virtual std::string provider_name() const = 0;

  /// Produces the provider's current entries.  Called by the GRIS when
  /// its cached copy is older than the provider's TTL.
  virtual std::vector<Entry> provide(SimTime now) = 0;
};

class Gris final : public Registrant {
 public:
  /// `suffix` is the directory suffix this GRIS serves, e.g.
  /// "dc=lbl, dc=gov, o=grid".
  Gris(std::string name, Dn suffix);

  /// Plugs in a provider; entries it produces are cached for
  /// `cache_ttl` seconds.  The provider must outlive the GRIS.
  void register_provider(InformationProvider* provider, Duration cache_ttl);

  /// Searches the merged provider view, refreshing any stale caches
  /// first (this lazy refresh is how MDS GRIS back-ends behave).
  std::vector<Entry> search(SimTime now, const Dn& base, Directory::Scope scope,
                            const Filter& filter);

  /// Searches with this GRIS's own suffix as base, subtree scope.
  std::vector<Entry> search(SimTime now, const Filter& filter);

  // Registrant: lets a GIIS hold GRIS and child-GIIS registrations
  // uniformly (Fig. 5's hierarchy).
  const std::string& registrant_name() const override { return name_; }
  bool covers(const Dn& base) const override;
  std::vector<Entry> inquire(SimTime now, const Dn& base,
                             Directory::Scope scope,
                             const Filter& filter) override;
  std::vector<Entry> inquire_all(SimTime now, const Filter& filter) override;

  const std::string& name() const { return name_; }
  const Dn& suffix() const { return suffix_; }
  std::size_t provider_count() const { return providers_.size(); }
  std::uint64_t refresh_count() const { return refresh_count_; }
  std::size_t entry_count() const { return directory_.size(); }

 private:
  void refresh_stale(SimTime now);

  struct Registered {
    InformationProvider* provider;
    Duration ttl;
    SimTime last_refresh;
    std::vector<Dn> cached_dns;  // for replacing on refresh
  };

  std::string name_;
  Dn suffix_;
  std::vector<Registered> providers_;
  Directory directory_;
  std::uint64_t refresh_count_ = 0;
};

}  // namespace wadp::mds
