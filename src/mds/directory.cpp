#include "mds/directory.hpp"

#include "util/strings.hpp"

namespace wadp::mds {

std::string Directory::key_of(const Dn& dn) {
  // Case-insensitive DN equality -> lower-cased canonical text as key.
  return util::to_lower(dn.to_string());
}

void Directory::upsert(Entry entry) {
  entries_[key_of(entry.dn())] = std::move(entry);
}

bool Directory::remove(const Dn& dn) { return entries_.erase(key_of(dn)) > 0; }

std::size_t Directory::remove_subtree(const Dn& root) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.dn().under(root)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const Entry* Directory::lookup(const Dn& dn) const {
  const auto it = entries_.find(key_of(dn));
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<Entry> Directory::search(const Dn& base, Scope scope,
                                     const Filter& filter) const {
  std::vector<Entry> out;
  for (const auto& [key, entry] : entries_) {
    const Dn& dn = entry.dn();
    bool in_scope = false;
    switch (scope) {
      case Scope::kBase:
        in_scope = dn == base;
        break;
      case Scope::kOneLevel:
        in_scope = dn.depth() == base.depth() + 1 && dn.under(base);
        break;
      case Scope::kSubtree:
        in_scope = dn.under(base);
        break;
    }
    if (in_scope && filter.matches(entry)) out.push_back(entry);
  }
  return out;
}

}  // namespace wadp::mds
