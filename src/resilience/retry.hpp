// Retry policy: bounded exponential backoff with jitter and a budget.
//
// The paper's client is single-shot — a refused connection or a broken
// data channel surfaces as one failed transfer and nothing more.  Real
// wide-area deployments (and the GridFTP/replica-management line of
// work the paper builds on) retry: each failed attempt waits an
// exponentially growing, jittered delay before trying again, bounded
// by an attempt cap and an optional cumulative-backoff budget so a
// dead server cannot pin a client forever.  The policy is pure data +
// one deterministic draw per retry, so a fixed simulation seed yields
// a fixed retry schedule.
#pragma once

#include "util/rng.hpp"
#include "util/types.hpp"

namespace wadp::resilience {

struct RetryPolicy {
  /// Total attempts allowed (first try included).  1 = single-shot,
  /// the pre-resilience behaviour and the default.
  int max_attempts = 1;
  /// Backoff before the first retry (seconds).
  Duration base_backoff = 1.0;
  /// Growth factor per additional retry.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff (seconds).
  Duration max_backoff = 60.0;
  /// Jitter fraction: each backoff is scaled by a uniform draw from
  /// [1 - jitter, 1 + jitter], decorrelating clients that fail
  /// together.  0 disables jitter.
  double jitter = 0.2;
  /// Per-attempt timeout (seconds): an attempt still unresolved this
  /// long after it was launched is abandoned (its data channel is torn
  /// down) and counts as a failure.  0 = no timeout.  Stalled channels
  /// can only be recovered by a timeout — nothing else fires.
  Duration attempt_timeout = 0.0;
  /// Cumulative backoff budget (seconds): once the sum of backoffs
  /// spent on one operation would exceed this, the operation fails
  /// instead of retrying.  0 = unbounded.
  Duration retry_budget = 0.0;

  bool enabled() const { return max_attempts > 1; }

  /// Backoff to wait after `failed_attempts` attempts have failed
  /// (>= 1), jittered with `rng`.  Deterministic for a fixed Rng state.
  Duration backoff_for(int failed_attempts, util::Rng& rng) const;

  /// True when a further retry is allowed after `failed_attempts`
  /// failures with `backoff_spent` seconds of backoff already taken and
  /// `next_backoff` about to be added.
  bool allows_retry(int failed_attempts, Duration backoff_spent,
                    Duration next_backoff) const;
};

/// A policy tuned for the simulated wide-area testbed: four attempts,
/// quick first retry, per-attempt timeout large enough for a 1 GB
/// transfer on a loaded link.  Benches and the CLI use this as the
/// "resilience on" configuration.
RetryPolicy default_wan_policy();

}  // namespace wadp::resilience
