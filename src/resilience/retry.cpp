#include "resilience/retry.hpp"

#include <algorithm>
#include <cmath>

namespace wadp::resilience {

Duration RetryPolicy::backoff_for(int failed_attempts, util::Rng& rng) const {
  const int exponent = std::max(failed_attempts - 1, 0);
  Duration backoff =
      base_backoff * std::pow(backoff_multiplier, static_cast<double>(exponent));
  backoff = std::min(backoff, max_backoff);
  if (jitter > 0.0) {
    backoff *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(backoff, 0.0);
}

bool RetryPolicy::allows_retry(int failed_attempts, Duration backoff_spent,
                               Duration next_backoff) const {
  if (failed_attempts >= max_attempts) return false;
  if (retry_budget > 0.0 && backoff_spent + next_backoff > retry_budget) {
    return false;
  }
  return true;
}

RetryPolicy default_wan_policy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 30.0;
  policy.jitter = 0.2;
  policy.attempt_timeout = 1800.0;
  policy.retry_budget = 120.0;
  return policy;
}

}  // namespace wadp::resilience
