// Deterministic fault injector for the simulated transfer fabric.
//
// Models the failure modes that dominate real wide-area transfers —
// refused connections (link flaps at setup), truncated data channels
// (mid-transfer resets), silent stalls (the channel stays open but no
// bytes move), and whole-server outages — as seeded random processes
// on the simulation clock.  All randomness flows through one
// util::Rng seeded at construction, so a campaign with faults is
// exactly as reproducible as one without: same seed, same faults, at
// the same instants, hitting the same attempts.
//
// The injector deliberately knows nothing about GridFTP or the fluid
// engine.  Transfer layers *sample* it (one AttemptFault per attempt)
// and realize the fault themselves; server outages are delivered as
// up/down callbacks the caller wires to GridFtpServer::set_accepting.
// That keeps the dependency arrow pointing the right way: resilience
// sits below gridftp, not beside it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wadp::resilience {

enum class FaultKind {
  kNone,         ///< attempt proceeds untouched
  kConnectFail,  ///< control/data channel setup refused
  kTruncate,     ///< data channel reset mid-transfer; partial bytes kept
  kStall,        ///< channel stays open, bytes stop; only a timeout ends it
};

const char* to_string(FaultKind kind);

/// The fault (if any) drawn for one transfer attempt.
struct AttemptFault {
  FaultKind kind = FaultKind::kNone;
  /// For kTruncate/kStall: seconds into the data phase at which the
  /// fault strikes (exponential with FaultSpec::mean_fault_delay).
  Duration delay = 0.0;
};

struct FaultSpec {
  /// Per-attempt probabilities; their sum must be <= 1.  The remainder
  /// is the probability of an untouched attempt.
  double connect_failure_rate = 0.0;
  double truncation_rate = 0.0;
  double stall_rate = 0.0;
  /// Mean delay into the data phase for truncations and stalls.
  Duration mean_fault_delay = 5.0;

  /// Server-outage process (used by watch_outages): alternating
  /// exponential up/down periods.  Zero mean_outage disables outages.
  Duration mean_uptime = 3600.0;
  Duration mean_outage = 0.0;
  /// Outage transitions are only scheduled up to this simulated
  /// instant, bounding the event chain so sim.run() terminates.
  SimTime outage_horizon = 0.0;

  double total_attempt_rate() const {
    return connect_failure_rate + truncation_rate + stall_rate;
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, FaultSpec spec, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultSpec& spec() const { return spec_; }

  /// Draws the fault for the next transfer attempt.  One uniform draw
  /// per call (plus one exponential when a timed fault is selected), so
  /// the sequence is a pure function of the seed and the call order.
  AttemptFault sample_attempt();

  /// Starts an alternating up/down outage process for `name` (a server
  /// host).  `on_state(false)` fires when an outage begins and
  /// `on_state(true)` when it ends; the caller wires these to
  /// GridFtpServer::set_accepting.  Transitions stop at
  /// spec.outage_horizon.  Each watched name gets its own split Rng, so
  /// adding a server never perturbs another's schedule.
  void watch_outages(const std::string& name,
                     std::function<void(bool up)> on_state);

  std::uint64_t faults_injected() const { return faults_injected_; }
  std::uint64_t outages_started() const { return outages_started_; }

 private:
  struct Watch {
    std::string name;
    std::function<void(bool up)> on_state;
    util::Rng rng;
    bool up = true;
  };

  void schedule_transition(const std::shared_ptr<Watch>& watch);

  sim::Simulator& sim_;
  FaultSpec spec_;
  util::Rng rng_;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t outages_started_ = 0;

  obs::Counter* injected_connect_ = nullptr;
  obs::Counter* injected_truncate_ = nullptr;
  obs::Counter* injected_stall_ = nullptr;
  obs::Counter* outages_ = nullptr;
  obs::Gauge* servers_down_ = nullptr;
};

}  // namespace wadp::resilience
