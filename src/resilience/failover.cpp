#include "resilience/failover.hpp"

#include <algorithm>
#include <cmath>

#include "obs/events.hpp"

namespace wadp::resilience {

CooldownTracker::CooldownTracker(CooldownPolicy policy) : policy_(policy) {
  auto& registry = obs::Registry::global();
  cooldowns_ = &registry.counter("wadp_resilience_cooldowns_total", {},
                                 "Cooldown windows opened after failures");
  recoveries_ = &registry.counter(
      "wadp_resilience_cooldown_recoveries_total", {},
      "Cooldown state cleared by a subsequent success");
}

void CooldownTracker::record_failure(const std::string& key, SimTime now) {
  State& state = state_[key];
  ++state.consecutive;
  Duration cooldown =
      policy_.base * std::pow(policy_.multiplier,
                              static_cast<double>(state.consecutive - 1));
  cooldown = std::min(cooldown, policy_.max);
  state.until = std::max(state.until, now + cooldown);
  cooldowns_->inc();
  util::UlmRecord record;
  record.set("KEY", key);
  record.set_int("CONSECUTIVE", state.consecutive);
  record.set_double("UNTIL", state.until, 3);
  obs::EventSink::global().emit("resilience.cooldown", "resilience",
                                std::move(record));
}

void CooldownTracker::record_success(const std::string& key) {
  const auto it = state_.find(key);
  if (it == state_.end()) return;
  if (it->second.consecutive > 0) recoveries_->inc();
  state_.erase(it);
}

bool CooldownTracker::available(const std::string& key, SimTime now) const {
  const auto it = state_.find(key);
  return it == state_.end() || now >= it->second.until;
}

SimTime CooldownTracker::available_at(const std::string& key) const {
  const auto it = state_.find(key);
  return it == state_.end() ? 0.0 : it->second.until;
}

int CooldownTracker::consecutive_failures(const std::string& key) const {
  const auto it = state_.find(key);
  return it == state_.end() ? 0 : it->second.consecutive;
}

}  // namespace wadp::resilience
