#include "resilience/fault.hpp"

#include <memory>
#include <utility>

#include "obs/events.hpp"
#include "util/error.hpp"

namespace wadp::resilience {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kConnectFail:
      return "connect-fail";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kStall:
      return "stall";
  }
  return "?";
}

FaultInjector::FaultInjector(sim::Simulator& sim, FaultSpec spec,
                             std::uint64_t seed)
    : sim_(sim), spec_(spec), rng_(seed) {
  WADP_CHECK_MSG(spec_.total_attempt_rate() <= 1.0 + 1e-12,
                 "attempt fault rates must sum to <= 1");
  auto& registry = obs::Registry::global();
  const char* help = "Faults injected into transfer attempts, by kind";
  injected_connect_ = &registry.counter("wadp_resilience_faults_injected_total",
                                        {{"kind", "connect-fail"}}, help);
  injected_truncate_ = &registry.counter(
      "wadp_resilience_faults_injected_total", {{"kind", "truncate"}}, help);
  injected_stall_ = &registry.counter("wadp_resilience_faults_injected_total",
                                      {{"kind", "stall"}}, help);
  outages_ = &registry.counter("wadp_resilience_outages_total", {},
                               "Whole-server outage windows started");
  servers_down_ = &registry.gauge("wadp_resilience_servers_down", {},
                                  "Watched servers currently in an outage");
}

AttemptFault FaultInjector::sample_attempt() {
  AttemptFault fault;
  const double draw = rng_.uniform();
  if (draw < spec_.connect_failure_rate) {
    fault.kind = FaultKind::kConnectFail;
  } else if (draw < spec_.connect_failure_rate + spec_.truncation_rate) {
    fault.kind = FaultKind::kTruncate;
  } else if (draw < spec_.total_attempt_rate()) {
    fault.kind = FaultKind::kStall;
  } else {
    return fault;
  }
  if (fault.kind != FaultKind::kConnectFail) {
    fault.delay = rng_.exponential(spec_.mean_fault_delay);
  }
  ++faults_injected_;
  switch (fault.kind) {
    case FaultKind::kConnectFail:
      injected_connect_->inc();
      break;
    case FaultKind::kTruncate:
      injected_truncate_->inc();
      break;
    case FaultKind::kStall:
      injected_stall_->inc();
      break;
    case FaultKind::kNone:
      break;
  }
  return fault;
}

void FaultInjector::watch_outages(const std::string& name,
                                  std::function<void(bool up)> on_state) {
  if (spec_.mean_outage <= 0.0) return;
  auto watch = std::make_shared<Watch>();
  watch->name = name;
  watch->on_state = std::move(on_state);
  watch->rng = rng_.split();
  schedule_transition(watch);
}

void FaultInjector::schedule_transition(const std::shared_ptr<Watch>& watch) {
  const Duration dwell = watch->up
                             ? watch->rng.exponential(spec_.mean_uptime)
                             : watch->rng.exponential(spec_.mean_outage);
  const SimTime when = sim_.now() + dwell;
  if (spec_.outage_horizon > 0.0 && when > spec_.outage_horizon) {
    // Past the horizon: leave the server up so the tail of the run is
    // not permanently dark.
    if (!watch->up && watch->on_state) {
      watch->on_state(true);
      servers_down_->add(-1.0);
    }
    return;
  }
  sim_.schedule_at(when, [this, watch] {
    watch->up = !watch->up;
    if (!watch->up) {
      ++outages_started_;
      outages_->inc();
      servers_down_->add(1.0);
    } else {
      servers_down_->add(-1.0);
    }
    util::UlmRecord record;
    record.set("NAME", watch->name);
    obs::EventSink::global().emit(
        watch->up ? "resilience.outage_end" : "resilience.outage_begin",
        "resilience", std::move(record));
    if (watch->on_state) watch->on_state(watch->up);
    schedule_transition(watch);
  });
}

}  // namespace wadp::resilience
