// Per-target cooldown / blacklist state for broker failover.
//
// When a replica fails, re-ranking alone is not enough: the broker's
// prediction may still favour the dead server on the very next call,
// bouncing every client off the same outage.  The CooldownTracker
// remembers recent failures per key (a server host) and answers "is
// this target worth trying right now?".  Consecutive failures grow the
// cooldown exponentially up to a cap; one success clears the slate.
// Everything is keyed on the simulation clock, so cooldown expiry is
// deterministic.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace wadp::resilience {

struct CooldownPolicy {
  /// Cooldown after the first failure (seconds).
  Duration base = 30.0;
  /// Growth factor per additional consecutive failure.
  double multiplier = 2.0;
  /// Ceiling on any cooldown (seconds).
  Duration max = 900.0;
};

class CooldownTracker {
 public:
  explicit CooldownTracker(CooldownPolicy policy = {});

  /// Notes a failure of `key` at `now`, extending its cooldown.
  void record_failure(const std::string& key, SimTime now);

  /// Notes a success: the key's failure streak and cooldown are cleared.
  void record_success(const std::string& key);

  /// True when `key` is outside any cooldown window at `now`.
  bool available(const std::string& key, SimTime now) const;

  /// Instant at which `key` becomes available again (0 when it already
  /// is, or was never seen).
  SimTime available_at(const std::string& key) const;

  /// Current consecutive-failure streak for `key` (0 when unseen or
  /// cleared by a success).
  int consecutive_failures(const std::string& key) const;

  const CooldownPolicy& policy() const { return policy_; }

 private:
  struct State {
    int consecutive = 0;
    SimTime until = 0.0;
  };

  CooldownPolicy policy_;
  std::map<std::string, State> state_;  // ordered: deterministic dumps
  obs::Counter* cooldowns_ = nullptr;
  obs::Counter* recoveries_ = nullptr;
};

}  // namespace wadp::resilience
