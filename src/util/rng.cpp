#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wadp::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WADP_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WADP_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::log_uniform(double lo, double hi) {
  WADP_CHECK(lo > 0 && lo <= hi);
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::normal() {
  // Marsaglia polar method; discards the second deviate to keep state
  // evolution independent of caller pattern.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  WADP_CHECK(mean > 0);
  // Inversion; 1-u avoids log(0).
  return -mean * std::log(1.0 - uniform());
}

Rng Rng::split() {
  // Derive a child seed from fresh output; splitmix64 re-expansion in the
  // constructor decorrelates the child state from the parent's.
  return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace wadp::util
