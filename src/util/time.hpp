// Simulated-time calendar arithmetic.
//
// The paper's campaigns are anchored to civil time: transfers ran daily
// from 6 pm to 8 am *Central* time, August (CDT, UTC-5) and December
// (CST, UTC-6) 2001.  This header provides epoch<->civil conversion
// (proleptic Gregorian, Hinnant's algorithm), fixed-offset zones, and
// the wrap-around daily-window test the workload driver needs.
//
// Library code never reads the wall clock; all SimTime values originate
// from the simulator or from test fixtures.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace wadp::util {

/// A civil (calendar) date-time, second resolution.
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;   ///< 0..23
  int minute = 0;
  int second = 0;

  bool operator==(const CivilTime&) const = default;
};

/// Fixed UTC-offset zone.  Wide-area Grid testbeds in the paper span one
/// DST regime per campaign, so a fixed offset per campaign suffices.
class TimeZone {
 public:
  /// `offset_seconds` is the zone's offset east of UTC (CDT = -5*3600).
  constexpr explicit TimeZone(std::int64_t offset_seconds, const char* name = "")
      : offset_(offset_seconds), name_(name) {}

  std::int64_t offset_seconds() const { return offset_; }
  const char* name() const { return name_; }

 private:
  std::int64_t offset_;
  const char* name_;
};

inline constexpr TimeZone kUtc{0, "UTC"};
inline constexpr TimeZone kCdt{-5 * 3600, "CDT"};  ///< Aug 2001 campaign
inline constexpr TimeZone kCst{-6 * 3600, "CST"};  ///< Dec 2001 campaign

/// Days since the epoch for a civil date (proleptic Gregorian).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Epoch seconds for a civil time interpreted in `zone`.
std::int64_t to_epoch(const CivilTime& ct, const TimeZone& zone = kUtc);

/// Civil time in `zone` for the given epoch seconds.
CivilTime to_civil(std::int64_t epoch_seconds, const TimeZone& zone = kUtc);

/// Seconds since local midnight in `zone` for the given instant.
double seconds_into_local_day(SimTime t, const TimeZone& zone);

/// True when `t` falls inside the daily window [start_hour, end_hour)
/// local to `zone`.  Windows may wrap midnight: the paper's window is
/// start 18, end 8 (6 pm through 8 am next morning).
bool in_daily_window(SimTime t, const TimeZone& zone, int start_hour, int end_hour);

/// Next instant at-or-after `t` whose local hour equals `hour`:00:00.
SimTime next_local_hour(SimTime t, const TimeZone& zone, int hour);

/// "YYYY-MM-DD HH:MM:SS ZZZ" rendering, for logs and bench output.
std::string format_time(SimTime t, const TimeZone& zone = kUtc);

/// Compact "YYYYMMDDHHMMSS" rendering used in ULM DATE fields.
std::string format_ulm_date(SimTime t);

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;

}  // namespace wadp::util
