// Fundamental value types shared by every wadp module.
//
// The whole library runs on a simulated clock.  Times are seconds since
// the Unix epoch stored as double (sub-millisecond resolution is ample
// for wide-area transfers, and doubles keep event arithmetic simple).
#pragma once

#include <cstdint>
#include <limits>

namespace wadp {

/// Seconds since the Unix epoch on the *simulated* clock.
using SimTime = double;

/// A span of simulated seconds.
using Duration = double;

/// Payload sizes.  64-bit: the paper's transfers reach 1 GB.
using Bytes = std::uint64_t;

/// Throughput in bytes per second.
using Bandwidth = double;

/// Sentinel for "no/never" time.
inline constexpr SimTime kNeverTime = std::numeric_limits<SimTime>::infinity();

/// Common byte-size literals used throughout the paper's workloads.
inline constexpr Bytes kKB = 1000;           ///< paper logs use decimal KB (Fig. 3)
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;
inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;

/// Convert a bandwidth in bytes/sec to the paper's logging unit (KB/sec).
constexpr double to_kb_per_sec(Bandwidth bytes_per_sec) {
  return bytes_per_sec / static_cast<double>(kKB);
}

/// Convert bytes/sec to MB/sec (the unit of Figs. 1 and 2).
constexpr double to_mb_per_sec(Bandwidth bytes_per_sec) {
  return bytes_per_sec / static_cast<double>(kMB);
}

}  // namespace wadp
