// Minimal command-line argument parser for the wadp tools.
//
// Grammar: positionals and options may interleave; options are
// "--name=value", "--name value", or boolean "--name".  "--" ends
// option parsing.  Unknown options are an error so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wadp::util {

class ArgParser {
 public:
  /// Declare options up front; parsing rejects anything undeclared.
  /// Boolean options take no value.
  void add_option(const std::string& name, bool is_boolean = false);

  /// Parses argv (excluding argv[0]).  Returns an error string on
  /// unknown options, missing values, or duplicate occurrences.
  Expected<bool> parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& name) const { return values_.contains(name); }
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;
  std::optional<std::int64_t> get_int(const std::string& name) const;
  std::optional<double> get_double(const std::string& name) const;

 private:
  std::set<std::string> known_;
  std::set<std::string> boolean_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace wadp::util
