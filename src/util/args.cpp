#include "util/args.hpp"

#include "util/strings.hpp"

namespace wadp::util {

void ArgParser::add_option(const std::string& name, bool is_boolean) {
  WADP_CHECK_MSG(!name.empty() && name[0] != '-',
                 "declare option names without dashes");
  known_.insert(name);
  if (is_boolean) boolean_.insert(name);
}

Expected<bool> ArgParser::parse(const std::vector<std::string>& args) {
  bool options_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& arg = args[i];
    if (options_done || !starts_with(arg, "--")) {
      positionals_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    if (!known_.contains(name)) {
      return Expected<bool>::failure("unknown option: --" + name);
    }
    if (values_.contains(name)) {
      return Expected<bool>::failure("duplicate option: --" + name);
    }
    if (boolean_.contains(name)) {
      if (value) {
        return Expected<bool>::failure("--" + name + " takes no value");
      }
      values_[name] = "true";
      continue;
    }
    if (!value) {
      if (i + 1 >= args.size()) {
        return Expected<bool>::failure("--" + name + " needs a value");
      }
      value = args[++i];
    }
    values_[name] = *value;
  }
  return true;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::optional<std::int64_t> ArgParser::get_int(const std::string& name) const {
  const auto value = get(name);
  if (!value) return std::nullopt;
  return parse_int(*value);
}

std::optional<double> ArgParser::get_double(const std::string& name) const {
  const auto value = get(name);
  if (!value) return std::nullopt;
  return parse_double(*value);
}

}  // namespace wadp::util
