// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates a paper table or figure as rows of
// text; TextTable keeps those outputs aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace wadp::util {

class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Per-column alignment; defaults to Left for col 0 and Right elsewhere
  /// (labels left, numbers right), which fits every paper table.
  void set_align(std::size_t column, Align align);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Renders a series of (x, y) points as a coarse ASCII strip chart with a
/// logarithmic y-axis — the rendering used for Figs. 1 and 2, whose whole
/// point is the visual gap between the NWS and GridFTP series.
struct SeriesPoint {
  double x;
  double y;
};
std::string render_log_strip_chart(const std::vector<SeriesPoint>& a,
                                   const std::string& a_label,
                                   const std::vector<SeriesPoint>& b,
                                   const std::string& b_label, int width = 100,
                                   int height = 18);

}  // namespace wadp::util
