// Descriptive statistics and simple regression used by the predictors
// (src/predict) and by the evaluation harness.
//
// Everything operates on spans of doubles; callers own the storage.
// Empty-input behaviour is explicit: functions that need at least one
// (or two) samples return std::nullopt rather than NaN, so predictor
// code can distinguish "no history yet" from a genuine value.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace wadp::util {

/// Arithmetic mean; nullopt on empty input.
std::optional<double> mean(std::span<const double> xs);

/// Median per the paper's definition (Section 4.1): for an ordered list
/// of t values, odd t takes the middle element; even t averages the two
/// middle elements.  Input need not be sorted.  nullopt on empty input.
std::optional<double> median(std::span<const double> xs);

/// Population variance; nullopt when fewer than one sample.
std::optional<double> variance(std::span<const double> xs);

/// Standard deviation (population).
std::optional<double> stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]; nullopt on empty input.
std::optional<double> quantile(std::span<const double> xs, double q);

/// Smallest / largest element; nullopt on empty input.
std::optional<double> min_value(std::span<const double> xs);
std::optional<double> max_value(std::span<const double> xs);

/// Result of an ordinary-least-squares fit of y = a + b*x.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
};

/// OLS fit; requires xs.size() == ys.size() >= 2 and non-constant xs.
/// nullopt otherwise (a vertical or undefined line is not a usable fit).
std::optional<LinearFit> linear_fit(std::span<const double> xs,
                                    std::span<const double> ys);

/// Fit of the paper's degenerate ARIMA model  Y_t = a + b * Y_{t-1}
/// over a series: regresses each sample on its predecessor.  Requires at
/// least 3 samples (2 lag pairs).  When the series is constant the model
/// collapses to a = const, b = 0, which is returned explicitly.
std::optional<LinearFit> ar1_fit(std::span<const double> series);

/// One-pass accumulator for streaming moments (Welford) plus the exact
/// running sum and min/max.  This is the single spread/extremes
/// accumulator for the repo: predict::ErrorStats, the stats tables, and
/// the obs histograms all delegate here instead of keeping their own.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  /// Exact left-to-right running sum (kept alongside the Welford mean
  /// so aggregates that historically reported sum/count stay
  /// bit-identical).
  double sum() const { return sum_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Absolute percentage error, the paper's accuracy metric (Section 6.2):
///   |measured - predicted| / measured * 100
/// Requires measured != 0 (bandwidths are positive in valid logs).
double percent_error(double measured, double predicted);

/// Two-sample z statistic for a difference in means (Welch-style
/// standard error).  Used to check the paper's "no statistical
/// significance between the two data sets" claim; |z| < ~1.96 means not
/// significant at the 5% level for the large samples involved.
/// Requires both samples non-empty and at least one with variance.
double two_sample_z(const RunningStats& a, const RunningStats& b);

/// Sample autocorrelation of xs at the given lag (biased estimator,
/// normalized by the lag-0 variance).  nullopt when fewer than lag + 2
/// samples or when the series is constant.  The predictability analysis
/// uses this: last-value prediction works exactly as far as lag-1
/// autocorrelation carries.
std::optional<double> autocorrelation(std::span<const double> xs, std::size_t lag);

}  // namespace wadp::util
