#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WADP_CHECK(!headers_.empty());
  aligns_.assign(headers_.size(), Align::Right);
  aligns_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> cells) {
  WADP_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  WADP_CHECK(column < aligns_.size());
  aligns_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      const std::size_t pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::Right) out.append(pad, ' ');
      out += row[c];
      if (aligns_[c] == Align::Left && c + 1 < row.size()) out.append(pad, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string render_log_strip_chart(const std::vector<SeriesPoint>& a,
                                   const std::string& a_label,
                                   const std::vector<SeriesPoint>& b,
                                   const std::string& b_label, int width,
                                   int height) {
  WADP_CHECK(width > 10 && height > 3);
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  double xmin = kNan, xmax = kNan, ymin = kNan, ymax = kNan;
  const auto scan = [&](const std::vector<SeriesPoint>& s) {
    for (const auto& p : s) {
      if (p.y <= 0) continue;  // log axis
      if (std::isnan(xmin) || p.x < xmin) xmin = p.x;
      if (std::isnan(xmax) || p.x > xmax) xmax = p.x;
      if (std::isnan(ymin) || p.y < ymin) ymin = p.y;
      if (std::isnan(ymax) || p.y > ymax) ymax = p.y;
    }
  };
  scan(a);
  scan(b);
  if (std::isnan(xmin) || xmin == xmax) return "(no data)\n";
  if (ymin == ymax) ymax = ymin * 2;

  const double ly_min = std::log10(ymin);
  const double ly_max = std::log10(ymax);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const auto plot = [&](const std::vector<SeriesPoint>& s, char mark) {
    for (const auto& p : s) {
      if (p.y <= 0) continue;
      const int col = static_cast<int>((p.x - xmin) / (xmax - xmin) * (width - 1));
      const int row = static_cast<int>((std::log10(p.y) - ly_min) /
                                       (ly_max - ly_min) * (height - 1));
      auto& cell = grid[static_cast<std::size_t>(height - 1 - row)]
                       [static_cast<std::size_t>(col)];
      // Later series overwrite only blanks so both remain visible.
      if (cell == ' ') cell = mark;
    }
  };
  plot(a, '*');
  plot(b, 'o');

  std::string out = format("  y (log scale): %.4g .. %.4g   [*] %s   [o] %s\n",
                           ymin, ymax, a_label.c_str(), b_label.c_str());
  for (const auto& line : grid) {
    out += "  |";
    out += line;
    out += '\n';
  }
  out += "  +";
  out.append(static_cast<std::size_t>(width), '-');
  out += format("\n   x: %.4g .. %.4g\n", xmin, xmax);
  return out;
}

}  // namespace wadp::util
