#include "util/time.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace wadp::util {

std::int64_t days_from_civil(int y, int m, int d) {
  // Hinnant's algorithm, http://howardhinnant.github.io/date_algorithms.html
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0,399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                     // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0,146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0,11]
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);                  // [1,31]
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));                     // [1,12]
  year = static_cast<int>(y + (month <= 2));
}

std::int64_t to_epoch(const CivilTime& ct, const TimeZone& zone) {
  WADP_CHECK(ct.month >= 1 && ct.month <= 12);
  WADP_CHECK(ct.day >= 1 && ct.day <= 31);
  const std::int64_t days = days_from_civil(ct.year, ct.month, ct.day);
  const std::int64_t local =
      days * 86400 + ct.hour * 3600LL + ct.minute * 60LL + ct.second;
  return local - zone.offset_seconds();
}

CivilTime to_civil(std::int64_t epoch_seconds, const TimeZone& zone) {
  const std::int64_t local = epoch_seconds + zone.offset_seconds();
  std::int64_t days = local / 86400;
  std::int64_t sod = local % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(sod / 3600);
  ct.minute = static_cast<int>((sod % 3600) / 60);
  ct.second = static_cast<int>(sod % 60);
  return ct;
}

double seconds_into_local_day(SimTime t, const TimeZone& zone) {
  const double local = t + static_cast<double>(zone.offset_seconds());
  const double day = std::floor(local / kSecondsPerDay) * kSecondsPerDay;
  return local - day;
}

bool in_daily_window(SimTime t, const TimeZone& zone, int start_hour, int end_hour) {
  WADP_CHECK(start_hour >= 0 && start_hour <= 24);
  WADP_CHECK(end_hour >= 0 && end_hour <= 24);
  const double sod = seconds_into_local_day(t, zone);
  const double start = start_hour * kSecondsPerHour;
  const double end = end_hour * kSecondsPerHour;
  if (start == end) return true;  // 24h window
  if (start < end) return sod >= start && sod < end;
  return sod >= start || sod < end;  // wraps midnight, e.g. 18:00 -> 08:00
}

SimTime next_local_hour(SimTime t, const TimeZone& zone, int hour) {
  WADP_CHECK(hour >= 0 && hour < 24);
  const double local = t + static_cast<double>(zone.offset_seconds());
  const double day_start = std::floor(local / kSecondsPerDay) * kSecondsPerDay;
  double candidate = day_start + hour * kSecondsPerHour;
  if (candidate < local) candidate += kSecondsPerDay;
  return candidate - static_cast<double>(zone.offset_seconds());
}

std::string format_time(SimTime t, const TimeZone& zone) {
  const CivilTime ct = to_civil(static_cast<std::int64_t>(std::floor(t)), zone);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d %s", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second,
                zone.name()[0] ? zone.name() : "UTC");
  return buf;
}

std::string format_ulm_date(SimTime t) {
  const CivilTime ct = to_civil(static_cast<std::int64_t>(std::floor(t)), kUtc);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d%02d%02d%02d%02d%02d", ct.year, ct.month,
                ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

}  // namespace wadp::util
