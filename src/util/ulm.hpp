// Universal Logger Message (ULM) "Keyword=Value" codec.
//
// The paper logs each GridFTP transfer as one ULM record (Section 3,
// citing draft-abela-ulm-05): a single line of space-separated
// KEY=VALUE fields.  Values containing spaces are double-quoted with
// backslash escaping so the paper's file names ("/home/ftp/vazhkuda/10
// MB") round-trip.  Keys are case-sensitive; duplicate keys keep the
// last occurrence on parse.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wadp::util {

/// One ULM record: ordered key=value pairs (order is preserved so that
/// emitted logs are stable and diffable).
class UlmRecord {
 public:
  UlmRecord() = default;

  /// Appends or overwrites `key`.
  void set(std::string key, std::string value);
  void set_int(std::string key, std::int64_t value);
  void set_double(std::string key, double value, int precision = 6);

  /// Last value for `key`, or nullopt.
  std::optional<std::string_view> get(std::string_view key) const;
  std::optional<std::int64_t> get_int(std::string_view key) const;
  std::optional<double> get_double(std::string_view key) const;

  bool has(std::string_view key) const { return get(key).has_value(); }
  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  /// Serializes to one line (no trailing newline).
  std::string to_line() const;

  /// Parses one line.  Returns nullopt on malformed input (bad quoting,
  /// missing '=', empty key).  Blank lines parse to an empty record.
  static std::optional<UlmRecord> parse(std::string_view line);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Serializes records to lines / parses a multi-line log body.  Lines
/// that fail to parse are skipped and counted, mirroring how a log
/// consumer must tolerate torn writes on a busy server.
struct UlmParseResult {
  std::vector<UlmRecord> records;
  std::size_t skipped_lines = 0;
};
UlmParseResult parse_ulm_log(std::string_view body);

}  // namespace wadp::util
