#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace wadp::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= 1000000000ULL && bytes % 1000000000ULL == 0) {
    return format("%llu GB", static_cast<unsigned long long>(bytes / 1000000000ULL));
  }
  if (bytes >= 1000000ULL && bytes % 1000000ULL == 0) {
    return format("%llu MB", static_cast<unsigned long long>(bytes / 1000000ULL));
  }
  if (bytes >= 1000ULL && bytes % 1000ULL == 0) {
    return format("%llu KB", static_cast<unsigned long long>(bytes / 1000ULL));
  }
  return format("%llu B", static_cast<unsigned long long>(bytes));
}

}  // namespace wadp::util
