// Small string helpers shared by the ULM codec, the LDAP-style filter
// parser, and the bench table printers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wadp::util {

/// Split on a single-character delimiter.  Adjacent delimiters yield
/// empty fields; an empty input yields one empty field.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_whitespace(std::string_view s);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII case-insensitive equality (LDAP attribute names are
/// case-insensitive).
bool iequals(std::string_view a, std::string_view b);

/// Lower-cased copy (ASCII).
std::string to_lower(std::string_view s);

/// Strict full-string numeric parses; nullopt on any trailing garbage.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes `s` for interpolation inside a JSON string literal: quote,
/// backslash, and control characters (RFC 8259).  Every hand-rolled
/// JSON emitter must route string values through this — a host name
/// containing `"` or `\` otherwise produces invalid JSON.
std::string json_escape(std::string_view s);

/// Human-readable byte count using the paper's decimal units
/// ("10 MB", "1 GB", "512 KB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace wadp::util
