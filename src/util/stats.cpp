#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wadp::util {

std::optional<double> mean(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

std::optional<double> median(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t t = sorted.size();
  if (t % 2 == 1) return sorted[t / 2];
  return 0.5 * (sorted[t / 2 - 1] + sorted[t / 2]);
}

std::optional<double> variance(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  const double m = *mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return sq / static_cast<double>(xs.size());
}

std::optional<double> stddev(std::span<const double> xs) {
  const auto v = variance(xs);
  if (!v) return std::nullopt;
  return std::sqrt(*v);
}

std::optional<double> quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::nullopt;
  WADP_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::optional<double> min_value(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  return *std::min_element(xs.begin(), xs.end());
}

std::optional<double> max_value(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  return *std::max_element(xs.begin(), xs.end());
}

std::optional<LinearFit> linear_fit(std::span<const double> xs,
                                    std::span<const double> ys) {
  WADP_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return std::nullopt;

  const double mx = *mean(xs);
  const double my = *mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return std::nullopt;  // constant regressor: slope undefined

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

std::optional<LinearFit> ar1_fit(std::span<const double> series) {
  if (series.size() < 3) return std::nullopt;
  std::vector<double> lagged(series.begin(), series.end() - 1);
  std::vector<double> current(series.begin() + 1, series.end());
  if (auto fit = linear_fit(lagged, current)) return fit;
  // Constant series: Y_t = const exactly; represent as intercept-only model.
  return LinearFit{.intercept = series.back(), .slope = 0.0, .r2 = 1.0};
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percent_error(double measured, double predicted) {
  WADP_CHECK_MSG(measured != 0.0, "percent error undefined for zero measurement");
  return std::abs(measured - predicted) / std::abs(measured) * 100.0;
}

std::optional<double> autocorrelation(std::span<const double> xs,
                                      std::size_t lag) {
  if (xs.size() < lag + 2) return std::nullopt;
  const double m = *mean(xs);
  double denom = 0.0;
  for (const double x : xs) denom += (x - m) * (x - m);
  if (denom == 0.0) return std::nullopt;  // constant series
  double num = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / denom;
}

double two_sample_z(const RunningStats& a, const RunningStats& b) {
  WADP_CHECK(a.count() > 0 && b.count() > 0);
  const double se = std::sqrt(a.variance() / static_cast<double>(a.count()) +
                              b.variance() / static_cast<double>(b.count()));
  WADP_CHECK_MSG(se > 0.0, "both samples are constant and equal-width");
  return std::abs(a.mean() - b.mean()) / se;
}

}  // namespace wadp::util
