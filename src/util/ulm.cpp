#include "util/ulm.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace wadp::util {
namespace {

bool needs_quoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '\\') {
      return true;
    }
  }
  return false;
}

void append_quoted(std::string& out, std::string_view value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void UlmRecord::set(std::string key, std::string value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
}

void UlmRecord::set_int(std::string key, std::int64_t value) {
  set(std::move(key), std::to_string(value));
}

void UlmRecord::set_double(std::string key, double value, int precision) {
  set(std::move(key), format("%.*f", precision, value));
}

std::optional<std::string_view> UlmRecord::get(std::string_view key) const {
  std::optional<std::string_view> result;
  for (const auto& [k, v] : fields_) {
    if (k == key) result = v;  // last occurrence wins
  }
  return result;
}

std::optional<std::int64_t> UlmRecord::get_int(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  return parse_int(*v);
}

std::optional<double> UlmRecord::get_double(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  return parse_double(*v);
}

std::string UlmRecord::to_line() const {
  std::string out;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ' ';
    out += fields_[i].first;
    out += '=';
    if (needs_quoting(fields_[i].second)) {
      append_quoted(out, fields_[i].second);
    } else {
      out += fields_[i].second;
    }
  }
  return out;
}

std::optional<UlmRecord> UlmRecord::parse(std::string_view line) {
  UlmRecord record;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  skip_ws();
  while (i < line.size()) {
    // Key: up to '='.
    const std::size_t key_start = i;
    while (i < line.size() && line[i] != '=' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] != '=' || i == key_start) return std::nullopt;
    std::string key(line.substr(key_start, i - key_start));
    ++i;  // consume '='

    std::string value;
    if (i < line.size() && line[i] == '"') {
      ++i;  // opening quote
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i++];
        if (c == '\\') {
          if (i >= line.size()) return std::nullopt;  // dangling escape
          value += line[i++];
        } else if (c == '"') {
          closed = true;
          break;
        } else {
          value += c;
        }
      }
      if (!closed) return std::nullopt;
    } else {
      const std::size_t val_start = i;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      value.assign(line.substr(val_start, i - val_start));
    }
    record.set(std::move(key), std::move(value));
    skip_ws();
  }
  return record;
}

UlmParseResult parse_ulm_log(std::string_view body) {
  UlmParseResult result;
  for (const auto& line : split(body, '\n')) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (auto record = UlmRecord::parse(trimmed); record && !record->empty()) {
      result.records.push_back(std::move(*record));
    } else {
      ++result.skipped_lines;
    }
  }
  return result;
}

}  // namespace wadp::util
