// Deterministic random-number generation for the simulator.
//
// All stochastic behaviour in wadp (background load, workload sleeps,
// file-size draws) flows through Rng so that a campaign is reproducible
// from a single seed.  The engine is xoshiro256**, which is fast, has a
// 256-bit state, and — unlike std::mt19937 seeded from a single word —
// gives well-decorrelated streams via split().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wadp::util {

class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Log-uniform double in [lo, hi): uniform in log-space, so each decade
  /// is equally likely.  Used for the paper's 1 min – 10 h sleep draws.
  double log_uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> choices) {
    return choices[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(choices.size()) - 1))];
  }

  /// A new Rng whose stream is decorrelated from this one.  Children of
  /// distinct calls are mutually decorrelated, so each simulated entity
  /// (one link's load process, one campaign's sleeps) owns its own child.
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Fisher–Yates shuffle using the supplied Rng.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace wadp::util
