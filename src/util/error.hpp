// Minimal error-handling vocabulary.
//
// Expected failures (parse errors, missing data, empty histories) travel
// through return values — either std::optional or Expected<T> below.
// Programmer errors and unrecoverable states abort via WADP_CHECK, which
// prints the failing condition and location; it is active in all build
// types because the library is also a simulator whose invariants guard
// result validity.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace wadp {

/// A value or a human-readable error string.  Lightweight stand-in for
/// std::expected (not yet available on the target toolchain).
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  static Expected failure(std::string message) {
    Expected e{Error{std::move(message)}};
    return e;
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const std::string& error() const { return std::get<Error>(data_).message; }

 private:
  struct Error {
    std::string message;
  };
  explicit Expected(Error e) : data_(std::move(e)) {}
  std::variant<T, Error> data_;
};

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "WADP_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace wadp

/// Invariant check: aborts with location info when `cond` is false.
#define WADP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::wadp::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define WADP_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) ::wadp::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (false)
