// NWS information provider for the MDS.
//
// Real Grid deployments published NWS measurements and forecasts into
// MDS alongside everything else — the paper's Section 7 plan of
// "combining basic predictions on the sporadic data with more regular
// NWS measurements" presumes exactly that plumbing.  This provider
// publishes, per experiment series in an NwsMemory, the latest probe
// reading and the dynamic-selection forecast, under the nwsNetwork
// object class.
#pragma once

#include <string>

#include "mds/gris.hpp"
#include "nws/forecaster.hpp"
#include "nws/memory.hpp"

namespace wadp::nws {

struct NwsProviderConfig {
  /// Directory suffix, e.g. "hostname=nws.lbl.gov, dc=lbl, o=grid".
  mds::Dn base;
};

class NwsInfoProvider final : public mds::InformationProvider {
 public:
  /// Publishes `memory`'s series; the memory must outlive the provider.
  NwsInfoProvider(const NwsMemory& memory, NwsProviderConfig config);

  std::string provider_name() const override;

  /// One entry per experiment: objectclass nwsNetwork; attributes
  /// experiment, measurements, latestbandwidth / latesttime, and
  /// forecastbandwidth (dynamic selection over the battery), all KB/s.
  std::vector<mds::Entry> provide(SimTime now) override;

  static mds::Schema schema();

 private:
  const NwsMemory& memory_;
  NwsProviderConfig config_;
};

}  // namespace wadp::nws
