// NWS-style persistent measurement memory.
//
// The real Network Weather Service splits sensing from storage: sensors
// stream measurements to a "memory" process that persists bounded
// series per (resource, source, destination) and serves them to
// forecasters.  This module is that store for probe series: bounded
// retention, text persistence (one "time value" pair per line, the
// NWS trace format), and lookup by experiment name.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "history/store.hpp"
#include "nws/sensor.hpp"
#include "util/error.hpp"

namespace wadp::nws {

class NwsMemory {
 public:
  /// `max_measurements` bounds each series (oldest dropped first), the
  /// way NWS memories cap their circular files.  0 = unbounded.
  explicit NwsMemory(std::size_t max_measurements = 2000)
      : max_measurements_(max_measurements) {}

  /// Appends one measurement to the named experiment's series.  Series
  /// names follow the NWS convention "bandwidth.<src>.<dst>".
  void store(const std::string& experiment, const ProbeMeasurement& m);

  /// Mirrors every store()d measurement into the shared history plane
  /// under SeriesKey{host = host_label, remote_ip = experiment}, so
  /// probe series live next to transfer series in the one store the
  /// rest of the deployment reads (Section 7's combined GridFTP+NWS
  /// information plane).  The history store must outlive this memory.
  void bind_history(history::HistoryStore* history, std::string host_label);

  /// Key a bound experiment series is mirrored under.
  static history::SeriesKey history_key(const std::string& host_label,
                                        const std::string& experiment);
  const history::HistoryStore* bound_history() const { return history_; }
  const std::string& history_host_label() const { return host_label_; }

  /// Convenience: drains everything a sensor has collected so far into
  /// the experiment's series (idempotent per measurement index).
  void absorb(const std::string& experiment, const NwsSensor& sensor);

  /// Time-ordered series; empty when unknown.
  std::span<const ProbeMeasurement> series(const std::string& experiment) const;

  std::vector<std::string> experiments() const;
  std::size_t total_measurements() const;

  /// One experiment as NWS trace text: "<time> <value>\n" per line.
  std::string to_trace_text(const std::string& experiment) const;

  /// Parses trace text into a series (skipping malformed lines).
  static std::vector<ProbeMeasurement> parse_trace_text(std::string_view text);

  /// Whole-memory file round trip (one file per experiment would match
  /// NWS exactly; we bundle with experiment headers for convenience).
  Expected<bool> save(const std::string& path) const;
  static Expected<NwsMemory> load(const std::string& path,
                                  std::size_t max_measurements = 2000);

 private:
  std::size_t max_measurements_;
  std::map<std::string, std::vector<ProbeMeasurement>> series_;
  std::map<std::string, std::size_t> absorbed_;  // per-experiment cursor
  history::HistoryStore* history_ = nullptr;     // optional mirror
  std::string host_label_;
};

}  // namespace wadp::nws
