#include "nws/forecaster.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wadp::nws {

predict::PredictorSuite nws_forecaster_battery() {
  using predict::WindowSpec;
  predict::PredictorSuite suite;
  suite.add(std::make_shared<predict::MeanPredictor>("nws.AVG",
                                                     WindowSpec::all()));
  suite.add(std::make_shared<predict::MeanPredictor>("nws.AVG10",
                                                     WindowSpec::last_n(10)));
  suite.add(std::make_shared<predict::MeanPredictor>("nws.AVG30",
                                                     WindowSpec::last_n(30)));
  suite.add(std::make_shared<predict::MedianPredictor>("nws.MED",
                                                       WindowSpec::all()));
  suite.add(std::make_shared<predict::MedianPredictor>("nws.MED10",
                                                       WindowSpec::last_n(10)));
  suite.add(std::make_shared<predict::MedianPredictor>("nws.MED30",
                                                       WindowSpec::last_n(30)));
  suite.add(std::make_shared<predict::LastValuePredictor>("nws.LV"));
  return suite;
}

NwsForecaster::NwsForecaster() : battery_(nws_forecaster_battery()) {
  selector_ = std::make_unique<predict::DynamicSelector>(
      "nws.DYN", battery_.predictors());
}

void NwsForecaster::observe(const ProbeMeasurement& measurement) {
  selector_->observe(predict::Observation{
      .time = measurement.time,
      .value = measurement.value,
      .file_size = 0,  // probes have a fixed size; classification unused
  });
}

std::optional<Bandwidth> NwsForecaster::forecast(SimTime t) const {
  return selector_->predict(predict::Query{.time = t, .file_size = 0});
}

const std::string& NwsForecaster::current_choice() const {
  return selector_->current_choice();
}

HybridNwsPredictor::HybridNwsPredictor(
    std::string name, const std::vector<ProbeMeasurement>* probes,
    std::size_t ratio_window, Duration probe_level_window)
    : Predictor(std::move(name)),
      probes_(probes),
      ratio_window_(ratio_window),
      probe_level_window_(probe_level_window) {
  WADP_CHECK(probes_ != nullptr);
  WADP_CHECK(ratio_window_ >= 1);
  WADP_CHECK(probe_level_window_ > 0.0);
}

std::optional<Bandwidth> HybridNwsPredictor::probe_level(SimTime t) const {
  // Mean probe bandwidth over [t - window, t]; only probes already
  // completed by t are visible (no lookahead).
  const auto end = std::lower_bound(
      probes_->begin(), probes_->end(), t,
      [](const ProbeMeasurement& m, SimTime s) { return m.time <= s; });
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = end; it != probes_->begin();) {
    --it;
    if (it->time < t - probe_level_window_) break;
    sum += it->value;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

std::optional<Bandwidth> HybridNwsPredictor::predict(
    std::span<const predict::Observation> history,
    const predict::Query& query) const {
  const auto now_level = probe_level(query.time);
  if (!now_level || *now_level <= 0.0) return std::nullopt;

  std::vector<double> ratios;
  for (std::size_t i = history.size(); i-- > 0 && ratios.size() < ratio_window_;) {
    const auto& obs = history[i];
    const auto then_level = probe_level(obs.time);
    if (then_level && *then_level > 0.0 && obs.value > 0.0) {
      ratios.push_back(obs.value / *then_level);
    }
  }
  if (ratios.empty()) return std::nullopt;
  // Median ratio: robust to the occasional GridFTP transfer that raced
  // a congestion episode the probes missed.
  return *util::median(ratios) * *now_level;
}

}  // namespace wadp::nws
