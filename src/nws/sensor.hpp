// Network Weather Service style probe sensor.
//
// Section 2: the NWS measures network performance with small periodic
// probes — 64 KB by default, standard TCP buffers, every five minutes
// in the paper's comparison (Figs. 1–2).  Our sensor runs exactly that
// workload through the same fluid engine the GridFTP transfers use, so
// the probe and transfer series disagree for the same physical reason
// they disagree in the paper: a 64 KB single-stream probe lives
// entirely inside TCP slow start and never samples the path's steady
// throughput.
#pragma once

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "net/path.hpp"
#include "net/tcp.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace wadp::nws {

struct ProbeConfig {
  Bytes probe_size = 64 * kKiB;            ///< NWS default probe
  Bytes buffer = net::kDefaultTcpBuffer;   ///< "standard TCP buffer sizes"
  int streams = 1;                         ///< probes are single-stream
  Duration period = 300.0;                 ///< every 5 minutes (Figs. 1-2)
};

struct ProbeMeasurement {
  SimTime time = 0.0;       ///< probe completion time
  Bandwidth value = 0.0;    ///< probe_size / duration
  Duration duration = 0.0;  ///< wire time of the probe
};

class NwsSensor {
 public:
  /// Starts probing `path` immediately and then every period.  The
  /// sensor must not outlive the simulator, engine, or path.
  NwsSensor(sim::Simulator& sim, net::FluidEngine& engine,
            net::PathModel& path, ProbeConfig config = {});

  NwsSensor(const NwsSensor&) = delete;
  NwsSensor& operator=(const NwsSensor&) = delete;

  void stop();

  const std::vector<ProbeMeasurement>& series() const { return series_; }
  const ProbeConfig& config() const { return config_; }
  const net::PathModel& path() const { return path_; }

  /// Closed-form expectation for one probe on an otherwise idle path —
  /// the "why NWS undershoots" arithmetic, used by tests and the
  /// Fig. 1/2 bench commentary.
  static Bandwidth theoretical_idle_probe_bandwidth(const net::PathModel& path,
                                                    const ProbeConfig& config);

 private:
  void launch_probe();

  sim::Simulator& sim_;
  net::FluidEngine& engine_;
  net::PathModel& path_;
  ProbeConfig config_;
  std::vector<ProbeMeasurement> series_;
  std::unique_ptr<sim::PeriodicTask> task_;
  bool probe_in_flight_ = false;
};

}  // namespace wadp::nws
