#include "nws/mds_provider.hpp"

#include "util/strings.hpp"

namespace wadp::nws {

NwsInfoProvider::NwsInfoProvider(const NwsMemory& memory,
                                 NwsProviderConfig config)
    : memory_(memory), config_(std::move(config)) {}

std::string NwsInfoProvider::provider_name() const {
  return "nws:" + config_.base.to_string();
}

mds::Schema NwsInfoProvider::schema() {
  mds::Schema schema;
  schema.define(mds::ObjectClassDef{
      .name = "nwsNetwork",
      .required = {"experiment", "measurements"},
      .optional = {"latestbandwidth", "latesttime", "forecastbandwidth",
                   "lastupdate", "historyepoch", "historymeasurements"},
  });
  return schema;
}

std::vector<mds::Entry> NwsInfoProvider::provide(SimTime now) {
  std::vector<mds::Entry> entries;
  for (const auto& experiment : memory_.experiments()) {
    const auto series = memory_.series(experiment);
    mds::Entry entry(config_.base.child(mds::Rdn{"nwsexp", experiment}));
    entry.add("objectclass", "nwsNetwork");
    entry.set("experiment", experiment);
    entry.set("measurements", std::to_string(series.size()));
    entry.set("lastupdate", util::format("%.0f", now));
    // When the memory mirrors into the shared history plane, publish
    // the snapshot epoch so consumers can correlate what they read here
    // with the store generation they query directly.  The store may
    // retain more than this memory's bounded window.
    if (const auto* history = memory_.bound_history()) {
      const auto snapshot = history->snapshot(NwsMemory::history_key(
          memory_.history_host_label(), experiment));
      if (snapshot) {
        entry.set("historyepoch", std::to_string(snapshot.epoch()));
        entry.set("historymeasurements", std::to_string(snapshot.size()));
      }
    }
    if (!series.empty()) {
      entry.set("latestbandwidth",
                util::format("%.1f", to_kb_per_sec(series.back().value)));
      entry.set("latesttime", util::format("%.0f", series.back().time));

      // Dynamic-selection forecast over everything observed so far.
      NwsForecaster forecaster;
      for (const auto& m : series) forecaster.observe(m);
      if (const auto forecast = forecaster.forecast(now)) {
        entry.set("forecastbandwidth",
                  util::format("%.1f", to_kb_per_sec(*forecast)));
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace wadp::nws
