#include "nws/sensor.hpp"

#include "util/error.hpp"

namespace wadp::nws {

NwsSensor::NwsSensor(sim::Simulator& sim, net::FluidEngine& engine,
                     net::PathModel& path, ProbeConfig config)
    : sim_(sim), engine_(engine), path_(path), config_(config) {
  WADP_CHECK(config_.probe_size > 0);
  WADP_CHECK(config_.period > 0.0);
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.period, [this] { launch_probe(); }, /*immediate=*/true);
}

void NwsSensor::stop() { task_->stop(); }

void NwsSensor::launch_probe() {
  // NWS sensors are strictly sequential; if a probe is somehow still in
  // flight when the next tick fires (a pathologically loaded path), the
  // tick is skipped rather than stacking probes.
  if (probe_in_flight_) return;
  probe_in_flight_ = true;

  net::FlowSpec spec;
  spec.path = &path_;
  spec.streams = config_.streams;
  spec.buffer = config_.buffer;
  spec.size = config_.probe_size;
  spec.on_complete = [this](const net::FlowStats& stats) {
    probe_in_flight_ = false;
    series_.push_back(ProbeMeasurement{
        .time = stats.end,
        .value = stats.bandwidth(),
        .duration = stats.duration(),
    });
  };
  engine_.start_flow(std::move(spec));
}

Bandwidth NwsSensor::theoretical_idle_probe_bandwidth(
    const net::PathModel& path, const ProbeConfig& config) {
  const Duration t = net::unconstrained_transfer_time(
      path.tcp(), config.probe_size, config.buffer, path.rtt());
  return net::achieved_bandwidth(config.probe_size, t);
}

}  // namespace wadp::nws
