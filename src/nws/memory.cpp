#include "nws/memory.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace wadp::nws {

void NwsMemory::store(const std::string& experiment,
                      const ProbeMeasurement& m) {
  auto& series = series_[experiment];
  WADP_CHECK_MSG(series.empty() || m.time >= series.back().time,
                 "measurements must arrive in time order");
  series.push_back(m);
  if (max_measurements_ > 0 && series.size() > max_measurements_) {
    series.erase(series.begin());
  }
  if (history_ != nullptr) {
    // Probes carry no file size; 0 routes them all into the smallest
    // class, which is also physically honest for a 64 KB probe.
    history_->append(history_key(host_label_, experiment),
                     predict::Observation{.time = m.time, .value = m.value,
                                          .file_size = 0});
  }
}

void NwsMemory::bind_history(history::HistoryStore* history,
                             std::string host_label) {
  history_ = history;
  host_label_ = std::move(host_label);
  // Backfill what this memory already holds, so binding late loses
  // nothing (mirrors HistoryStore::attach on transfer logs).
  if (history_ != nullptr) {
    for (const auto& [experiment, series] : series_) {
      for (const auto& m : series) {
        history_->append(history_key(host_label_, experiment),
                         predict::Observation{.time = m.time, .value = m.value,
                                              .file_size = 0});
      }
    }
  }
}

history::SeriesKey NwsMemory::history_key(const std::string& host_label,
                                          const std::string& experiment) {
  return history::SeriesKey{.host = host_label,
                            .remote_ip = experiment,
                            .op = gridftp::Operation::kRead};
}

void NwsMemory::absorb(const std::string& experiment,
                       const NwsSensor& sensor) {
  auto& cursor = absorbed_[experiment];
  const auto& measurements = sensor.series();
  for (; cursor < measurements.size(); ++cursor) {
    store(experiment, measurements[cursor]);
  }
}

std::span<const ProbeMeasurement> NwsMemory::series(
    const std::string& experiment) const {
  const auto it = series_.find(experiment);
  if (it == series_.end()) return {};
  return it->second;
}

std::vector<std::string> NwsMemory::experiments() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) out.push_back(name);
  return out;
}

std::size_t NwsMemory::total_measurements() const {
  std::size_t total = 0;
  for (const auto& [name, series] : series_) total += series.size();
  return total;
}

std::string NwsMemory::to_trace_text(const std::string& experiment) const {
  std::string out;
  for (const auto& m : series(experiment)) {
    out += util::format("%.3f %.3f\n", m.time, m.value);
  }
  return out;
}

std::vector<ProbeMeasurement> NwsMemory::parse_trace_text(
    std::string_view text) {
  std::vector<ProbeMeasurement> out;
  for (const auto& line : util::split(text, '\n')) {
    const auto fields = util::split_whitespace(line);
    if (fields.size() < 2) continue;
    const auto time = util::parse_double(fields[0]);
    const auto value = util::parse_double(fields[1]);
    if (!time || !value) continue;
    out.push_back(ProbeMeasurement{.time = *time, .value = *value,
                                   .duration = 0.0});
  }
  return out;
}

Expected<bool> NwsMemory::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Expected<bool>::failure("cannot open for write: " + path);
  for (const auto& [name, series] : series_) {
    out << "# experiment: " << name << '\n';
    out << to_trace_text(name);
  }
  if (!out) return Expected<bool>::failure("write failed: " + path);
  return true;
}

Expected<NwsMemory> NwsMemory::load(const std::string& path,
                                    std::size_t max_measurements) {
  std::ifstream in(path);
  if (!in) return Expected<NwsMemory>::failure("cannot open: " + path);
  std::ostringstream body;
  body << in.rdbuf();

  NwsMemory memory(max_measurements);
  std::string experiment = "default";
  for (const auto& line : util::split(body.str(), '\n')) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (util::starts_with(trimmed, "# experiment:")) {
      experiment = std::string(
          util::trim(trimmed.substr(std::string("# experiment:").size())));
      continue;
    }
    const auto parsed = parse_trace_text(std::string(trimmed) + "\n");
    for (const auto& m : parsed) memory.store(experiment, m);
  }
  return memory;
}

}  // namespace wadp::nws
