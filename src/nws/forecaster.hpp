// NWS-style forecasting over a probe series.
//
// The NWS runs a battery of simple forecasters over each sensor's
// series and reports, at every instant, the output of whichever
// forecaster has the lowest accumulated error — its "dynamic selection"
// (Wolski 1998).  The paper names adopting this as future work
// (Section 7); we provide it both for probe series here and for GridFTP
// histories via predict::DynamicSelector (the same machinery underneath).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nws/sensor.hpp"
#include "predict/online.hpp"
#include "predict/suite.hpp"

namespace wadp::nws {

/// The classic NWS forecaster battery: running mean, medians and means
/// over sliding windows, and last value.
predict::PredictorSuite nws_forecaster_battery();

/// Dynamic-selection forecaster over a probe series.
class NwsForecaster {
 public:
  NwsForecaster();

  /// Feeds one probe measurement (time-ordered).
  void observe(const ProbeMeasurement& measurement);

  /// Forecast bandwidth at time `t` from probes observed so far.
  std::optional<Bandwidth> forecast(SimTime t) const;

  /// Which battery member currently answers.
  const std::string& current_choice() const;

 private:
  predict::PredictorSuite battery_;  // keeps candidate ownership alive
  std::unique_ptr<predict::DynamicSelector> selector_;
};

/// Hybrid GridFTP predictor (the paper's Section 7 proposal): combine
/// sporadic GridFTP measurements with regular NWS probe data.  The
/// probe series supplies the *timing signal* (how loaded is the path
/// right now relative to earlier); the GridFTP history supplies the
/// *level* (what bandwidth a tuned parallel transfer actually gets).
///
///   prediction(t) = median_i( gridftp_i / probe_level(t_i) ) * probe_level(t)
///
/// where probe_level(s) is the mean probe bandwidth in the hour before
/// s.  Falls back to nullopt when either signal is missing.
class HybridNwsPredictor final : public predict::Predictor {
 public:
  /// `probes` must outlive the predictor and stay time-ordered (the
  /// sensor appends monotonically).
  HybridNwsPredictor(std::string name,
                     const std::vector<ProbeMeasurement>* probes,
                     std::size_t ratio_window = 10,
                     Duration probe_level_window = 3600.0);

  std::optional<Bandwidth> predict(
      std::span<const predict::Observation> history,
      const predict::Query& query) const override;

 private:
  std::optional<Bandwidth> probe_level(SimTime t) const;

  const std::vector<ProbeMeasurement>* probes_;
  std::size_t ratio_window_;
  Duration probe_level_window_;
};

}  // namespace wadp::nws
