// Grid-scale scenario generator: seeded random topologies and
// synthetic flow drivers.
//
// The paper's world is the three-site testbed; the grid the ROADMAP
// targets is hundreds of sites and thousands of links.  This module
// generalizes the hard-coded Testbed construction into two pieces:
//
//   * TopologyBuilder — accumulates sites and links (by hand, or via
//     random_grid(): a seeded random *connected* graph built from a
//     random recursive spanning tree plus extra uniformly drawn edges)
//     and materializes a frozen net::GridTopology.  Like the Testbed,
//     load-process seeds are drawn from one seeder in insertion order,
//     so a given (layout, seed) pair is bit-reproducible.
//
//   * GridWorld — owns the simulated world (event core, topology,
//     fluid engine in lazy/incremental mode) and drives a synthetic
//     traffic scenario over it: uniform Poisson arrivals, a flash
//     crowd converging on one hot sink site, or diurnally modulated
//     arrivals correlated across sites.  This is the workload behind
//     `wadp simgrid` and bench_netsim.
//
// The calibrated paper testbed stays on the spec-driven Testbed class
// (net::Topology with per-direction PathModels) — its records must
// reproduce bit-identically; the grid world is the scale path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace wadp::workload {

/// Parameters of a seeded random grid.  Link capacities are drawn
/// log-uniformly (each decade equally likely, like real WAN tiers),
/// hop RTTs uniformly.
struct GridSpec {
  std::size_t sites = 100;
  /// Total undirected links; must be >= sites - 1 (connectivity) and is
  /// capped at the complete graph.
  std::size_t links = 1000;
  SimTime origin = 0.0;                    ///< simulation start
  Bandwidth min_capacity = 12'500'000.0;   ///< 12.5 MB/s (paper-class)
  Bandwidth max_capacity = 125'000'000.0;  ///< 125 MB/s (backbone-class)
  Duration min_rtt = 0.002;                ///< per-hop round trip
  Duration max_rtt = 0.040;
  /// Background-load template applied to every link; each link's
  /// process gets its own seed.
  net::LoadParams load;
};

/// Builds a net::GridTopology from accumulated sites and links.
class TopologyBuilder {
 public:
  TopologyBuilder& add_site(std::string name);
  TopologyBuilder& add_link(std::string a, std::string b,
                            net::LinkParams params);

  /// Appends a seeded random connected grid per `spec`: sites named
  /// "s0".."sN-1", a random recursive spanning tree (site i attaches to
  /// a uniform earlier site — connected by construction), then extra
  /// uniformly drawn distinct pairs up to the link budget.
  TopologyBuilder& random_grid(const GridSpec& spec, std::uint64_t seed);

  /// Materializes the frozen topology.  Each link's load process is
  /// seeded from one seeder in insertion order (the Testbed's
  /// convention), anchored at `origin`.
  std::unique_ptr<net::GridTopology> build(std::uint64_t seed,
                                           SimTime origin) const;

  std::size_t site_count() const { return sites_.size(); }
  std::size_t link_count() const { return links_.size(); }

 private:
  struct PendingLink {
    std::string a;
    std::string b;
    net::LinkParams params;
  };
  std::vector<std::string> sites_;
  std::vector<PendingLink> links_;
};

/// Synthetic traffic shapes.
enum class Scenario {
  kUniform,     ///< homogeneous Poisson arrivals, uniform site pairs
  kFlashCrowd,  ///< arrival burst converging on one hot sink site
  kDiurnal,     ///< arrival rate follows a shared time-of-day cycle
};

const char* scenario_name(Scenario scenario);
std::optional<Scenario> parse_scenario(std::string_view name);

struct ScenarioConfig {
  Scenario scenario = Scenario::kUniform;
  Duration duration = 600.0;          ///< simulated seconds
  double arrivals_per_second = 20.0;  ///< mean flow arrival rate
  Bytes min_size = 1 * kMB;           ///< log-uniform size draw
  Bytes max_size = 1000 * kMB;
  int streams = 8;
  /// Arrivals beyond this many concurrent flows are shed (counted).
  std::size_t max_concurrent = 50'000;
  /// Flash crowd: [flash_after, flash_after + flash_duration) from the
  /// scenario start runs at flash_multiplier x the base rate, every
  /// arrival sinking at one randomly chosen hot site.
  Duration flash_after = 120.0;
  Duration flash_duration = 60.0;
  double flash_multiplier = 10.0;
  /// Diurnal: rate scaled by 1 + amplitude*cos anchored at peak hour
  /// (shared clock — correlated across all sites, floor 0.05).
  double diurnal_amplitude = 0.8;
  double diurnal_peak_hour = 14.0;
  /// Fraction of arrivals routed over one randomly chosen link (source
  /// and sink are its endpoints).  Localized traffic keeps sharing
  /// components small — the regime incremental allocation targets;
  /// 0 = all site pairs uniform.
  double locality = 0.0;
  /// Lookahead window handed to Simulator::run_batch per iteration.
  Duration batch_horizon = 1.0;
  /// Health-plane hook: when > 0, `health_tick(now)` fires every
  /// `health_interval` simulated seconds for the scenario's duration —
  /// the caller points it at MetricsRecorder::scrape +
  /// HealthMonitor::evaluate.  A generic callback keeps workload/ free
  /// of an obs dependency choice; it observes, never steers.
  Duration health_interval = 0.0;
  std::function<void(SimTime now)> health_tick;
};

/// A self-contained grid-scale world: event core + random topology +
/// fluid engine, defaulting to the lazy/incremental configuration
/// (per-event cost proportional to the touched component).
class GridWorld {
 public:
  /// Lazy progress + incremental allocator — the grid-scale mode.
  static net::EngineConfig default_engine_config();

  GridWorld(const GridSpec& spec, std::uint64_t seed,
            net::EngineConfig engine_config = default_engine_config());

  GridWorld(const GridWorld&) = delete;
  GridWorld& operator=(const GridWorld&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::FluidEngine& engine() { return engine_; }
  net::GridTopology& topology() { return *topology_; }

  struct Summary {
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_shed = 0;       ///< dropped at max_concurrent
    std::size_t peak_concurrent = 0;
    std::size_t active_at_end = 0;
    double bytes_moved = 0.0;           ///< completed flows' bytes
    Duration sim_elapsed = 0.0;
    std::uint64_t wall_ms = 0;
    net::GridTopology::UtilizationSummary utilization;
    net::FluidEngine::AllocStats alloc;
  };

  /// Drives one scenario from the current simulated instant for
  /// `scenario.duration`, batching the event core through run_batch.
  /// Flows still active at the end are left running (counted in
  /// active_at_end); allocator stats are engine totals since
  /// construction.
  Summary run(const ScenarioConfig& scenario, std::uint64_t seed);

 private:
  sim::Simulator sim_;
  std::unique_ptr<net::GridTopology> topology_;
  net::FluidEngine engine_;
};

}  // namespace wadp::workload
