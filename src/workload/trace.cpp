#include "workload/trace.hpp"

namespace wadp::workload {

std::vector<predict::Observation> observations_from_records(
    std::span<const gridftp::TransferRecord> records,
    const SeriesFilter& filter) {
  std::vector<predict::Observation> out;
  out.reserve(records.size());
  for (const auto& record : records) {
    if (!filter.remote_ip.empty() && record.source_ip != filter.remote_ip) {
      continue;
    }
    if (filter.op && record.op != *filter.op) continue;
    out.push_back(predict::Observation{
        .time = record.end_time,
        .value = record.bandwidth(),
        .file_size = record.file_size,
    });
  }
  return out;
}

ClassCounts count_by_class(std::span<const predict::Observation> series,
                           const predict::SizeClassifier& classifier) {
  ClassCounts counts;
  counts.per_class.assign(static_cast<std::size_t>(classifier.num_classes()),
                          0);
  for (const auto& o : series) {
    ++counts.total;
    ++counts.per_class[static_cast<std::size_t>(classifier.classify(o.file_size))];
  }
  return counts;
}

}  // namespace wadp::workload
