#include "workload/trace.hpp"

namespace wadp::workload {

ClassCounts count_by_class(std::span<const predict::Observation> series,
                           const predict::SizeClassifier& classifier) {
  ClassCounts counts;
  counts.per_class.assign(static_cast<std::size_t>(classifier.num_classes()),
                          0);
  for (const auto& o : series) {
    ++counts.total;
    ++counts.per_class[static_cast<std::size_t>(classifier.classify(o.file_size))];
  }
  return counts;
}

}  // namespace wadp::workload
