// Active file-transfer probing (Section 3's proposed extension).
//
// The instrumented log's weakness is that "we have no control over the
// intervals at which data is collected" — a quiet link goes dark.  The
// paper suggests the system "could be extended to perform file transfer
// probes at regular intervals for the sake of gathering data about the
// performance".  ActiveProber is that extension: it watches a server's
// transfer log and, whenever the measurement series for its client has
// gone stale, issues a real (tuned) GridFTP transfer of a fixed probe
// file so the log keeps carrying fresh end-to-end samples.
#pragma once

#include <memory>

#include "gridftp/client.hpp"
#include "sim/simulator.hpp"
#include "workload/testbed.hpp"

namespace wadp::workload {

struct ActiveProbeConfig {
  Bytes probe_size = 10 * kMB;   ///< probe file (a real transfer, not 64 KB)
  Duration check_period = 1800.0;  ///< how often staleness is evaluated
  Duration staleness = 7200.0;   ///< probe when no sample is younger than this
  gridftp::TransferOptions options{.streams = 8,
                                   .buffer = net::kTunedTcpBuffer};
};

class ActiveProber {
 public:
  /// Probes `server_site` from `client_site`'s client.  The probe file
  /// must exist on the server (the paper file set includes 10 MB).
  ActiveProber(Testbed& testbed, std::string client_site,
               std::string server_site, ActiveProbeConfig config = {});

  ActiveProber(const ActiveProber&) = delete;
  ActiveProber& operator=(const ActiveProber&) = delete;

  void stop();

  std::size_t probes_issued() const { return probes_issued_; }
  std::size_t checks_skipped() const { return checks_skipped_; }
  std::size_t failures() const { return failures_; }

 private:
  void check();
  /// Newest log entry for our (client, read) series, or -infinity.
  SimTime last_sample_time() const;

  Testbed& testbed_;
  std::string client_site_;
  std::string server_site_;
  ActiveProbeConfig config_;
  std::unique_ptr<sim::PeriodicTask> task_;
  bool probe_in_flight_ = false;
  std::size_t probes_issued_ = 0;
  std::size_t checks_skipped_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace wadp::workload
