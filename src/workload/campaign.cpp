#include "workload/campaign.hpp"

#include <optional>

#include "util/error.hpp"
#include "util/time.hpp"

namespace wadp::workload {

Duration SleepDistribution::sample(util::Rng& rng) const {
  WADP_CHECK(min_sleep > 0.0 && min_sleep < short_cap && short_cap < max_sleep);
  if (rng.uniform() < short_bias) {
    return rng.log_uniform(min_sleep, short_cap);
  }
  return rng.log_uniform(short_cap, max_sleep);
}

CampaignDriver::CampaignDriver(Testbed& testbed, std::string client_site,
                               std::string server_site, CampaignConfig config,
                               std::uint64_t seed)
    : testbed_(testbed),
      client_site_(std::move(client_site)),
      server_site_(std::move(server_site)),
      config_(std::move(config)),
      rng_(seed) {
  WADP_CHECK(!config_.file_sizes.empty());
  WADP_CHECK(config_.days >= 1);
}

SimTime CampaignDriver::first_window_time() const {
  return align_to_window(testbed_.start_time());
}

SimTime CampaignDriver::end_time() const {
  return testbed_.start_time() + config_.days * util::kSecondsPerDay;
}

SimTime CampaignDriver::align_to_window(SimTime t) const {
  if (util::in_daily_window(t, testbed_.zone(), config_.window_start_hour,
                            config_.window_end_hour)) {
    return t;
  }
  return util::next_local_hour(t, testbed_.zone(), config_.window_start_hour);
}

void CampaignDriver::start() { schedule_transfer_at(first_window_time()); }

void CampaignDriver::schedule_transfer_at(SimTime when) {
  when = align_to_window(when);
  if (when >= end_time()) {
    finished_ = true;
    return;
  }
  const SimTime now = testbed_.sim().now();
  WADP_CHECK(when >= now);
  testbed_.sim().schedule_at(when, [this] { issue_transfer(); });
}

void CampaignDriver::issue_transfer() {
  const Bytes size = config_.file_sizes[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(config_.file_sizes.size()) - 1))];
  auto& client = testbed_.client(client_site_);
  auto& server = testbed_.server(server_site_);
  client.get(server, paper_file_path(size), config_.options,
             [this](const gridftp::TransferOutcome& outcome) {
               if (outcome.ok) {
                 outcomes_.push_back(outcome);
               } else {
                 ++failed_;
               }
               const Duration sleep = config_.sleeps.sample(rng_);
               schedule_transfer_at(testbed_.sim().now() + sleep);
             });
}

CampaignResult run_paper_campaign(Campaign campaign, std::uint64_t seed,
                                  CampaignConfig config) {
  CampaignResult result;
  result.testbed = std::make_unique<Testbed>(campaign, seed);
  // Workload randomness is independent per campaign: the paper's August
  // and December logs are distinct draws of the same procedure.
  util::Rng seeder(seed ^ 0xc0ffee ^
                   (campaign == Campaign::kAugust2001 ? 0xa00u : 0xd00u));
  result.lbl_to_anl = std::make_unique<CampaignDriver>(
      *result.testbed, "anl", "lbl", config, seeder.next_u64());
  result.isi_to_anl = std::make_unique<CampaignDriver>(
      *result.testbed, "anl", "isi", config, seeder.next_u64());
  result.lbl_to_anl->start();
  result.isi_to_anl->start();
  const SimTime end = result.lbl_to_anl->end_time() + util::kSecondsPerDay;
  std::optional<sim::PeriodicTask> health;
  if (config.health_interval > 0.0 && config.health_tick) {
    auto& sim = result.testbed->sim();
    health.emplace(
        sim, config.health_interval,
        [&sim, cb = config.health_tick] { cb(sim.now()); },
        /*immediate=*/false, /*until=*/end);
  }
  result.testbed->sim().run_until(end);
  return result;
}

}  // namespace wadp::workload
