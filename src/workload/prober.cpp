#include "workload/prober.hpp"

#include "util/error.hpp"

namespace wadp::workload {

ActiveProber::ActiveProber(Testbed& testbed, std::string client_site,
                           std::string server_site, ActiveProbeConfig config)
    : testbed_(testbed),
      client_site_(std::move(client_site)),
      server_site_(std::move(server_site)),
      config_(config) {
  WADP_CHECK(config_.check_period > 0.0);
  WADP_CHECK(config_.staleness > 0.0);
  WADP_CHECK_MSG(
      testbed_.server(server_site_).fs().exists(
          paper_file_path(config_.probe_size)),
      "probe file not staged on server");
  task_ = std::make_unique<sim::PeriodicTask>(
      testbed_.sim(), config_.check_period, [this] { check(); });
}

void ActiveProber::stop() { task_->stop(); }

SimTime ActiveProber::last_sample_time() const {
  const auto& client_ip = testbed_.client(client_site_).ip();
  SimTime newest = -kNeverTime;
  for (const auto& record : testbed_.server(server_site_).log().records()) {
    if (record.source_ip == client_ip &&
        record.op == gridftp::Operation::kRead) {
      newest = std::max(newest, record.end_time);
    }
  }
  return newest;
}

void ActiveProber::check() {
  if (probe_in_flight_) return;
  const SimTime now = testbed_.sim().now();
  if (now - last_sample_time() < config_.staleness) {
    ++checks_skipped_;
    return;
  }
  probe_in_flight_ = true;
  ++probes_issued_;
  testbed_.client(client_site_)
      .get(testbed_.server(server_site_), paper_file_path(config_.probe_size),
           config_.options, [this](const gridftp::TransferOutcome& outcome) {
             probe_in_flight_ = false;
             if (!outcome.ok) ++failures_;
           });
}

}  // namespace wadp::workload
