// Controlled-experiment campaign driver (Section 6.1).
//
// Reproduces the paper's log-generation procedure: daily from 6 pm to
// 8 am Central time, a client repeatedly (1) picks a file size at
// random from the 13-size set, (2) fetches that file from the remote
// server with 8 parallel streams and 1 MB buffers, and (3) sleeps a
// random interval before the next transfer.  Transfers whose start
// would fall outside the nightly window wait for the next window.
//
// The paper states sleeps were "randomly ... from 1 minute to 10
// hours" and that each two-week log holds ~350-450 transfers.  A plain
// log-uniform draw on [1 min, 10 h] yields only ~125 transfers in 14
// nightly windows, so we use a short-biased mixture over the same
// range, calibrated so campaigns land in the paper's count band
// (documented substitution; see DESIGN.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gridftp/client.hpp"
#include "util/rng.hpp"
#include "workload/testbed.hpp"

namespace wadp::workload {

struct SleepDistribution {
  Duration min_sleep = 60.0;        ///< 1 minute
  Duration max_sleep = 36'000.0;    ///< 10 hours
  Duration short_cap = 1'200.0;     ///< "short" draws stay under 20 min
  double short_bias = 0.82;         ///< probability of a short draw

  /// Log-uniform within the chosen regime.
  Duration sample(util::Rng& rng) const;
};

struct CampaignConfig {
  int days = 14;
  int window_start_hour = 18;  ///< 6 pm local
  int window_end_hour = 8;     ///< 8 am local (wraps midnight)
  std::vector<Bytes> file_sizes = paper_file_sizes();
  SleepDistribution sleeps;
  gridftp::TransferOptions options{.streams = 8,
                                   .buffer = net::kTunedTcpBuffer};
  /// Health-plane hook (see ScenarioConfig::health_tick): when > 0,
  /// `health_tick(now)` fires every `health_interval` simulated
  /// seconds over the campaign span.
  Duration health_interval = 0.0;
  std::function<void(SimTime now)> health_tick;
};

/// Drives one wide-area link: `client_site` fetching from `server_site`.
class CampaignDriver {
 public:
  CampaignDriver(Testbed& testbed, std::string client_site,
                 std::string server_site, CampaignConfig config,
                 std::uint64_t seed);

  /// Schedules the first transfer; run the testbed simulator afterwards.
  void start();

  /// Completed transfer outcomes, in completion order.
  const std::vector<gridftp::TransferOutcome>& outcomes() const {
    return outcomes_;
  }
  std::size_t completed() const { return outcomes_.size(); }
  std::size_t failed() const { return failed_; }
  bool finished() const { return finished_; }

  const std::string& client_site() const { return client_site_; }
  const std::string& server_site() const { return server_site_; }

  /// First instant >= campaign start inside the nightly window.
  SimTime first_window_time() const;
  /// Campaign end: start + days.
  SimTime end_time() const;

 private:
  void schedule_transfer_at(SimTime when);
  void issue_transfer();
  SimTime align_to_window(SimTime t) const;

  Testbed& testbed_;
  std::string client_site_;
  std::string server_site_;
  CampaignConfig config_;
  util::Rng rng_;
  std::vector<gridftp::TransferOutcome> outcomes_;
  std::size_t failed_ = 0;
  bool finished_ = false;
};

/// Runs the paper's full campaign on a fresh testbed: LBL->ANL and
/// ISI->ANL drivers concurrently, simulated to the end.  Returns the
/// testbed (whose server logs now hold the measurement series) plus
/// the drivers' outcome lists.
struct CampaignResult {
  std::unique_ptr<Testbed> testbed;
  std::unique_ptr<CampaignDriver> lbl_to_anl;
  std::unique_ptr<CampaignDriver> isi_to_anl;
};
CampaignResult run_paper_campaign(Campaign campaign, std::uint64_t seed,
                                  CampaignConfig config = {});

}  // namespace wadp::workload
