// Campaign summaries over observation series.
//
// Record→observation extraction used to live here too; it is now the
// history adapter (history/adapter.hpp), the single conversion path
// every layer shares.  What remains is the per-class transfer counting
// of Fig. 7.
#pragma once

#include <span>
#include <vector>

#include "predict/classifier.hpp"
#include "predict/observation.hpp"

namespace wadp::workload {

/// Per-class transfer counts for one series (one Fig. 7 cell column).
struct ClassCounts {
  std::size_t total = 0;
  std::vector<std::size_t> per_class;  // indexed by classifier class
};
ClassCounts count_by_class(std::span<const predict::Observation> series,
                           const predict::SizeClassifier& classifier);

}  // namespace wadp::workload
