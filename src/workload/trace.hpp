// Bridging transfer logs to predictor input, plus campaign summaries.
//
// The predictors consume time-ordered bandwidth observations for one
// source->sink series; this header extracts such series from a server's
// transfer log (optionally filtered by remote endpoint and direction)
// and computes the per-class transfer counts of Fig. 7.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gridftp/record.hpp"
#include "predict/classifier.hpp"
#include "predict/observation.hpp"

namespace wadp::workload {

struct SeriesFilter {
  /// Keep only records whose remote endpoint matches (empty = all).
  std::string remote_ip;
  /// Keep only this direction (nullopt = both).
  std::optional<gridftp::Operation> op = gridftp::Operation::kRead;
};

/// Extracts a time-ordered observation series from log records.
/// Records are assumed log-ordered (monotone end times, which the
/// instrumented server guarantees).
std::vector<predict::Observation> observations_from_records(
    std::span<const gridftp::TransferRecord> records,
    const SeriesFilter& filter = {});

/// Per-class transfer counts for one series (one Fig. 7 cell column).
struct ClassCounts {
  std::size_t total = 0;
  std::vector<std::size_t> per_class;  // indexed by classifier class
};
ClassCounts count_by_class(std::span<const predict::Observation> series,
                           const predict::SizeClassifier& classifier);

}  // namespace wadp::workload
