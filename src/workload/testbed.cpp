#include "workload/testbed.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wadp::workload {

SimTime campaign_start(Campaign campaign) {
  switch (campaign) {
    case Campaign::kAugust2001:
      return static_cast<SimTime>(
          util::to_epoch({.year = 2001, .month = 8, .day = 13}, util::kCdt));
    case Campaign::kDecember2001:
      return static_cast<SimTime>(
          util::to_epoch({.year = 2001, .month = 12, .day = 3}, util::kCst));
  }
  WADP_CHECK(false);
  return 0.0;
}

util::TimeZone campaign_zone(Campaign campaign) {
  return campaign == Campaign::kAugust2001 ? util::kCdt : util::kCst;
}

const char* campaign_name(Campaign campaign) {
  return campaign == Campaign::kAugust2001 ? "August 2001" : "December 2001";
}

const std::vector<Bytes>& paper_file_sizes() {
  static const std::vector<Bytes> kSizes = {
      1 * kMB,   2 * kMB,   5 * kMB,   10 * kMB,  25 * kMB,
      50 * kMB,  100 * kMB, 150 * kMB, 250 * kMB, 400 * kMB,
      500 * kMB, 750 * kMB, 1000 * kMB};
  return kSizes;
}

std::string paper_file_path(Bytes size) {
  return "/home/ftp/vazhkuda/" + util::format_bytes(size);
}

const TestbedSpec& paper_testbed_spec() {
  static const TestbedSpec kSpec = {
      // Site order fixes the load-seed draw order; do not reorder.
      {{"anl", "mirage.anl.gov", "140.221.65.69"},
       {"isi", "jet.isi.edu", "128.9.160.100"},
       {"lbl", "dpsslx04.lbl.gov", "131.243.2.91"}},
      {{"lbl", "anl", 0.055, 12'500'000.0},
       {"isi", "anl", 0.065, 12'500'000.0},
       {"lbl", "isi", 0.075, 11'000'000.0}},
  };
  return kSpec;
}

namespace {

/// Background-load parameterization shared by the wide-area links.  The
/// campaigns differ in diurnal anchor zone and seed; the paper found
/// "no statistical significance between the two data sets", so the
/// process parameters stay the same.
net::LoadParams wan_load(util::TimeZone zone) {
  net::LoadParams load;
  load.base = 0.38;
  load.diurnal_amplitude = 0.25;
  load.diurnal_peak_hour = 14.0;  // mid-afternoon peak
  load.zone = zone;
  load.ar_phi = 0.97;
  load.ar_sigma = 0.035;  // stationary swing ~0.14 utilization
  load.episode_rate_per_hour = 0.12;
  load.episode_mean_minutes = 25.0;
  load.episode_utilization = 0.25;
  // Figs. 1-2 put the paper's GridFTP floor at ~1.5 MB/s on ~12.5 MB/s
  // links: competing traffic never consumed more than ~80-85%.  The
  // ceiling of ~10.2 MB/s likewise says the links were never idle.
  load.min_utilization = 0.14;
  load.max_utilization = 0.82;
  return load;
}

/// Light competing I/O on site storage (Section 3's observation that
/// storage does not average out is driven by contention when it occurs;
/// the controlled campaigns rarely overlap transfers, matching the
/// paper's setup).
net::LoadParams storage_load(util::TimeZone zone) {
  net::LoadParams load;
  load.base = 0.15;
  load.diurnal_amplitude = 0.10;
  load.diurnal_peak_hour = 13.0;
  load.zone = zone;
  load.ar_phi = 0.95;
  load.ar_sigma = 0.04;
  load.episode_rate_per_hour = 0.05;
  load.episode_mean_minutes = 10.0;
  load.episode_utilization = 0.35;
  load.max_utilization = 0.80;
  return load;
}

}  // namespace

Testbed::Testbed(Campaign campaign, std::uint64_t seed, TestbedConfig config,
                 const TestbedSpec& spec)
    : campaign_(campaign),
      start_(campaign_start(campaign)),
      zone_(campaign_zone(campaign)),
      sim_(start_),
      engine_(sim_) {
  util::Rng seeder(seed ^ (campaign == Campaign::kAugust2001 ? 0xau : 0xdu));

  for (const SiteSpec& site : spec.sites) {
    add_site(site.site, site.host, site.ip, seeder.next_u64(), config);
  }

  // Directed wide-area paths; both directions for every pair so that
  // control channels, puts, and third-party transfers all resolve.
  for (const WanLinkSpec& link : spec.links) {
    net::PathParams params;
    params.bottleneck = link.bottleneck;
    params.rtt = link.rtt;
    params.load = config.wan_load_override.value_or(wan_load(zone_));
    // Each direction gets its own load process: Internet routes are
    // asymmetric and so is their congestion.
    const auto directed = [&](const std::string& src, const std::string& dst) {
      net::PathParams p = params;
      const auto it = config.bottleneck_overrides.find(src + "->" + dst);
      if (it != config.bottleneck_overrides.end()) p.bottleneck = it->second;
      topology_.add_path(src, dst, p, seeder.next_u64(), start_);
    };
    directed(link.a, link.b);
    directed(link.b, link.a);
  }
}

void Testbed::add_site(const std::string& site, const std::string& host,
                       const std::string& ip, std::uint64_t seed,
                       const TestbedConfig& config) {
  storage::StorageParams storage_params;
  storage_params.read_rate = 60 * kMB;
  storage_params.write_rate = 45 * kMB;
  storage_params.local_load = storage_load(zone_);
  if (const auto it = config.storage_overrides.find(site);
      it != config.storage_overrides.end()) {
    storage_params = it->second;
  }
  auto store = std::make_unique<storage::StorageSystem>(site, storage_params,
                                                        seed, start_);

  gridftp::ServerConfig server_config;
  server_config.site = site;
  server_config.host = host;
  server_config.ip = ip;
  // The calibrated testbed feeds the regression battery: every logged
  // transfer carries the serving host's disk throughput (DISK=).
  server_config.sample_disk = true;
  auto server = std::make_unique<gridftp::GridFtpServer>(server_config, *store);

  // Stage the paper's file set (Fig. 3 paths) on every server.
  server->fs().add_volume("/home/ftp");
  for (const Bytes size : paper_file_sizes()) {
    WADP_CHECK(server->fs().add_file(paper_file_path(size), size));
  }

  // Every instrumented transfer this server logs flows into the shared
  // history store; the per-server log stays the bounded ULM view.
  history_->attach(server->log());

  auto client = std::make_unique<gridftp::GridFtpClient>(
      sim_, engine_, topology_, site, ip, store.get());
  // Failed attempts only exist client-side (the server never logs
  // them), so they reach the shared store through the failure sink —
  // outcome-tagged, letting predictors see outage windows.
  client->set_failure_sink(
      [store = history_](const gridftp::TransferRecord& record) {
        store->append(record);
      });

  storages_.emplace(site, std::move(store));
  servers_.emplace(site, std::move(server));
  clients_.emplace(site, std::move(client));
}

gridftp::GridFtpServer& Testbed::server(const std::string& site) {
  const auto it = servers_.find(site);
  WADP_CHECK_MSG(it != servers_.end(), "unknown site");
  return *it->second;
}

gridftp::GridFtpClient& Testbed::client(const std::string& site) {
  const auto it = clients_.find(site);
  WADP_CHECK_MSG(it != clients_.end(), "unknown site");
  return *it->second;
}

storage::StorageSystem& Testbed::storage(const std::string& site) {
  const auto it = storages_.find(site);
  WADP_CHECK_MSG(it != storages_.end(), "unknown site");
  return *it->second;
}

std::vector<std::string> Testbed::sites() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [site, server] : servers_) out.push_back(site);
  return out;
}

}  // namespace wadp::workload
