#include "workload/gridworld.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wadp::workload {

TopologyBuilder& TopologyBuilder::add_site(std::string name) {
  sites_.push_back(std::move(name));
  return *this;
}

TopologyBuilder& TopologyBuilder::add_link(std::string a, std::string b,
                                           net::LinkParams params) {
  links_.push_back({std::move(a), std::move(b), params});
  return *this;
}

TopologyBuilder& TopologyBuilder::random_grid(const GridSpec& spec,
                                              std::uint64_t seed) {
  WADP_CHECK_MSG(spec.sites >= 2, "random grid needs at least two sites");
  const std::size_t complete = spec.sites * (spec.sites - 1) / 2;
  const std::size_t want = std::min(spec.links, complete);
  WADP_CHECK_MSG(want + 1 >= spec.sites,
                 "random grid needs at least sites-1 links");
  WADP_CHECK_MSG(spec.min_capacity > 0.0 &&
                     spec.min_capacity <= spec.max_capacity,
                 "bad capacity range");
  WADP_CHECK_MSG(spec.min_rtt > 0.0 && spec.min_rtt <= spec.max_rtt,
                 "bad rtt range");

  util::Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(spec.sites);
  for (std::size_t i = 0; i < spec.sites; ++i) {
    names.push_back("s" + std::to_string(i));
    add_site(names.back());
  }

  const auto draw_params = [&] {
    net::LinkParams params;
    params.capacity = rng.log_uniform(spec.min_capacity, spec.max_capacity);
    params.rtt = rng.uniform(spec.min_rtt, spec.max_rtt);
    params.load = spec.load;
    return params;
  };

  // Random recursive spanning tree: connected with exactly sites-1
  // edges, degree distribution skewed toward early sites (hubs).
  std::set<std::pair<std::size_t, std::size_t>> used;
  for (std::size_t i = 1; i < spec.sites; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    used.emplace(j, i);
    add_link(names[j], names[i], draw_params());
  }

  // Extra edges: uniformly drawn distinct pairs up to the budget.
  const auto limit = static_cast<std::int64_t>(spec.sites) - 1;
  while (used.size() < want) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, limit));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, limit));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (!used.emplace(key.first, key.second).second) continue;
    add_link(names[key.first], names[key.second], draw_params());
  }
  return *this;
}

std::unique_ptr<net::GridTopology> TopologyBuilder::build(
    std::uint64_t seed, SimTime origin) const {
  auto topology = std::make_unique<net::GridTopology>();
  for (const std::string& site : sites_) topology->add_site(site);
  util::Rng seeder(seed);
  for (const PendingLink& link : links_) {
    topology->add_link(link.a, link.b, link.params, seeder.next_u64(), origin);
  }
  topology->freeze();
  return topology;
}

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kUniform:
      return "uniform";
    case Scenario::kFlashCrowd:
      return "flash-crowd";
    case Scenario::kDiurnal:
      return "diurnal";
  }
  WADP_CHECK(false);
  return "";
}

std::optional<Scenario> parse_scenario(std::string_view name) {
  if (name == "uniform") return Scenario::kUniform;
  if (name == "flash-crowd" || name == "flash") return Scenario::kFlashCrowd;
  if (name == "diurnal") return Scenario::kDiurnal;
  return std::nullopt;
}

namespace {

/// Live state of one scenario run; events hold it via shared_ptr, so a
/// stale arrival left queued past the end stays harmless.
struct ScenarioState {
  explicit ScenarioState(std::uint64_t seed) : rng(seed) {}

  ScenarioConfig cfg;
  util::Rng rng;
  SimTime t0 = 0.0;
  SimTime end = 0.0;
  SimTime flash_a = 0.0;
  SimTime flash_b = 0.0;
  std::size_t hot = 0;  ///< flash-crowd sink site index

  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::size_t peak = 0;
  double bytes = 0.0;
};

bool in_flash(const ScenarioState& st, SimTime t) {
  return st.cfg.scenario == Scenario::kFlashCrowd && t >= st.flash_a &&
         t < st.flash_b;
}

double rate_at(const ScenarioState& st, SimTime t) {
  double rate = st.cfg.arrivals_per_second;
  switch (st.cfg.scenario) {
    case Scenario::kUniform:
      break;
    case Scenario::kFlashCrowd:
      if (in_flash(st, t)) rate *= st.cfg.flash_multiplier;
      break;
    case Scenario::kDiurnal: {
      const double hour = std::fmod(t, 86'400.0) / 3'600.0;
      const double phase =
          2.0 * M_PI * (hour - st.cfg.diurnal_peak_hour) / 24.0;
      rate *= std::max(0.05, 1.0 + st.cfg.diurnal_amplitude * std::cos(phase));
      break;
    }
  }
  return rate;
}

void start_one_flow(GridWorld& world,
                    const std::shared_ptr<ScenarioState>& st) {
  const auto& names = world.topology().site_names();
  const auto limit = static_cast<std::int64_t>(names.size()) - 1;
  const bool flash = in_flash(*st, world.sim().now());
  net::FlowSpec spec;
  if (!flash && st->cfg.locality > 0.0 &&
      st->rng.uniform() < st->cfg.locality) {
    // Local transfer pinned to one randomly chosen link — guaranteed
    // single-hop even where shortest-RTT routing would detour, so the
    // flow's sharing component stays confined to that link.
    const auto& links = world.topology().links();
    net::Link* link = links[static_cast<std::size_t>(st->rng.uniform_int(
                               0, static_cast<std::int64_t>(links.size()) -
                                      1))]
                          .get();
    if (world.engine().active_flows() >= st->cfg.max_concurrent) {
      ++st->shed;
      return;
    }
    spec.links = {link};
    spec.tcp = world.topology().tcp();
    spec.base_rtt = link->rtt();
  } else {
    const std::size_t dst =
        flash ? st->hot
              : static_cast<std::size_t>(st->rng.uniform_int(0, limit));
    // Uniform over src != dst: draw from the remaining sites.
    auto src = static_cast<std::size_t>(st->rng.uniform_int(0, limit - 1));
    if (src >= dst) ++src;
    if (world.engine().active_flows() >= st->cfg.max_concurrent) {
      ++st->shed;
      return;
    }
    auto route = world.topology().resolve(names[src], names[dst]);
    if (!route) {
      ++st->shed;
      return;
    }
    spec.links = std::move(route->links);
    spec.tcp = route->tcp;
    spec.base_rtt = route->rtt;
  }
  spec.streams = st->cfg.streams;
  spec.size = std::max<Bytes>(
      1, static_cast<Bytes>(st->rng.log_uniform(
             static_cast<double>(st->cfg.min_size),
             static_cast<double>(st->cfg.max_size))));
  spec.on_complete = [st](const net::FlowStats& stats) {
    ++st->completed;
    st->bytes += static_cast<double>(stats.bytes);
  };
  world.engine().start_flow(std::move(spec));
  ++st->started;
  st->peak = std::max(st->peak, world.engine().active_flows());
}

/// Schedules the next arrival from the current rate (piecewise
/// thinned Poisson; flash edges are made sharp by re-drawing at the
/// window boundaries instead of letting a pre-flash gap span them).
void arm_arrival(GridWorld& world, const std::shared_ptr<ScenarioState>& st) {
  const SimTime now = world.sim().now();
  if (now >= st->end) return;
  SimTime next = now + st->rng.exponential(1.0 / rate_at(*st, now));
  bool boundary_only = false;
  if (st->cfg.scenario == Scenario::kFlashCrowd) {
    if (now < st->flash_a && next > st->flash_a) {
      next = st->flash_a;
      boundary_only = true;
    } else if (in_flash(*st, now) && next >= st->flash_b) {
      next = st->flash_b;
      boundary_only = true;
    }
  }
  if (next >= st->end) return;
  world.sim().schedule_at(next, [world_ptr = &world, st, boundary_only] {
    if (!boundary_only) start_one_flow(*world_ptr, st);
    arm_arrival(*world_ptr, st);
  });
}

}  // namespace

net::EngineConfig GridWorld::default_engine_config() {
  net::EngineConfig config;
  config.allocator = net::AllocatorKind::kIncremental;
  config.lazy_progress = true;
  return config;
}

GridWorld::GridWorld(const GridSpec& spec, std::uint64_t seed,
                     net::EngineConfig engine_config)
    : sim_(spec.origin),
      // Structure and load processes get decorrelated seed streams.
      topology_(TopologyBuilder()
                    .random_grid(spec, seed)
                    .build(seed ^ 0x6f61dULL, spec.origin)),
      engine_(sim_, engine_config) {}

GridWorld::Summary GridWorld::run(const ScenarioConfig& scenario,
                                  std::uint64_t seed) {
  const auto& names = topology_->site_names();
  WADP_CHECK_MSG(names.size() >= 2, "scenario needs at least two sites");
  WADP_CHECK_MSG(scenario.arrivals_per_second > 0.0,
                 "arrivals_per_second must be > 0");
  WADP_CHECK_MSG(scenario.min_size > 0 && scenario.min_size <= scenario.max_size,
                 "bad size range");
  WADP_CHECK_MSG(scenario.batch_horizon > 0.0, "batch_horizon must be > 0");

  auto st = std::make_shared<ScenarioState>(seed);
  st->cfg = scenario;
  st->t0 = sim_.now();
  st->end = st->t0 + scenario.duration;
  st->flash_a = st->t0 + scenario.flash_after;
  st->flash_b = st->flash_a + scenario.flash_duration;
  st->hot = static_cast<std::size_t>(
      st->rng.uniform_int(0, static_cast<std::int64_t>(names.size()) - 1));

  const auto wall_start = std::chrono::steady_clock::now();
  // Health-plane scrape/evaluate tick, bounded to the scenario window
  // so the run loop below still drains to quiescence.
  std::optional<sim::PeriodicTask> health;
  if (scenario.health_interval > 0.0 && scenario.health_tick) {
    health.emplace(
        sim_, scenario.health_interval,
        [this, cb = scenario.health_tick] { cb(sim_.now()); },
        /*immediate=*/false, /*until=*/st->end);
  }
  arm_arrival(*this, st);
  while (sim_.now() < st->end) {
    sim_.run_batch(std::min(scenario.batch_horizon, st->end - sim_.now()));
  }
  const auto wall_end = std::chrono::steady_clock::now();

  Summary summary;
  summary.flows_started = st->started;
  summary.flows_completed = st->completed;
  summary.flows_shed = st->shed;
  summary.active_at_end = engine_.active_flows();
  summary.peak_concurrent = std::max(st->peak, summary.active_at_end);
  summary.bytes_moved = st->bytes;
  summary.sim_elapsed = sim_.now() - st->t0;
  summary.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(wall_end -
                                                            wall_start)
          .count());
  summary.utilization = topology_->utilization_summary();
  summary.alloc = engine_.alloc_stats();
  return summary;
}

}  // namespace wadp::workload
