// The paper's three-site testbed, in simulation.
//
// Section 6 evaluates on ANL, ISI, and LBL, with transfers over the
// LBL->ANL and ISI->ANL wide-area links during two two-week campaigns
// (August and December 2001).  A Testbed owns the whole simulated
// world: event simulator, fluid engine, topology, per-site storage,
// GridFTP servers (with the paper's file set staged), and clients.
//
// Calibration targets (DESIGN.md Section 5): ~12.5 MB/s bottlenecks
// (Fig. 6's maxrdbandwidth of 12800 KB/s), 55-75 ms RTTs, and a
// background-load process that leaves tuned 8-stream transfers between
// ~1.5 and ~10 MB/s depending on time of day — the Figs. 1-2 range.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "history/store.hpp"
#include "net/fabric.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "storage/storage.hpp"
#include "util/time.hpp"

namespace wadp::workload {

/// The two measurement campaigns of Section 6.1.
enum class Campaign { kAugust2001, kDecember2001 };

/// Campaign start (midnight local of the first day) and its zone.
SimTime campaign_start(Campaign campaign);
util::TimeZone campaign_zone(Campaign campaign);
const char* campaign_name(Campaign campaign);

/// The 13 file sizes of Section 6.1: 1M ... 1G.
const std::vector<Bytes>& paper_file_sizes();

/// Path under which the paper's files are staged, matching Fig. 3
/// ("/home/ftp/vazhkuda/10 MB" etc.).
std::string paper_file_path(Bytes size);

/// One endpoint of a testbed specification.
struct SiteSpec {
  std::string site;  ///< short name ("anl")
  std::string host;  ///< FQDN logged in ULM records
  std::string ip;    ///< dotted quad logged in ULM records
};

/// One wide-area pair of a testbed specification; expands to directed
/// paths a->b and b->a, each with its own background-load process.
struct WanLinkSpec {
  std::string a;
  std::string b;
  Duration rtt = 0.055;                 ///< round trip, seconds
  Bandwidth bottleneck = 12'500'000.0;  ///< bytes/s
};

/// A testbed layout: which sites exist and which wide-area pairs
/// connect them.  The Testbed constructor instantiates storage,
/// servers, clients, and load processes from this — the calibrated
/// paper testbed is simply the default three-site spec.
struct TestbedSpec {
  std::vector<SiteSpec> sites;
  std::vector<WanLinkSpec> links;
};

/// The calibrated three-site spec of Section 6: ANL, ISI, LBL with
/// ~12.5 MB/s bottlenecks and 55-75 ms RTTs.
const TestbedSpec& paper_testbed_spec();

/// Optional deviations from the calibrated paper testbed, for
/// heterogeneity studies (Section 1: "different sites may have varying
/// performance characteristics because of diverse storage system
/// architectures, network connectivity features, or load
/// characteristics").
struct TestbedConfig {
  /// Replace a site's storage parameters ("anl"/"isi"/"lbl").
  std::map<std::string, storage::StorageParams> storage_overrides;
  /// Replace a directed link's bottleneck, keyed "src->dst".
  std::map<std::string, Bandwidth> bottleneck_overrides;
  /// Replace the background-load parameterization of every wide-area
  /// link (sensitivity studies on the competing-traffic model).
  std::optional<net::LoadParams> wan_load_override;
};

class Testbed {
 public:
  /// Builds the world described by `spec` (default: the paper's three
  /// sites) for `campaign`.  `seed` controls all stochastic behaviour
  /// (load processes); workload randomness is seeded separately by the
  /// campaign driver.  Load-process seeds are drawn from one seeder in
  /// spec order — sites first, then each link's two directions — so a
  /// given (spec, seed) pair is bit-reproducible.
  Testbed(Campaign campaign, std::uint64_t seed, TestbedConfig config = {},
          const TestbedSpec& spec = paper_testbed_spec());

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::FluidEngine& engine() { return engine_; }
  net::Topology& topology() { return topology_; }

  Campaign campaign() const { return campaign_; }
  SimTime start_time() const { return start_; }
  util::TimeZone zone() const { return zone_; }

  /// Site accessors; sites are "anl", "isi", "lbl".
  gridftp::GridFtpServer& server(const std::string& site);
  gridftp::GridFtpClient& client(const std::string& site);
  storage::StorageSystem& storage(const std::string& site);
  std::vector<std::string> sites() const;

  /// The shared history plane: every server's transfer log is attached
  /// at construction, so all instrumented transfers of the simulated
  /// world land here — the single store the information fabric's
  /// providers, brokers, and prediction services read.
  history::HistoryStore& history() { return *history_; }
  const history::HistoryStore& history() const { return *history_; }
  const std::shared_ptr<history::HistoryStore>& history_ptr() const {
    return history_;
  }

 private:
  void add_site(const std::string& site, const std::string& host,
                const std::string& ip, std::uint64_t seed,
                const TestbedConfig& config);

  Campaign campaign_;
  SimTime start_;
  util::TimeZone zone_;
  std::shared_ptr<history::HistoryStore> history_ =
      std::make_shared<history::HistoryStore>();
  sim::Simulator sim_;
  net::FluidEngine engine_;
  net::Topology topology_;
  std::map<std::string, std::unique_ptr<storage::StorageSystem>> storages_;
  std::map<std::string, std::unique_ptr<gridftp::GridFtpServer>> servers_;
  std::map<std::string, std::unique_ptr<gridftp::GridFtpClient>> clients_;
};

}  // namespace wadp::workload
