// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock (SimTime, epoch seconds) and an
// indexed event core.  Everything dynamic in wadp — GridFTP transfers,
// NWS probes, the workload driver's sleeps, MDS soft-state expiry, the
// fluid engine's per-flow wake-ups — runs as events on one Simulator,
// which makes whole campaigns deterministic and independent of wall
// time.
//
// Events scheduled for the same instant fire in scheduling order (a
// monotone sequence number breaks ties), which keeps runs reproducible.
//
// The event core is built for grid-scale event rates (hundreds of
// sites, thousands of links, tens of thousands of concurrent flows):
//
//   * three tiers — an *immediate* FIFO for events at the current
//     instant (O(1) push/pop; the zero-delay callbacks that dominate
//     protocol glue), a *near* bucket for events within a short
//     lookahead window (O(1) append, sorted lazily on first pop; the
//     fluid engine's ramp steps and completion wake-ups), and a binary
//     heap for everything farther out;
//   * cancellation is O(1) lazy deletion (the handler index is the
//     source of truth), and the core *compacts* — rebuilds the tiers
//     without tombstones — whenever cancelled entries outnumber live
//     events, so a long-armed cancel pattern (PeriodicTask::stop,
//     per-flow completion reschedules) can never grow the queue without
//     bound;
//   * run_batch(horizon) drains every event inside a lookahead window
//     in one pass — the timestep-batched shape tt-npe-style flow
//     simulators use, and the natural hook for a later parallel engine
//     (batch boundaries are the only safe synchronization points).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace wadp::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Starts the clock at `start` (e.g. midnight of the campaign's first
  /// day).  The clock never runs backward.
  explicit Simulator(SimTime start = 0.0) : now_(start) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `handler` at absolute time `when` (>= now, finite).
  EventId schedule_at(SimTime when, Handler handler);

  /// Schedules `handler` after `delay` (>= 0) simulated seconds.  Takes
  /// the O(1) fast path for the common near-future case (zero delay or
  /// within the near-bucket window).
  EventId schedule_after(Duration delay, Handler handler);

  /// Cancels a pending event.  Returns false when the event already
  /// fired, was cancelled, or never existed.  O(1); dead queue entries
  /// are skipped on pop and compacted away when they outnumber live
  /// events.
  bool cancel(EventId id);

  /// Runs events until the queue empties.  Returns events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if idle).  Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Drains every event within `horizon` seconds of lookahead — one
  /// timestep batch — then advances the clock to the batch boundary.
  /// Events scheduled by handlers inside the window are drained too.
  /// Returns events executed.
  std::size_t run_batch(Duration horizon);

  /// Executes only the next event, if any.  Returns false when idle.
  bool step();

  /// Live (non-cancelled) scheduled events.
  std::size_t pending_events() const { return handlers_.size(); }

  /// Time of the earliest live event, or nullopt when idle.  Prunes
  /// tombstones encountered at the queue fronts.
  std::optional<SimTime> next_event_time();

  /// Queue entries currently held, live + not-yet-pruned tombstones.
  /// Bounded by compaction: never exceeds 2 * live + compaction floor.
  std::size_t queued_entries() const {
    return immediate_.size() + near_.size() + heap_.size();
  }

  /// Tombstone compactions performed (tests / capacity planning).
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Tier an event at `when` and return its id; the O(1) fast paths
  /// append to the immediate FIFO / near bucket, the general case heaps.
  EventId enqueue(SimTime when, Handler handler);

  /// Drops cancelled entries from each tier's front so the fronts are
  /// live (or the tiers empty).
  void prune_fronts();

  /// Points at the live minimum event across the three tiers; call
  /// prune_fronts() first.  Nullptr when idle.
  const Event* peek_min() const;

  /// Rebuilds all tiers without tombstones.
  void compact();

  bool fire_next();
  std::size_t drain_until(SimTime deadline);

  /// Ensures the near bucket is sorted descending (minimum at back).
  void sort_near();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;

  // Tier 1: events at exactly now_ (seq order = FIFO order).
  std::deque<Event> immediate_;
  // Tier 2: events within kNearWindow of their scheduling instant;
  // appended O(1), sorted descending on demand so the min pops O(1).
  std::vector<Event> near_;
  bool near_sorted_ = true;
  // Tier 3: binary min-heap (std::push_heap / pop_heap with >).
  std::vector<Event> heap_;

  // Handlers live outside the queue so cancel() is O(1); a cancelled id
  // simply has no handler when popped.
  std::unordered_map<EventId, Handler> handlers_;
  std::size_t cancelled_pending_ = 0;
  std::uint64_t compactions_ = 0;
};

/// Periodic task helper: re-schedules itself every `period` seconds
/// until stop() is called (or, optionally, a deadline passes).  Used
/// by NWS sensors, GIIS refresh, and health-plane scrape ticks.
class PeriodicTask {
 public:
  /// `body` runs at start + period, start + 2*period, ...  When
  /// `immediate` is true it also runs once at `start`.  A finite
  /// `until` bounds the task: no firing is scheduled past that instant,
  /// so an open-ended `sim.run()` still terminates — essential for
  /// drives (resilience, health) that run the queue dry.
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> body,
               bool immediate = false, SimTime until = kNeverTime);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Duration period_;
  std::function<void()> body_;
  SimTime until_ = kNeverTime;
  bool running_ = true;
  EventId pending_ = 0;
};

}  // namespace wadp::sim
