// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock (SimTime, epoch seconds) and a
// priority queue of scheduled events.  Everything dynamic in wadp —
// GridFTP transfers, NWS probes, the workload driver's sleeps, MDS
// soft-state expiry — runs as events on one Simulator, which makes whole
// campaigns deterministic and independent of wall time.
//
// Events scheduled for the same instant fire in scheduling order (a
// monotone sequence number breaks ties), which keeps runs reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace wadp::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Starts the clock at `start` (e.g. midnight of the campaign's first
  /// day).  The clock never runs backward.
  explicit Simulator(SimTime start = 0.0) : now_(start) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `handler` at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Handler handler);

  /// Schedules `handler` after `delay` (>= 0) simulated seconds.
  EventId schedule_after(Duration delay, Handler handler);

  /// Cancels a pending event.  Returns false when the event already
  /// fired, was cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs events until the queue empties.  Returns events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if idle).  Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Executes only the next event, if any.  Returns false when idle.
  bool step();

  std::size_t pending_events() const { return queue_.size() - cancelled_pending_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    // Ordered as a min-heap via operator> in the priority_queue.
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool fire_next();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Handlers live outside the queue so cancel() is O(1); a cancelled id
  // simply has no handler when popped.
  std::unordered_map<EventId, Handler> handlers_;
  std::size_t cancelled_pending_ = 0;
};

/// Periodic task helper: re-schedules itself every `period` seconds
/// until stop() is called.  Used by NWS sensors and GIIS refresh.
class PeriodicTask {
 public:
  /// `body` runs at start + period, start + 2*period, ...  When
  /// `immediate` is true it also runs once at `start`.
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> body,
               bool immediate = false);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Duration period_;
  std::function<void()> body_;
  bool running_ = true;
  EventId pending_ = 0;
};

}  // namespace wadp::sim
