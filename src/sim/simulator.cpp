#include "sim/simulator.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::sim {
namespace {

/// Engine-wide counters (one process may run several Simulators; the
/// totals aggregate across them, which is what capacity planning wants).
/// Resolved once — the per-event cost is a relaxed atomic add.
struct SimMetrics {
  obs::Counter& scheduled = obs::Registry::global().counter(
      "wadp_sim_events_scheduled_total", {},
      "Events ever scheduled on any simulator");
  obs::Counter& executed = obs::Registry::global().counter(
      "wadp_sim_events_executed_total", {},
      "Events executed by any simulator");
  obs::Counter& cancelled = obs::Registry::global().counter(
      "wadp_sim_events_cancelled_total", {},
      "Events cancelled before firing");

  static SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace

EventId Simulator::schedule_at(SimTime when, Handler handler) {
  WADP_CHECK_MSG(when >= now_, "cannot schedule into the past");
  WADP_CHECK(handler != nullptr);
  SimMetrics::get().scheduled.inc();
  const EventId id = next_id_++;
  queue_.push(Event{.when = when, .seq = next_seq_++, .id = id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Simulator::schedule_after(Duration delay, Handler handler) {
  WADP_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  ++cancelled_pending_;
  SimMetrics::get().cancelled.inc();
  return true;
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) {
      --cancelled_pending_;  // was cancelled; skip silently
      continue;
    }
    now_ = ev.when;
    // Move the handler out before invoking: the handler may schedule or
    // cancel events, invalidating iterators.
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    SimMetrics::get().executed.inc();
    handler();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (fire_next()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  WADP_CHECK(deadline >= now_);
  std::size_t executed = 0;
  for (;;) {
    // Peek past cancelled entries to find the next live event time.
    bool fired = false;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (!handlers_.contains(top.id)) {
        queue_.pop();
        --cancelled_pending_;
        continue;
      }
      if (top.when > deadline) break;
      fire_next();
      ++executed;
      fired = true;
      break;
    }
    if (!fired) break;
  }
  now_ = deadline;
  return executed;
}

bool Simulator::step() { return fire_next(); }

PeriodicTask::PeriodicTask(Simulator& sim, Duration period,
                           std::function<void()> body, bool immediate)
    : sim_(sim), period_(period), body_(std::move(body)) {
  WADP_CHECK(period_ > 0.0);
  WADP_CHECK(body_ != nullptr);
  if (immediate) {
    pending_ = sim_.schedule_after(0.0, [this] {
      body_();
      if (running_) arm();
    });
  } else {
    arm();
  }
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm() {
  pending_ = sim_.schedule_after(period_, [this] {
    body_();
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) sim_.cancel(pending_);
}

}  // namespace wadp::sim
