#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wadp::sim {
namespace {

/// Near-bucket lookahead: events this close to "now" skip the heap and
/// take the O(1) append path.  One second comfortably covers the fluid
/// engine's hot events (sub-RTT ramp steps, micro-quantum wake-ups)
/// while keeping the bucket's lazy sorts small — campaign-scale sleeps
/// (minutes to hours) still go to the heap.
constexpr Duration kNearWindow = 1.0;

/// Compaction floor: tombstones must outnumber live events AND this
/// floor before a rebuild, so tiny simulations don't compact on every
/// other cancel.  Bounds queue memory at 2 * live + kCompactFloor.
constexpr std::size_t kCompactFloor = 64;

/// Engine-wide counters (one process may run several Simulators; the
/// totals aggregate across them, which is what capacity planning wants).
/// Resolved once — the per-event cost is a relaxed atomic add.
struct SimMetrics {
  obs::Counter& scheduled = obs::Registry::global().counter(
      "wadp_sim_events_scheduled_total", {},
      "Events ever scheduled on any simulator");
  obs::Counter& executed = obs::Registry::global().counter(
      "wadp_sim_events_executed_total", {},
      "Events executed by any simulator");
  obs::Counter& cancelled = obs::Registry::global().counter(
      "wadp_sim_events_cancelled_total", {},
      "Events cancelled before firing");
  obs::Counter& fastpath = obs::Registry::global().counter(
      "wadp_sim_events_fastpath_total", {},
      "Events scheduled via the O(1) immediate/near tiers");
  obs::Counter& compactions = obs::Registry::global().counter(
      "wadp_sim_compactions_total", {},
      "Tombstone compactions of any simulator's event queue");
  obs::Counter& batches = obs::Registry::global().counter(
      "wadp_sim_batches_total", {},
      "run_batch lookahead windows drained");

  static SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace

EventId Simulator::enqueue(SimTime when, Handler handler) {
  SimMetrics::get().scheduled.inc();
  const EventId id = next_id_++;
  const Event ev{.when = when, .seq = next_seq_++, .id = id};
  if (when == now_) {
    immediate_.push_back(ev);  // O(1): fires this instant, FIFO order
    SimMetrics::get().fastpath.inc();
  } else if (when - now_ <= kNearWindow) {
    // O(1) append; the bucket stays "sorted" only while appends keep
    // descending toward the minimum at the back (rare) — otherwise it
    // re-sorts lazily on the next pop.
    if (near_sorted_ && !near_.empty() && !(near_.back() > ev)) {
      near_sorted_ = false;
    }
    near_.push_back(ev);
    SimMetrics::get().fastpath.inc();
  } else {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Simulator::schedule_at(SimTime when, Handler handler) {
  // A NaN `when` would silently poison every ordering comparison below
  // (NaN compares false against everything), so it is rejected here
  // rather than corrupting the queue.
  WADP_CHECK_MSG(std::isfinite(when), "non-finite event time");
  WADP_CHECK_MSG(when >= now_, "cannot schedule into the past");
  WADP_CHECK(handler != nullptr);
  return enqueue(when, std::move(handler));
}

EventId Simulator::schedule_after(Duration delay, Handler handler) {
  WADP_CHECK_MSG(delay >= 0.0, "negative delay");  // also rejects NaN
  WADP_CHECK_MSG(std::isfinite(delay), "non-finite delay");
  WADP_CHECK(handler != nullptr);
  return enqueue(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  ++cancelled_pending_;
  SimMetrics::get().cancelled.inc();
  // Lazy deletion is bounded: once tombstones outnumber live events the
  // tiers are rebuilt, so schedule/cancel churn (a long-armed
  // PeriodicTask::stop, per-flow reschedules) cannot grow the queue
  // without bound.
  if (cancelled_pending_ > handlers_.size() &&
      cancelled_pending_ >= kCompactFloor) {
    compact();
  }
  return true;
}

void Simulator::compact() {
  const auto dead = [this](const Event& ev) {
    return !handlers_.contains(ev.id);
  };
  std::erase_if(immediate_, dead);
  std::erase_if(near_, dead);
  std::erase_if(heap_, dead);
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  cancelled_pending_ = 0;
  ++compactions_;
  SimMetrics::get().compactions.inc();
}

void Simulator::sort_near() {
  if (near_sorted_) return;
  // Descending (when, seq): the minimum sits at the back for O(1) pops.
  std::sort(near_.begin(), near_.end(),
            [](const Event& a, const Event& b) { return a > b; });
  near_sorted_ = true;
}

void Simulator::prune_fronts() {
  while (!immediate_.empty() && !handlers_.contains(immediate_.front().id)) {
    immediate_.pop_front();
    --cancelled_pending_;
  }
  sort_near();
  while (!near_.empty() && !handlers_.contains(near_.back().id)) {
    near_.pop_back();
    --cancelled_pending_;
  }
  while (!heap_.empty() && !handlers_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    --cancelled_pending_;
  }
}

const Simulator::Event* Simulator::peek_min() const {
  const Event* best = nullptr;
  const auto consider = [&best](const Event* candidate) {
    if (candidate != nullptr && (best == nullptr || *best > *candidate)) {
      best = candidate;
    }
  };
  consider(immediate_.empty() ? nullptr : &immediate_.front());
  consider(near_.empty() ? nullptr : &near_.back());
  consider(heap_.empty() ? nullptr : &heap_.front());
  return best;
}

std::optional<SimTime> Simulator::next_event_time() {
  prune_fronts();
  const Event* min = peek_min();
  return min == nullptr ? std::nullopt : std::optional<SimTime>(min->when);
}

bool Simulator::fire_next() {
  prune_fronts();
  const Event* min = peek_min();
  if (min == nullptr) return false;
  const Event ev = *min;
  if (!immediate_.empty() && min == &immediate_.front()) {
    immediate_.pop_front();
  } else if (!near_.empty() && min == &near_.back()) {
    near_.pop_back();
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
  const auto it = handlers_.find(ev.id);
  WADP_CHECK(it != handlers_.end());  // fronts were pruned to live events
  now_ = ev.when;
  // Move the handler out before invoking: the handler may schedule or
  // cancel events, invalidating iterators.
  Handler handler = std::move(it->second);
  handlers_.erase(it);
  SimMetrics::get().executed.inc();
  handler();
  return true;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (fire_next()) ++executed;
  return executed;
}

std::size_t Simulator::drain_until(SimTime deadline) {
  std::size_t executed = 0;
  for (;;) {
    prune_fronts();
    const Event* min = peek_min();
    if (min == nullptr || min->when > deadline) break;
    fire_next();
    ++executed;
  }
  now_ = deadline;
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  WADP_CHECK(deadline >= now_);
  return drain_until(deadline);
}

std::size_t Simulator::run_batch(Duration horizon) {
  WADP_CHECK_MSG(horizon >= 0.0, "negative batch horizon");
  WADP_CHECK_MSG(std::isfinite(horizon), "non-finite batch horizon");
  SimMetrics::get().batches.inc();
  return drain_until(now_ + horizon);
}

bool Simulator::step() { return fire_next(); }

PeriodicTask::PeriodicTask(Simulator& sim, Duration period,
                           std::function<void()> body, bool immediate,
                           SimTime until)
    : sim_(sim), period_(period), body_(std::move(body)), until_(until) {
  WADP_CHECK(period_ > 0.0);
  WADP_CHECK(body_ != nullptr);
  if (immediate) {
    pending_ = sim_.schedule_after(0.0, [this] {
      body_();
      if (running_) arm();
    });
  } else {
    arm();
  }
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm() {
  if (sim_.now() + period_ > until_) {
    running_ = false;
    pending_ = 0;
    return;
  }
  pending_ = sim_.schedule_after(period_, [this] {
    body_();
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) sim_.cancel(pending_);
}

}  // namespace wadp::sim
